"""Setuptools shim — all metadata lives in pyproject.toml.

Kept so `python setup.py develop` still works in offline environments where
pip's PEP-660 editable install path is unavailable (it needs the `wheel`
package); `pip install -e .` is the normal route.
"""

from setuptools import setup

setup()
