"""The cluster front door: consistent-hash routing over NetworkServer shards.

:class:`ClusterRouter` is a :class:`~repro.serve.net.FrameServerBase` like
the shard server itself — same handshake, same framing, same one-task-per-
request event loop that only shuttles bytes — but instead of an engine it
holds one multiplexed :class:`ShardLink` per backend
:class:`~repro.serve.net.NetworkServer` and forwards frames:

* **content RPCs route by content**: ``solve`` and ``process`` hash the
  quantized histogram signature (:func:`repro.serve.protocol.routing_key`)
  onto the :class:`~repro.cluster.ring.HashRing`, so identical content
  always lands on the shard whose solution cache is already warm.  These
  RPCs are pure functions of their payload, so on a connection-level
  failure they **fail over** along the ring walk (paced by the client
  SDK's :class:`~repro.client.backoff.Backoff`) — which remaps exactly
  the dead shard's keys and nothing else;
* **sessions pin**: ``open_session`` places a session on the least-loaded
  healthy shard and every ``feed``/``close_session`` for it goes to that
  shard for the session's lifetime.  Stream state (smoother, scene
  detector) cannot move between shards, so a session is *never* silently
  re-routed: if its shard dies, the next ``feed`` surfaces
  :class:`~repro.api.session.SessionClosedError` — the same contract as a
  single server restarting.  Session ids are namespaced with the shard
  index (shards allocate ids independently), and a client disconnect
  closes its sessions on their shards (close-on-disconnect cascades);
* **health is probed**: a periodic ``health`` RPC drives the
  :class:`~repro.cluster.health.ShardHealth` mark-down/mark-up machines;
  an ``overloaded`` reply counts as alive (the shard is shedding load,
  not gone) and live-traffic connection failures mark down immediately;
* **stats aggregate**: the ordinary ``stats`` RPC fans out to every
  reachable shard and answers with
  :func:`~repro.cluster.stats.aggregate_stats` — same shape as a single
  server plus per-shard attribution and the router's ring counters, so
  existing clients and ``repro loadtest --connect`` work unchanged.

**Protocol v2 bytes-through.**  Each shard link negotiates the newest
shared protocol generation.  A binary v2 frame whose routing decision is
readable from its header alone (``solve`` — the histogram rides in the
header; stamped ``process``; ``feed``) crosses the router on the **fast
path**: :func:`repro.serve.wire2.peek` reads the header, the pixels are
never decoded, and :func:`repro.serve.wire2.restamp` rewrites only the
correlation/session ids while the segment bytes are spliced through
verbatim — in both directions.  A v2 frame bound for a v1-only shard is
**transcoded** instead (arrays re-encoded as base64 off the event loop);
v1 frames always take the decoded-dict path.  The
``frames_fast_path`` / ``frames_transcoded`` counters under the ``stats``
``cluster`` key make the split observable.

``repro cluster --shards HOST:PORT,... --port P`` runs one from the
command line.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import itertools
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

from repro.api.session import SessionClosedError
from repro.client.backoff import Backoff
from repro.client.sync import parse_address
from repro.cluster.health import ShardHealth
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.stats import ClusterCounters, aggregate_stats
from repro.serve import protocol, wire2
from repro.serve.coalescer import ServerOverloadedError
from repro.serve.net import ConnectionContext, FrameServerBase

__all__ = ["ClusterRouter", "ShardLink", "DEFAULT_ROUTER_PORT"]

#: Default TCP port of ``repro cluster --port``.
DEFAULT_ROUTER_PORT = 7096


class ShardLink:
    """One multiplexed router-to-shard connection.

    Many concurrent request tasks share the link: each request is
    re-stamped with a link-local correlation id, writes are serialized by
    a lock, and a single reader task resolves the pending futures by id.
    Connection is lazy and reconnects are paced by the shared
    :class:`~repro.client.backoff.Backoff`; a dropped connection fails
    every pending request with :class:`ConnectionError` — the router
    decides per request type whether that means failover (one-shot RPCs)
    or session death (``feed``).

    The handshake advertises ``max_version`` and records the shard's pick
    on :attr:`version`.  :meth:`request` exchanges message dicts;
    :meth:`forward` is the v2 bytes-through path — the raw frame payload
    crosses with only its header restamped, in both directions.
    """

    def __init__(self, address: str, *, timeout: float = 60.0,
                 backoff: Backoff | None = None,
                 max_version: int = protocol.PROTOCOL_VERSION) -> None:
        self.address = str(address)
        self.host, self.port = parse_address(self.address)
        self.timeout = float(timeout)
        self.backoff = backoff if backoff is not None else Backoff(0.05, 1.0)
        self.max_version = int(max_version)
        self.shard_id: str | None = None    # learned from the shard's hello
        self.version: int = protocol.PROTOCOL_V1    # negotiated per connect
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        self._attempt = 0
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """Connect and handshake (idempotent; serialized).  Consecutive
        failed attempts are spaced by the back-off schedule."""
        async with self._connect_lock:
            if self._closed:
                raise ConnectionError(
                    f"link to shard {self.address} is closed")
            if self._writer is not None:
                return
            if self._attempt > 0:
                await asyncio.sleep(self.backoff.delay(self._attempt - 1))
                if self._closed:
                    raise ConnectionError(
                        f"link to shard {self.address} is closed")
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.timeout)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._attempt += 1
                raise ConnectionError(
                    f"cannot reach shard {self.address} ({exc})") from exc
            try:
                writer.write(protocol.encode_frame(
                    protocol.hello_frame(max_version=self.max_version)))
                await writer.drain()
                hello = await asyncio.wait_for(
                    self._read_message(reader), self.timeout)
                if hello.get("type") == "error":
                    raise protocol.exception_from_error(hello)
                version = hello.get("version")
                if (hello.get("type") != "hello"
                        or not isinstance(version, int)
                        or not (protocol.PROTOCOL_V1 <= version
                                <= self.max_version)):
                    raise protocol.ProtocolError(
                        f"shard answered the handshake with "
                        f"{hello.get('type')!r} v{version!r}")
            except asyncio.CancelledError:
                writer.close()
                raise
            except Exception as exc:
                writer.close()
                self._attempt += 1
                raise ConnectionError(
                    f"handshake with shard {self.address} failed "
                    f"({exc})") from exc
            self._attempt = 0
            self.shard_id = str(hello.get("shard_id") or self.address)
            self.version = int(version)
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader))

    async def request(self, message: dict, *, wire_version: int = 1) -> dict:
        """Send one request dict and await its decoded response.

        The frame's ``id`` is replaced with a link-local correlation id
        (the caller restores the client-facing id on the way back) and
        the message is encoded in ``wire_version``'s codec (v2 accepts
        ndarray leaves).  Any transport problem — including a response
        timeout — surfaces as :class:`ConnectionError`.
        """
        await self.connect()
        link_id = next(self._ids)
        message = dict(message)
        message["id"] = link_id
        frame = (wire2.encode_frame(message) if wire_version >= 2
                 else protocol.encode_frame(message))
        payload = await self._exchange(link_id, frame)
        return wire2.decode_any(payload)[1]

    async def forward(self, payload: bytes, *,
                      session_id: str | None = None) -> bytes:
        """Forward a raw v2 frame payload and await the raw response.

        Only the header is restamped (link-local id, optionally a
        shard-local session id) — the segment bytes cross verbatim, and
        the shard's reply comes back as raw payload bytes for the caller
        to restamp toward the client.
        """
        await self.connect()
        link_id = next(self._ids)
        stamped = wire2.restamp(payload, link_id, session_id=session_id)
        frame = (len(stamped).to_bytes(protocol.HEADER_BYTES, "big")
                 + stamped)
        return await self._exchange(link_id, frame)

    async def _exchange(self, link_id: int, frame: bytes) -> bytes:
        future = asyncio.get_running_loop().create_future()
        self._pending[link_id] = future
        try:
            async with self._write_lock:
                writer = self._writer
                if writer is None:
                    raise ConnectionError(
                        f"lost connection to shard {self.address}")
                writer.write(frame)
                await writer.drain()
            return await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError as exc:
            raise ConnectionError(
                f"shard {self.address} did not answer within "
                f"{self.timeout}s") from exc
        finally:
            self._pending.pop(link_id, None)

    async def _read_payload(self, reader: asyncio.StreamReader) -> bytes:
        header = await reader.readexactly(protocol.HEADER_BYTES)
        return await reader.readexactly(protocol.frame_length(header))

    async def _read_message(self, reader: asyncio.StreamReader) -> dict:
        return wire2.decode_any(await self._read_payload(reader))[1]

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                payload = await self._read_payload(reader)
                # correlation needs only the id: O(header) for v2 frames,
                # and the raw payload is what resolves the future — the
                # fast path never materializes the segments here
                if wire2.is_v2_payload(payload):
                    frame_id = wire2.peek(payload).get("id")
                else:
                    frame_id = protocol.decode_frame(payload).get("id")
                future = self._pending.pop(frame_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
                # an unknown id is a response whose request already timed
                # out (and was failed over) — drop it
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                protocol.ProtocolError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._drop(ConnectionError(
                f"lost connection to shard {self.address}"))

    def _drop(self, error: ConnectionError) -> None:
        """Tear down the current connection, failing every pending request."""
        writer, self._reader, self._writer = self._writer, None, None
        self._reader_task = None
        if writer is not None:
            writer.close()
        pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        """Close the link for good (pending requests fail)."""
        self._closed = True
        task = self._reader_task
        self._drop(ConnectionError(f"link to shard {self.address} closed"))
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task


class _Connection:
    """Router-side per-client-connection state: the sessions it owns,
    mapping the public (namespaced) session id to the owning link and the
    shard-local session id."""

    __slots__ = ("sessions",)

    def __init__(self) -> None:
        self.sessions: dict[str, tuple[ShardLink, str]] = {}


class ClusterRouter(FrameServerBase):
    """Route protocol requests across ``NetworkServer`` shards by content.

    Parameters
    ----------
    shards:
        Static membership: the backend ``"host:port"`` addresses.
    host, port:
        Bind address of the router itself (``port=0`` picks a free one).
    replicas:
        Virtual nodes per shard on the hash ring.
    health_interval, health_timeout:
        Cadence and per-probe timeout of the periodic ``health`` RPC.
    markdown_after:
        Consecutive probe failures before a shard is marked down (live
        traffic connection failures mark down immediately).
    request_timeout:
        Bound on one forwarded request, shard-side.
    backoff:
        Pacing of shard reconnects and failover hops; the client SDK's
        jittered schedule (:class:`~repro.client.backoff.Backoff`) with
        fast defaults when omitted.
    key_workers:
        Threads deriving routing keys for un-stamped ``process`` requests
        and transcoding v2 frames for v1 shards (pixel work stays off the
        event loop).
    shard_max_version:
        Newest protocol generation the shard links advertise
        (:data:`~repro.serve.protocol.PROTOCOL_VERSION` by default; pin
        to ``1`` to force the v1 JSON lane toward every shard — the knob
        the cross-version tests and a staged rollout use).
    """

    _thread_name = "repro-cluster-router"

    def __init__(self, shards, *, host: str = "127.0.0.1", port: int = 0,
                 replicas: int = DEFAULT_REPLICAS,
                 health_interval: float = 1.0, health_timeout: float = 5.0,
                 markdown_after: int = 2, request_timeout: float = 60.0,
                 backoff: Backoff | None = None,
                 key_workers: int = 2,
                 shard_max_version: int = protocol.PROTOCOL_VERSION) -> None:
        super().__init__(host=host, port=port)
        addresses = [str(shard).strip() for shard in shards
                     if str(shard).strip()]
        if not addresses:
            raise ValueError("a cluster needs at least one shard address")
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate shard addresses in {addresses!r}")
        self.shards: tuple[str, ...] = tuple(addresses)
        self.ring = HashRing(addresses, replicas=replicas)
        self.health = {address: ShardHealth(address,
                                            markdown_after=markdown_after)
                       for address in addresses}
        self.counters = ClusterCounters()
        self.health_interval = float(health_interval)
        self.health_timeout = float(health_timeout)
        self.request_timeout = float(request_timeout)
        self.shard_max_version = int(shard_max_version)
        self._backoff = backoff if backoff is not None else Backoff(0.05, 0.5)
        self._links: dict[str, ShardLink] = {}
        self._monitor_task: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=int(key_workers),
            thread_name_prefix="repro-router-key")
        self._index = {address: index
                       for index, address in enumerate(addresses)}
        self._session_load: Counter[str] = Counter()

    @property
    def router_id(self) -> str:
        """Identity the router advertises in its own hello/health frames."""
        bound = self._bound
        if bound is not None:
            return f"router@{bound[0]}:{bound[1]}"
        return "router"

    # ------------------------------------------------------------------ #
    # lifecycle hooks
    # ------------------------------------------------------------------ #
    async def _on_serve_start(self) -> None:
        self._links = {
            address: ShardLink(address, timeout=self.request_timeout,
                               backoff=self._backoff,
                               max_version=self.shard_max_version)
            for address in self.shards
        }
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor())

    async def _on_serve_stop(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        for link in self._links.values():
            await link.close()

    def _on_close(self, wait: bool) -> None:
        self._executor.shutdown(wait=wait)

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #
    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            with contextlib.suppress(Exception):
                await self.probe()

    async def probe(self) -> dict[str, bool]:
        """One probe round over every shard; returns address → up."""
        results = await asyncio.gather(
            *(self._probe_one(address) for address in self.shards))
        return dict(zip(self.shards, results))

    async def _probe_one(self, address: str) -> bool:
        link = self._links[address]
        health = self.health[address]
        try:
            response = await asyncio.wait_for(
                link.request(protocol.health_request(0)),
                self.health_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            health.note_failure()
            return health.up
        if response.get("type") == "error":
            error = protocol.exception_from_error(response)
            if not isinstance(error, ServerOverloadedError):
                health.note_failure()
                return health.up
            # overloaded is proof of life: the shard answers and sheds
            # load; keeping it in the ring preserves its cache affinity
        health.note_success()
        return True

    def probe_now(self, timeout: float = 10.0) -> dict[str, bool]:
        """Thread-safe blocking probe round (tests and tools; the serving
        loop runs its own periodic probe)."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("the router is not serving")
        future = asyncio.run_coroutine_threadsafe(self.probe(), loop)
        return future.result(timeout)

    def shards_up(self) -> tuple[str, ...]:
        """Addresses currently marked up."""
        return tuple(address for address in self.shards
                     if self.health[address].up)

    # ------------------------------------------------------------------ #
    # connection hooks
    # ------------------------------------------------------------------ #
    def _hello_response(self, conn: ConnectionContext, hello: dict) -> dict:
        # a router never accepts a shared-memory offer (it is not the
        # process that reads the pixels): no ``shm`` echo in the reply,
        # so the client's lane concludes refused and stays on the socket
        return protocol.hello_frame(version=conn.version,
                                    shard_id=self.router_id)

    def _new_connection(self) -> _Connection:
        return _Connection()

    async def _on_disconnect(self, conn: ConnectionContext) -> None:
        # close-on-disconnect cascades: the client is gone, so its
        # sessions are closed on their owning shards (best effort — a
        # dead shard already closed them on its own disconnect)
        record: _Connection = conn.state
        sessions, record.sessions = dict(record.sessions), {}
        closes = []
        for public_id, (link, shard_session) in sessions.items():
            self._session_load[link.address] -= 1
            closes.append(link.request(
                protocol.close_session_request(0, shard_session)))
        if closes:
            await asyncio.gather(*closes, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _respond_payload(self, payload: bytes, conn: ConnectionContext,
                               version: int) -> dict | bytes:
        """Route a v2 frame from its header alone when possible.

        ``solve`` (histogram in the header), stamped ``process`` and
        ``feed`` frames take the bytes-through fast path: the segments
        are never decoded router-side.  Everything else — v1 frames,
        un-stamped ``process``, session bookkeeping, ``stats`` — falls
        through to the decoded-dict path of :meth:`_respond`.
        """
        if version == 2:
            header = wire2.peek(payload)
            kind = header.get("type")
            if kind == "solve":
                histogram = protocol.histogram_from_wire(
                    header["histogram"])
                key = protocol.routing_key(histogram)
                return await self._forward_keyed(
                    key, header.get("id"),
                    lambda link: self._send_raw(link, payload))
            if kind == "process" and header.get("routing") is not None:
                key = self._routing_key_from(header["routing"])
                return await self._forward_keyed(
                    key, header.get("id"),
                    lambda link: self._send_raw(link, payload))
            if kind == "feed":
                return await self._feed_raw(payload, header, conn.state)
        return await super()._respond_payload(payload, conn, version)

    async def _respond(self, message: dict, conn: ConnectionContext,
                       version: int) -> dict:
        kind = message.get("type")
        request_id = message.get("id")
        record: _Connection = conn.state

        if kind == "solve":
            histogram = protocol.histogram_from_wire(message["histogram"])
            key = protocol.routing_key(histogram)
            return await self._forward_keyed(
                key, request_id,
                lambda link: self._send_dict(link, message, version))

        if kind == "process":
            key = await self._process_key(message)
            return await self._forward_keyed(
                key, request_id,
                lambda link: self._send_dict(link, message, version))

        if kind == "open_session":
            return await self._open_session(message, record)

        if kind == "feed":
            return await self._feed(message, record, version)

        if kind == "close_session":
            return await self._close_session(message, record)

        if kind == "stats":
            return await self._stats(request_id)

        if kind == "health":
            return protocol.health_response(
                request_id, shard_id=self.router_id,
                sessions_open=sum(self._session_load.values()),
                queue_depth=0)

        raise protocol.ProtocolError(f"unknown request type {kind!r}")

    @staticmethod
    def _routing_key_from(stamped) -> bytes:
        try:
            return bytes.fromhex(str(stamped))
        except ValueError as exc:
            raise protocol.ProtocolError(
                f"malformed routing key {stamped!r}") from exc

    async def _process_key(self, message: dict) -> bytes:
        stamped = message.get("routing")
        if stamped is not None:
            return self._routing_key_from(stamped)
        # un-stamped client: derive the key from the pixels, off the loop
        image = protocol.image_from_wire(message["image"])
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, functools.partial(protocol.routing_key, image))

    # -- downstream senders -------------------------------------------- #
    async def _downgrade_message(self, message: dict) -> dict:
        """v2 → v1 transcode (base64 re-encoding runs off the loop)."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, wire2.downgrade_message, message)

    async def _send_raw(self, link: ShardLink, payload: bytes,
                        session_id: str | None = None) -> bytes | dict:
        """Forward a v2 payload: bytes-through to a v2 shard, transcoded
        to a v1 one."""
        await link.connect()
        if link.version >= 2:
            response = await link.forward(payload, session_id=session_id)
            self.counters.frames_fast_path += 1
            return response
        message = wire2.decode_message(payload)
        if session_id is not None:
            message["session_id"] = str(session_id)
        response = await link.request(await self._downgrade_message(message))
        self.counters.frames_transcoded += 1
        return response

    async def _send_dict(self, link: ShardLink, message: dict,
                         version: int) -> dict:
        """Forward a decoded message dict in the best shared codec."""
        await link.connect()
        if version >= 2 and link.version < 2:
            response = await link.request(
                await self._downgrade_message(message))
            self.counters.frames_transcoded += 1
            return response
        return await link.request(message,
                                  wire_version=min(version, link.version))

    def _restore_id(self, response: dict | bytes, request_id) -> dict | bytes:
        """Restore the client-facing correlation id on a shard response —
        an O(header) restamp for raw v2 payloads, a dict update otherwise."""
        if isinstance(response, (bytes, bytearray, memoryview)):
            response = bytes(response)
            if wire2.is_v2_payload(response):
                return wire2.restamp(response, request_id)
            response = protocol.decode_frame(response)
        response = dict(response)
        response["id"] = request_id
        return response

    async def _forward_keyed(self, key: bytes, request_id,
                             send) -> dict | bytes:
        """Forward a content-keyed one-shot RPC to the key's shard, failing
        over along the ring walk.

        ``send(link)`` performs the actual downstream exchange (dict or
        bytes-through).  ``solve``/``process`` are pure functions of their
        payload, so replaying one on the next shard is always safe —
        unlike session traffic, which never fails over (see :meth:`_feed`).
        """
        last_error: ConnectionError | None = None
        hops = 0
        for address in self.ring.preference(key):
            health = self.health[address]
            if not health.up:
                continue
            if hops > 0:
                self.counters.failovers += 1
                await asyncio.sleep(self._backoff.delay(hops - 1))
            hops += 1
            link = self._links[address]
            try:
                response = await send(link)
            except ConnectionError as exc:
                health.note_failure(hard=True)
                last_error = exc
                continue
            health.note_success()
            self.counters.routed[address] += 1
            return self._restore_id(response, request_id)
        detail = f"; last error: {last_error}" if last_error else ""
        raise ServerOverloadedError(
            f"no shard reachable for this request "
            f"({len(self.shards)} configured, "
            f"{len(self.shards_up())} marked up{detail})",
            retry_after_seconds=max(self.health_interval,
                                    protocol.DEFAULT_RETRY_AFTER))

    def _session_candidates(self) -> list[str]:
        up = [address for address in self.shards if self.health[address].up]
        up.sort(key=lambda address: (self._session_load[address],
                                     self._index[address]))
        return up

    async def _open_session(self, message: dict, record: _Connection) -> dict:
        request_id = message.get("id")
        last_error: ConnectionError | None = None
        for address in self._session_candidates():
            link = self._links[address]
            health = self.health[address]
            try:
                response = await link.request(message)
            except ConnectionError as exc:
                health.note_failure(hard=True)
                last_error = exc
                continue
            health.note_success()
            if response.get("type") == "error":
                response = dict(response)
                response["id"] = request_id
                return response
            shard_session = str(response["session_id"])
            # shards allocate ids independently, so the public id is
            # namespaced by the shard's ring index
            public_id = f"{self._index[address]}:{shard_session}"
            record.sessions[public_id] = (link, shard_session)
            self._session_load[address] += 1
            self.counters.sessions_routed[address] += 1
            return protocol.session_response(request_id, public_id)
        detail = f"; last error: {last_error}" if last_error else ""
        raise ServerOverloadedError(
            f"no shard reachable to host the session{detail}",
            retry_after_seconds=max(self.health_interval,
                                    protocol.DEFAULT_RETRY_AFTER))

    def _drop_session(self, record: _Connection, public_id: str) -> None:
        entry = record.sessions.pop(public_id, None)
        if entry is not None:
            self._session_load[entry[0].address] -= 1

    def _session_entry(self, record: _Connection,
                       public_id: str) -> tuple[ShardLink, str]:
        entry = record.sessions.get(public_id)
        if entry is None:
            raise SessionClosedError(
                f"unknown session {public_id!r} on this connection")
        link, shard_session = entry
        # stream state cannot move between shards, so a session is never
        # re-routed: a dead owning shard means the session is dead
        if not self.health[link.address].up:
            self._drop_session(record, public_id)
            raise SessionClosedError(
                f"session {public_id} died with shard {link.address}")
        return link, shard_session

    async def _feed_exchange(self, record: _Connection, public_id: str,
                             link: ShardLink, send):
        try:
            response = await send()
        except ConnectionError as exc:
            self.health[link.address].note_failure(hard=True)
            self._drop_session(record, public_id)
            raise SessionClosedError(
                f"session {public_id} died with shard {link.address} "
                f"({exc})") from exc
        self.health[link.address].note_success()
        return response

    async def _feed(self, message: dict, record: _Connection,
                    version: int) -> dict:
        request_id = message.get("id")
        public_id = str(message.get("session_id"))
        link, shard_session = self._session_entry(record, public_id)
        forward = dict(message)
        forward["session_id"] = shard_session

        async def send():
            await link.connect()
            if version >= 2 and link.version < 2:
                response = await link.request(
                    await self._downgrade_message(forward))
                self.counters.frames_transcoded += 1
                return response
            return await link.request(
                forward, wire_version=min(version, link.version))

        response = await self._feed_exchange(record, public_id, link, send)
        return self._restore_id(response, request_id)

    async def _feed_raw(self, payload: bytes, header: dict,
                        record: _Connection) -> dict | bytes:
        request_id = header.get("id")
        public_id = str(header.get("session_id"))
        link, shard_session = self._session_entry(record, public_id)
        response = await self._feed_exchange(
            record, public_id, link,
            lambda: self._send_raw(link, payload, session_id=shard_session))
        return self._restore_id(response, request_id)

    async def _close_session(self, message: dict,
                             record: _Connection) -> dict:
        request_id = message.get("id")
        public_id = str(message.get("session_id"))
        entry = record.sessions.pop(public_id, None)
        if entry is not None:
            link, shard_session = entry
            self._session_load[link.address] -= 1
            forward = dict(message)
            forward["session_id"] = shard_session
            with contextlib.suppress(ConnectionError, OSError):
                await link.request(forward)
        # closing is idempotent: an unknown or already-dead session
        # closes cleanly, exactly like on a single server
        return protocol.session_closed_response(request_id, public_id)

    async def _stats(self, request_id) -> dict:
        async def fetch(address: str):
            link = self._links[address]
            try:
                response = await link.request(protocol.stats_request(0))
            except ConnectionError:
                self.health[address].note_failure(hard=True)
                return None
            if response.get("type") != "stats":
                return None
            self.health[address].note_success()
            payload = dict(response["stats"])
            if payload.get("shard_id") is None:
                payload["shard_id"] = link.shard_id or address
            return payload

        fetched = await asyncio.gather(
            *(fetch(address) for address in self.shards))
        shards = {}
        for address, payload in zip(self.shards, fetched):
            if payload is not None:
                shards[str(payload.get("shard_id") or address)] = payload
        payload = aggregate_stats(shards, cluster=self.cluster_info())
        return protocol.stats_response(request_id, payload)

    def cluster_info(self) -> dict:
        """The router's own counters, as they appear under the ``cluster``
        key of the aggregated stats payload."""
        info = {
            "router_id": self.router_id,
            "shards_configured": len(self.shards),
            "shards_up": len(self.shards_up()),
            "shards_down": [address for address in self.shards
                            if not self.health[address].up],
            "ring_replicas": self.ring.replicas,
            "sessions_open": sum(self._session_load.values()),
            "markdowns": sum(health.markdowns
                             for health in self.health.values()),
            "markups": sum(health.markups
                           for health in self.health.values()),
        }
        info.update(self.counters.as_dict())
        return info
