"""Consistent-hash ring with virtual nodes: the placement function.

The engine's solution cache is keyed by the quantized histogram
signature (:func:`repro.api.cache.histogram_signature`); routing requests
by the *same* signature means a duplicate-heavy workload keeps landing on
the shard whose cache already holds its solution.  The ring makes that
placement stable under membership churn: every shard owns ``replicas``
pseudo-random points on a 64-bit circle, a key belongs to the first shard
point at or clockwise of its own hash, and removing a shard therefore
reassigns *only* the arcs that shard owned — an expected ``1/N`` of the
key space, while the other ``(N-1)/N`` keep hitting warm caches.  Virtual
nodes keep the per-shard share of the circle close to uniform.

Hashing is :func:`hashlib.blake2b` (stable across processes and Python
versions — ring placement must agree between router restarts), truncated
to 64 bits.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, Iterator

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard.  64 points per shard keeps the largest/smallest
#: per-shard arc share within a few ten percent of uniform for small
#: clusters, at negligible ring-build cost.
DEFAULT_REPLICAS = 64


def _hash(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(),
                          "big")


class HashRing:
    """Consistent hashing over a set of named nodes.

    Keys are arbitrary bytes (or str); nodes are the shard addresses.
    Not thread-safe — the cluster router mutates and reads it from its
    event loop only.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = int(replicas)
        self._nodes: dict[str, tuple[int, ...]] = {}
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @property
    def replicas(self) -> int:
        """Virtual nodes per shard."""
        return self._replicas

    @property
    def nodes(self) -> tuple[str, ...]:
        """The member nodes, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return str(node) in self._nodes

    def add(self, node: str) -> None:
        """Add ``node`` (idempotent): its virtual points join the circle."""
        node = str(node)
        if node in self._nodes:
            return
        points = tuple(_hash(f"{node}#{index}".encode("utf-8"))
                       for index in range(self._replicas))
        self._nodes[node] = points
        for point in points:
            bisect.insort(self._points, (point, node))

    def remove(self, node: str) -> None:
        """Remove ``node``; its arcs fall to their clockwise successors."""
        node = str(node)
        if node not in self._nodes:
            raise KeyError(node)
        del self._nodes[node]
        self._points = [(point, name) for point, name in self._points
                        if name != node]

    def preference(self, key: bytes | str) -> Iterator[str]:
        """Distinct nodes in ring-walk order from ``key``'s position.

        The first yield is the key's owner; the remainder is the failover
        order.  The walk *is* the consistency guarantee: the second node
        for ``key`` under the full ring equals the first node after the
        owner is removed, so failing over along this order reassigns
        exactly the keys the dead shard owned and nothing else.
        """
        if not self._points:
            return
        if isinstance(key, str):
            key = key.encode("utf-8")
        # owner: first virtual point at or clockwise of the key's hash
        # ("" sorts below any node name, making the point inclusive)
        start = bisect.bisect_left(self._points, (_hash(key), ""))
        count = len(self._points)
        seen: set[str] = set()
        for step in range(count):
            node = self._points[(start + step) % count][1]
            if node not in seen:
                seen.add(node)
                yield node

    def node_for(self, key: bytes | str,
                 alive: Callable[[str], bool] | None = None) -> str | None:
        """The node owning ``key`` — or, with ``alive``, the first node in
        :meth:`preference` order the predicate accepts (``None`` when no
        node qualifies)."""
        for node in self.preference(key):
            if alive is None or alive(node):
                return node
        return None
