"""Cache-affinity sharded serving: a cluster of ``NetworkServer`` shards
behind one consistent-hash router.

The single-server stack (``repro serve``) scales a machine; this package
scales machines.  The observation it is built on: the engine's solution
cache is keyed by the quantized histogram signature, so a router that
hashes the *same* signature onto a :class:`HashRing` sends every
duplicate of a frame to the shard whose cache already holds its solution
— N shards give ~N independent caches that partition the key space
instead of N cold copies of it.

* :class:`HashRing` — consistent hashing with virtual nodes; removing a
  shard remaps only its own arcs (expected ``1/N`` of keys), and the
  ring walk doubles as the failover order.
* :class:`ShardHealth` — the mark-down/mark-up state machine per shard,
  driven by periodic health probes and live-traffic evidence.
* :class:`ClusterRouter` — the asyncio front door: frames bytes like a
  shard, forwards by content key, pins sessions to their shard for life
  (a dead shard surfaces :class:`~repro.api.session.SessionClosedError`,
  never a silent re-route), answers ``stats`` with the aggregated
  cluster view.
* :func:`aggregate_stats` / :class:`ClusterCounters` — the merged stats
  payload: same shape as one server, plus per-shard attribution and the
  router's ring counters.

Run one with ``repro cluster --shards HOST:PORT,HOST:PORT --port 7096``;
clients (``repro.client``, ``repro loadtest --connect``) speak to it
unchanged.
"""

from repro.cluster.health import ShardHealth
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.router import DEFAULT_ROUTER_PORT, ClusterRouter, ShardLink
from repro.cluster.stats import ClusterCounters, aggregate_stats

__all__ = [
    "ClusterRouter",
    "ShardLink",
    "HashRing",
    "ShardHealth",
    "ClusterCounters",
    "aggregate_stats",
    "DEFAULT_REPLICAS",
    "DEFAULT_ROUTER_PORT",
]
