"""Cluster-wide statistics: per-shard attribution plus one merged view.

The router answers the ordinary ``stats`` RPC, so every existing client
(``Client.stats()``, ``repro loadtest --connect``, the CI artifacts)
works against a cluster unchanged.  :func:`aggregate_stats` builds that
answer: it keeps the exact key set of
:meth:`repro.serve.stats.ServerStats.as_dict` — counters summed across
shards, throughput summed, latencies folded as completion-weighted means,
cache rates recomputed from the summed counters — so
:func:`repro.serve.protocol.server_stats_from_wire` rebuilds a
``ServerStats`` from it like from any single server.  Two extra keys make
the cluster legible:

``shards``
    The raw per-shard payloads, keyed by shard id (each carries its own
    ``shard_id`` — the satellite attribution the per-shard snapshots were
    stamped for).
``cluster``
    The router's own view: configured/up membership, ring geometry, the
    per-shard routing and session counters of :class:`ClusterCounters`,
    failovers, and the health transitions.

Everything funnels through :func:`repro.serve.stats.json_ready`, so the
payload ``json.dumps`` round-trips by construction.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

from repro.serve.stats import json_ready

__all__ = ["ClusterCounters", "aggregate_stats"]

#: Plain additive counters of a stats payload.
_SUM_KEYS = (
    "submitted", "completed", "failed", "rejected", "batches",
    "queue_depth", "sessions_open", "sessions_opened", "sessions_closed",
    "sessions_evicted", "session_frames", "connections_v1",
    "connections_v2", "cache_hits", "cache_misses",
    "cache_replays", "cache_size", "cache_max_size", "cache_evictions",
)

#: Latency keys folded as completion-weighted means.  A weighted mean of
#: per-shard percentiles is not the cluster percentile (that would need
#: the raw windows), but it is the right single-number summary a monitor
#: can trend — and it is exact when the shards are balanced.
_LATENCY_KEYS = ("latency_mean_ms", "latency_p50_ms", "latency_p95_ms",
                 "latency_p99_ms")


class ClusterCounters:
    """The router's ring/affinity counters (mutated on its event loop).

    ``routed`` counts content-keyed one-shot RPCs per shard address — the
    observable of cache affinity (a duplicate-heavy workload should pile
    onto few shards per distinct key, not spread).  ``sessions_routed``
    counts session placements per shard; ``failovers`` counts one-shot
    requests re-forwarded past a dead shard along the ring walk.
    ``frames_fast_path`` counts v2 frames forwarded bytes-through
    (segments never decoded router-side); ``frames_transcoded`` counts v2
    frames re-encoded to v1 JSON for a v1-only shard.
    """

    def __init__(self) -> None:
        self.routed: Counter[str] = Counter()
        self.sessions_routed: Counter[str] = Counter()
        self.failovers = 0
        self.frames_fast_path = 0
        self.frames_transcoded = 0

    def as_dict(self) -> dict:
        return json_ready({
            "routed": {shard: int(count)
                       for shard, count in sorted(self.routed.items())},
            "sessions_routed": {
                shard: int(count)
                for shard, count in sorted(self.sessions_routed.items())},
            "failovers": int(self.failovers),
            "frames_fast_path": int(self.frames_fast_path),
            "frames_transcoded": int(self.frames_transcoded),
        })


def aggregate_stats(shards: Mapping[str, Mapping[str, Any]],
                    cluster: Mapping[str, Any] | None = None) -> dict:
    """Fold per-shard ``stats`` payloads into one cluster-wide payload.

    ``shards`` maps shard id → the shard's raw ``as_dict`` payload (a
    shard that could not be reached is simply absent).  The result is a
    superset of a single server's payload: same keys, plus ``shards`` and
    ``cluster`` (see the module docstring).
    """
    payloads = {str(shard): dict(payload)
                for shard, payload in shards.items()}

    def total(key: str) -> int:
        return sum(int(payload.get(key, 0)) for payload in payloads.values())

    def weighted(key: str, weight_key: str) -> float:
        pairs = [(float(payload.get(key, 0.0)),
                  int(payload.get(weight_key, 0)))
                 for payload in payloads.values()]
        weight = sum(count for _, count in pairs)
        if not weight:
            return 0.0
        return sum(value * count for value, count in pairs) / weight

    aggregated: dict[str, Any] = {"shard_id": "cluster"}
    for key in _SUM_KEYS:
        aggregated[key] = total(key)
    aggregated["mean_batch_size"] = round(
        weighted("mean_batch_size", "batches"), 3)
    # elapsed is wall time, not work: the cluster has been serving as long
    # as its longest-serving shard, while throughput adds across shards
    aggregated["elapsed_seconds"] = round(
        max((float(payload.get("elapsed_seconds", 0.0))
             for payload in payloads.values()), default=0.0), 6)
    aggregated["throughput_rps"] = round(
        sum(float(payload.get("throughput_rps", 0.0))
            for payload in payloads.values()), 3)
    for key in _LATENCY_KEYS:
        aggregated[key] = round(weighted(key, "completed"), 3)
    hits = aggregated["cache_hits"]
    misses = aggregated["cache_misses"]
    replays = aggregated["cache_replays"]
    lookups = hits + misses
    aggregated["cache_hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
    aggregated["cache_reuse_rate"] = (
        round((hits + replays) / (lookups + replays), 4)
        if lookups + replays else 0.0)
    # session telemetry stays attributable: shard-local session ids may
    # collide across shards, so they are namespaced by shard id here
    aggregated["sessions"] = {
        f"{shard}/{session_id}": dict(entry)
        for shard, payload in payloads.items()
        for session_id, entry in dict(payload.get("sessions", {})).items()
    }
    aggregated["shards"] = payloads
    aggregated["cluster"] = dict(cluster or {})
    return json_ready(aggregated)
