"""Shard membership and health: mark-down / mark-up state machines.

Membership is **static** (the ``--shards`` list); what changes at runtime
is each shard's *health*, tracked by one :class:`ShardHealth` per shard.
The router drives the transitions from two evidence streams:

* the **periodic health probe** (the ``health`` RPC of
  :mod:`repro.serve.protocol`, answered straight off the shard's event
  loop) — ``markdown_after`` *consecutive* probe failures mark the shard
  down, so one dropped packet doesn't evict a warm cache's worth of keys
  from their home;
* **live traffic** — a connection-level failure while forwarding a real
  request is ``hard`` evidence and marks the shard down immediately (the
  request it interrupted is already being failed over; routing more
  traffic at the shard would just queue more failures).

Any successful round trip — including a typed ``overloaded`` error frame,
which is proof of life from a shard that is shedding load, not gone —
marks the shard back up and resets the failure streak.  A down shard is
skipped by the ring walk (:meth:`repro.cluster.ring.HashRing.preference`),
which is exactly the consistent-hash failover: only the dead shard's keys
move, and they move back when the probe marks it up again.
"""

from __future__ import annotations

__all__ = ["ShardHealth"]


class ShardHealth:
    """Health state of one shard as seen from the router.

    Plain mutable state, mutated only on the router's event loop.
    """

    def __init__(self, shard: str, *, markdown_after: int = 2) -> None:
        if markdown_after < 1:
            raise ValueError("markdown_after must be at least 1")
        self.shard = str(shard)
        self.markdown_after = int(markdown_after)
        self.up = True
        self.failures = 0      # consecutive, reset by any success
        self.markdowns = 0     # lifetime down transitions
        self.markups = 0       # lifetime up transitions (initial up not counted)

    def note_success(self) -> bool:
        """Record a successful round trip; ``True`` when this transition
        marked the shard back up."""
        self.failures = 0
        if self.up:
            return False
        self.up = True
        self.markups += 1
        return True

    def note_failure(self, hard: bool = False) -> bool:
        """Record a failed probe — or, with ``hard``, a connection failure
        from live traffic, which marks down immediately.  ``True`` when
        this transition marked the shard down."""
        self.failures += 1
        if not self.up:
            return False
        if hard or self.failures >= self.markdown_after:
            self.up = False
            self.markdowns += 1
            return True
        return False

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return (f"ShardHealth({self.shard!r}, {state}, "
                f"failures={self.failures})")
