"""Same-host shared-memory lane for v2 image payloads.

A video client feeding a server on the *same machine* pays two pointless
copies per frame: pixels into the socket, pixels out of the socket.  When
both ends negotiate protocol v2, the client may offer a shared-memory
lane in its hello; if the server proves the offer genuine, ``feed`` /
``process`` image payloads travel via ``multiprocessing.shared_memory``
blocks and only the *control* frames (a ~100-byte block reference instead
of pixels) cross the socket.

**Same-host proof.**  "We are on the same host" cannot be taken on the
client's word — a remote client could guess block names.  The client
creates a probe block, fills it with a random nonce, and sends
``{"name", "nonce"}`` inside the hello's ``shm`` key.  The server
attaches the named block and compares contents: only a process on the
same machine can see the nonce, so a spoofed claim (wrong host, wrong
nonce, stale name) fails the attach or the compare and the server answers
``shm: false`` — the connection continues on the ordinary socket lane.

**Frame transport.**  :class:`ShmLane` (client side) maintains one
reusable data block per connection, grown on demand; an image travels as
the descriptor ``{"block", "dtype", "shape", "nbytes", "bit_depth",
"label"}`` in place of its pixel payload.  The lane is restricted to the
*lockstep* sync client — one request in flight per connection — so the
block is never overwritten before the server has copied it out
(:meth:`ShmRegistry.resolve` copies at decode time).  Pipelined and async
traffic stays on the socket lane.

**Leak-proofing.**  Shared-memory blocks outlive processes, so both ends
unlink: the client in :meth:`ShmLane.close` (normal shutdown), the server
in :meth:`ShmRegistry.close` on session close/disconnect (crashed-client
insurance).  Whichever side loses the race suppresses the
``FileNotFoundError``.
"""

from __future__ import annotations

import secrets
from typing import Any, Mapping

import numpy as np

from repro.imaging.image import Image
from repro.serve.protocol import ProtocolError, check_descriptor

try:  # gate the optional dependency: some minimal pythons omit _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - present on every supported target
    _shared_memory = None

__all__ = [
    "shm_available",
    "ShmLane",
    "ShmRegistry",
    "is_shm_wire",
]

_NONCE_BYTES = 16


def shm_available() -> bool:
    """Whether this interpreter can host the shared-memory lane."""
    return _shared_memory is not None


def _attach(name: str):
    """Attach an existing block without registering it with the resource
    tracker (the attaching side never owns the block; tracking it would
    double-unlink).  ``track=`` only exists on 3.13+, so fall back."""
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return _shared_memory.SharedMemory(name=name)


def _quiet_unlink(block) -> None:
    try:
        block.unlink()
    except FileNotFoundError:
        pass


def is_shm_wire(wire: Any) -> bool:
    """Whether an image wire value is a shared-memory block reference."""
    return isinstance(wire, Mapping) and "shm" in wire


# --------------------------------------------------------------------- #
# client side
# --------------------------------------------------------------------- #
class ShmLane:
    """Client side of the lane: the probe offer and the data block."""

    def __init__(self) -> None:
        if not shm_available():
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._probe = None
        self._nonce = b""
        self._data = None
        self.active = False

    # -- negotiation --------------------------------------------------- #
    def offer(self) -> dict:
        """The ``shm`` payload of the client hello: a nonce-filled probe
        block only a same-host server can read."""
        self._nonce = secrets.token_bytes(_NONCE_BYTES)
        self._probe = _shared_memory.SharedMemory(create=True,
                                                  size=_NONCE_BYTES)
        self._probe.buf[:_NONCE_BYTES] = self._nonce
        return {"name": self._probe.name, "nonce": self._nonce.hex()}

    def conclude(self, accepted: bool) -> None:
        """Record the server's verdict and retire the probe block."""
        if self._probe is not None:
            _quiet_unlink(self._probe)
            self._probe.close()
            self._probe = None
        self.active = bool(accepted)

    # -- frame transport ----------------------------------------------- #
    def send_image(self, image: Image) -> dict:
        """Write ``image`` into the data block; returns the block
        descriptor the caller puts under the ``"shm"`` key of the wire
        value that replaces the pixel payload."""
        if not self.active:
            raise RuntimeError("shared-memory lane was not negotiated")
        pixels = image.pixels
        if image.bit_depth <= 8:
            pixels = pixels.astype(np.uint8)
        pixels = np.ascontiguousarray(pixels)
        nbytes = int(pixels.nbytes)
        if self._data is None or self._data.size < nbytes:
            if self._data is not None:
                _quiet_unlink(self._data)
                self._data.close()
            self._data = _shared_memory.SharedMemory(create=True, size=nbytes)
        self._data.buf[:nbytes] = pixels.tobytes()
        return {
            "block": self._data.name,
            "dtype": pixels.dtype.str,
            "shape": [int(n) for n in pixels.shape],
            "nbytes": nbytes,
            "bit_depth": int(image.bit_depth),
            "label": image.name,
        }

    def close(self) -> None:
        """Unlink and release every block this lane created."""
        self.conclude(False)
        if self._data is not None:
            _quiet_unlink(self._data)
            self._data.close()
            self._data = None


# --------------------------------------------------------------------- #
# server side
# --------------------------------------------------------------------- #
class ShmRegistry:
    """Server side of the lane, one per connection: probe verification,
    cached data-block attachments, and unlink-on-disconnect."""

    def __init__(self) -> None:
        self._attached: dict[str, Any] = {}

    @staticmethod
    def verify_offer(offer: Any) -> bool:
        """Prove (or refute) a hello's same-host claim by reading the
        nonce back out of the named probe block."""
        if not shm_available() or not isinstance(offer, Mapping):
            return False
        try:
            name = str(offer["name"])
            nonce = bytes.fromhex(str(offer["nonce"]))
        except (KeyError, TypeError, ValueError):
            return False
        if not nonce:
            return False
        try:
            probe = _attach(name)
        except (FileNotFoundError, OSError, ValueError):
            return False
        try:
            return bytes(probe.buf[:len(nonce)]) == nonce
        finally:
            probe.close()

    def resolve(self, wire: Mapping[str, Any]) -> Image:
        """Materialize the image a ``{"shm": ...}`` wire value references.

        The pixels are **copied** out of the block (the client will reuse
        it for the next frame); descriptor validation runs through the
        same :func:`~repro.serve.protocol.check_descriptor` gate as the
        socket codecs, so a malformed reference is a ``bad_request``.
        """
        descriptor = wire.get("shm")
        if not isinstance(descriptor, Mapping):
            raise ProtocolError("malformed shared-memory reference")
        try:
            name = str(descriptor["block"])
            nbytes = int(descriptor["nbytes"])
            bit_depth = int(descriptor["bit_depth"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed shared-memory reference: {exc}") from exc
        dtype, shape = check_descriptor(descriptor.get("dtype"),
                                        descriptor.get("shape"), nbytes)
        block = self._attached.get(name)
        if block is None:
            try:
                block = _attach(name)
            except (FileNotFoundError, OSError, ValueError) as exc:
                raise ProtocolError(
                    f"unknown shared-memory block {name!r}") from exc
            self._attached[name] = block
        # block sizes round up to the page, so bound, don't equate
        if nbytes > block.size:
            raise ProtocolError(
                f"shared-memory reference claims {nbytes} bytes of a "
                f"{block.size}-byte block")
        pixels = np.frombuffer(block.buf[:nbytes],
                               dtype=dtype).reshape(shape).copy()
        try:
            return Image(pixels, bit_depth=bit_depth,
                         name=str(descriptor.get("label", "")))
        except ValueError as exc:
            raise ProtocolError(f"malformed shared-memory image: {exc}") from exc

    def close(self) -> None:
        """Release every attachment and unlink the blocks — the
        crashed-client insurance making the lane leak-proof."""
        for block in self._attached.values():
            _quiet_unlink(block)
            block.close()
        self._attached.clear()
