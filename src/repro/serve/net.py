"""Asyncio network front end: the serving stack behind a TCP socket.

:class:`NetworkServer` puts the existing in-process machinery — the
thread-safe :class:`~repro.api.engine.Engine`, the micro-batching
:class:`~repro.serve.coalescer.RequestCoalescer` worker pool and the
:class:`~repro.serve.server.SessionManager` — behind the wire protocol of
:mod:`repro.serve.protocol`.  The division of labour is strict:

* the **event loop** only frames/unframes JSON and shuttles bytes — it
  never touches pixels;
* **engine work** stays on threads: one-shot ``process`` requests and
  session ``feed`` frames enter the shared
  :class:`~repro.serve.server.Server` queue (so requests from *many
  connections* coalesce into the same micro-batch ticks as in-process
  traffic), while histogram-only ``solve`` requests and session opens run
  on a small dedicated executor via ``run_in_executor`` (a warmed solve is
  a cache lookup, far cheaper than a batch tick);
* **backpressure survives the hop**: queue-refused work surfaces as a
  typed ``overloaded`` error frame carrying the structured
  ``retry_after`` / ``queue_depth`` hints of
  :class:`~repro.serve.coalescer.ServerOverloadedError` — the connection
  stays open, the client backs off;
* **sessions are connection-owned**: a stream session opened over a
  connection dies with it (close-on-disconnect), so a vanished client can
  never pin the session table.

The event-loop discipline — length-prefixed frames, a ``hello``
handshake with version negotiation, one asyncio task per request, a
per-connection write lock, close-on-disconnect cleanup, and the
serve/run/start/close lifecycle — is factored into
:class:`FrameServerBase` so the cluster router of
:mod:`repro.cluster.router` (a byte-shuttling front for many
``NetworkServer`` shards) speaks the protocol with the exact same manners.

**Protocol v2.**  Connections negotiate the newest shared generation at
hello time (:func:`repro.serve.protocol.negotiated_version`); each
request frame is then decoded by sniffing — v1 JSON or the binary v2
format of :mod:`repro.serve.wire2` — and answered *in the format it
arrived in*, so a router can forward mixed-version traffic verbatim.
Responders may also return pre-encoded payload bytes instead of a
message dict (the router's bytes-through fast path).  On a negotiated
same-host connection the server additionally accepts image payloads by
shared-memory reference (:mod:`repro.serve.shm`), with the blocks
unlinked on disconnect so a crashed client cannot leak them.

``repro serve --host H --port P`` runs one from the command line;
:mod:`repro.client` is the SDK on the other end.  For tests, benchmarks
and examples the server also runs on a background thread::

    net = NetworkServer(Server(engine=engine))
    host, port = net.start()          # bound, accepting
    ...
    net.close()                       # drains and closes the wrapped Server

The :class:`NetworkServer` owns the :class:`~repro.serve.server.Server` it
wraps: :meth:`NetworkServer.close` closes it (and its engine workers) too.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.api.session import SessionClosedError
from repro.serve import protocol, shm, wire2
from repro.serve.server import Server, ServerSession

__all__ = ["ConnectionContext", "FrameServerBase", "NetworkServer",
           "DEFAULT_PORT"]

#: Default TCP port of ``repro serve --port`` and the client SDK.
DEFAULT_PORT = 7095


class ConnectionContext:
    """Per-connection state threaded through the framing layer.

    ``version`` is the generation negotiated at hello time; ``shm`` is
    the server-side :class:`~repro.serve.shm.ShmRegistry` when the
    shared-memory lane was negotiated (``None`` otherwise); ``state`` is
    whatever the subclass's ``_new_connection`` returned (the session
    table for :class:`NetworkServer`, the routing record for the cluster
    router).
    """

    __slots__ = ("version", "shm", "state")

    def __init__(self, version: int, state: Any = None) -> None:
        self.version = int(version)
        self.shm: shm.ShmRegistry | None = None
        self.state = state


class FrameServerBase:
    """Shared asyncio machinery of the protocol's byte-framing servers.

    Owns the bind/serve/close lifecycle (including the background-thread
    :meth:`start` used by tests and benchmarks) and the per-connection
    discipline: ``hello`` handshake, length-prefixed frames, one asyncio
    task per request (a slow request must not stall its connection
    siblings; responses correlate by request id), a per-connection write
    lock, and a cleanup hook when the peer disconnects.

    Subclasses implement :meth:`_respond` (and optionally the
    ``_new_connection`` / ``_on_disconnect`` / ``_on_serve_start`` /
    ``_on_serve_stop`` / ``_on_close`` hooks);
    :class:`NetworkServer` answers requests with engine work,
    :class:`repro.cluster.router.ClusterRouter` by forwarding frames to
    backend shards.
    """

    _thread_name = "repro-frame-server"

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = int(port)
        self._bound: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started: threading.Event | None = None
        self._startup_error: BaseException | None = None
        self._connections: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` actually bound, or ``None`` before serving."""
        return self._bound

    async def serve(self, ready: Callable[[], None] | None = None) -> None:
        """Bind and serve until :meth:`close` (or task cancellation).

        ``ready`` is called once the socket is bound and :attr:`address`
        is set — the hook the CLI uses to print the listening line and
        tests use to unblock the client.
        """
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._on_serve_start()
            tcp = await asyncio.start_server(self._handle_connection,
                                             self.host, self.port)
        except BaseException:
            await self._on_serve_stop()
            self._loop = None
            self._stop_event = None
            raise
        sockname = tcp.sockets[0].getsockname()
        self._bound = (str(sockname[0]), int(sockname[1]))
        if ready is not None:
            ready()
        try:
            async with tcp:
                await self._stop_event.wait()
            # hang up the remaining connections deliberately (instead of
            # letting asyncio.run cancel them mid-write at loop teardown)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections,
                                     return_exceptions=True)
        finally:
            await self._on_serve_stop()
            self._bound = None
            self._loop = None
            self._stop_event = None

    def run(self, ready: Callable[[], None] | None = None) -> None:
        """Blocking convenience: ``asyncio.run`` the server in this thread
        (the ``repro serve --port`` mode).  Returns after :meth:`close`
        from another thread, or raises ``KeyboardInterrupt`` through."""
        asyncio.run(self.serve(ready=ready))

    def start(self) -> tuple[str, int]:
        """Serve on a daemon background thread; returns the bound address.

        The pattern tests, benchmarks and examples use: real sockets, no
        subprocess.  Pair with :meth:`close`.
        """
        if self._thread is not None:
            raise RuntimeError("the server is already running")
        self._started = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True,
                                        name=self._thread_name)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join()
            self._thread = None
            raise error
        address = self._bound
        assert address is not None
        return address

    def _thread_main(self) -> None:
        assert self._started is not None
        try:
            asyncio.run(self.serve(ready=self._started.set))
        except BaseException as exc:   # noqa: BLE001 - reported to starter
            self._startup_error = exc
        finally:
            # unblock start() whether binding succeeded, failed, or the
            # loop exited before ready fired
            self._started.set()

    def close(self, wait: bool = True) -> None:
        """Stop accepting connections and release owned resources.

        Safe to call from any thread (and idempotent).  With ``wait`` the
        background thread (if any) is joined before the subclass
        :meth:`_on_close` hook runs.
        """
        if self._closed:
            return
        self._closed = True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None and wait:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._on_close(wait)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    async def _on_serve_start(self) -> None:
        """Runs on the serving loop before the listening socket binds."""

    async def _on_serve_stop(self) -> None:
        """Runs on the serving loop as it shuts down (always paired with
        a completed :meth:`_on_serve_start`)."""

    def _on_close(self, wait: bool) -> None:
        """Release subclass-owned resources from :meth:`close`."""

    def _hello_response(self, conn: ConnectionContext, hello: dict) -> dict:
        """The server side of the handshake, answering ``hello`` with the
        negotiated ``conn.version``."""
        return protocol.hello_frame(version=conn.version)

    def _new_connection(self) -> Any:
        """Fresh per-connection subclass state, carried on
        :attr:`ConnectionContext.state`."""
        return None

    def _on_connect(self, conn: ConnectionContext) -> None:
        """Runs once per connection, right after version negotiation."""

    async def _respond_payload(self, payload: bytes,
                               conn: ConnectionContext,
                               version: int) -> dict | bytes:
        """Answer one raw frame payload.  The default decodes it and
        delegates to :meth:`_respond`; the cluster router overrides this
        to forward v2 payloads without ever decoding their segments."""
        message = (wire2.decode_message(payload) if version == 2
                   else protocol.decode_frame(payload))
        return await self._respond(message, conn, version)

    async def _respond(self, message: dict, conn: ConnectionContext,
                       version: int) -> dict | bytes:
        """Answer one request frame; exceptions become typed error frames.

        ``version`` is the generation of the *frame* (by sniff — a
        negotiated-v2 connection may still carry v1 frames, e.g. through
        a router); the reply travels in the same format.  Return a
        message dict, or pre-encoded payload bytes to skip re-encoding
        (the router's bytes-through fast path).
        """
        raise NotImplementedError

    async def _on_disconnect(self, conn: ConnectionContext) -> None:
        """Clean up one connection's state after its peer is gone."""

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _read_payload(self, reader: asyncio.StreamReader) -> bytes:
        header = await reader.readexactly(protocol.HEADER_BYTES)
        return await reader.readexactly(protocol.frame_length(header))

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, message: dict | bytes,
                    version: int = protocol.PROTOCOL_V1) -> None:
        if isinstance(message, (bytes, bytearray, memoryview)):
            payload = bytes(message)
            frame = (len(payload).to_bytes(protocol.HEADER_BYTES, "big")
                     + payload)
        elif version >= 2:
            frame = wire2.encode_frame(message)
        else:
            frame = protocol.encode_frame(message)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn: ConnectionContext | None = None
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        try:
            try:
                # the hello itself always travels as a v1 JSON frame —
                # it is what decides whether v2 may be spoken at all
                hello = protocol.decode_frame(
                    await self._read_payload(reader))
            except (asyncio.IncompleteReadError, protocol.ProtocolError):
                return
            negotiated = (protocol.negotiated_version(hello)
                          if hello.get("type") == "hello" else 0)
            if negotiated == 0:
                await self._send(writer, write_lock, protocol.error_response(
                    hello.get("id"),
                    protocol.ProtocolError(
                        f"unsupported protocol: expected a hello frame "
                        f"offering a version within "
                        f"[{protocol.PROTOCOL_V1}, "
                        f"{protocol.PROTOCOL_VERSION}], got "
                        f"{hello.get('type')!r} v{hello.get('version')!r}"),
                    code="unsupported_version"))
                return
            conn = ConnectionContext(negotiated, self._new_connection())
            self._on_connect(conn)
            await self._send(writer, write_lock,
                             self._hello_response(conn, hello))
            while True:
                try:
                    payload = await self._read_payload(reader)
                except asyncio.IncompleteReadError:
                    break   # clean EOF (or mid-frame disconnect)
                # one task per request: a slow solve must not stall a
                # sibling session's feed on the same connection; response
                # order is by completion, correlated by request id
                task = asyncio.create_task(
                    self._dispatch(payload, conn, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError,
                protocol.ProtocolError, asyncio.CancelledError):
            pass
        finally:
            if me is not None:
                self._connections.discard(me)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if conn is not None:
                with contextlib.suppress(Exception):
                    await self._on_disconnect(conn)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, payload: bytes, conn: ConnectionContext,
                        writer: asyncio.StreamWriter,
                        write_lock: asyncio.Lock) -> None:
        version = 2 if wire2.is_v2_payload(payload) else 1
        try:
            response = await self._respond_payload(payload, conn, version)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:   # noqa: BLE001 - typed error frame
            # a malformed payload (bad array descriptor, undecodable
            # frame) answers with a typed error and the connection stays
            # open — the length prefix was valid, framing is still in
            # sync.  Recover the correlation id from the frame header
            # (for a v2 frame that costs O(header), even when it was the
            # segment validation that failed).
            request_id = None
            with contextlib.suppress(Exception):
                request_id = (wire2.peek(payload) if version == 2
                              else protocol.decode_frame(payload)).get("id")
            response = protocol.error_response(request_id, exc)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError,
                                 RuntimeError):
            await self._send(writer, write_lock, response, version)


class NetworkServer(FrameServerBase):
    """Serve a :class:`~repro.serve.server.Server` over asyncio TCP.

    Parameters
    ----------
    server:
        The in-process serving stack to expose; a fresh
        :class:`~repro.serve.server.Server` built from ``server_options``
        when omitted.  The network server owns it either way and closes it
        on :meth:`close`.
    host, port:
        Bind address.  ``port=0`` picks a free port — read
        :attr:`address` (or the :meth:`start` return value) for the bound
        one.
    solve_workers:
        Threads of the dedicated executor running histogram-only solves
        and session opens (the paths that bypass the micro-batch queue).
    shard_id:
        Identity this server advertises in its ``hello`` frame, ``health``
        responses and ``stats`` payloads — how aggregated cluster stats
        attribute counters to shards.  Defaults to the bound
        ``"host:port"`` while serving.
    server_options:
        Forwarded to :class:`~repro.serve.server.Server` when ``server``
        is omitted.
    """

    _thread_name = "repro-net-server"

    def __init__(self, server: Server | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 solve_workers: int = 4, shard_id: str | None = None,
                 **server_options) -> None:
        super().__init__(host=host, port=port)
        self.server = server if server is not None else Server(**server_options)
        self._shard_id = None if shard_id is None else str(shard_id)
        # currently-open connections by negotiated generation; only ever
        # touched on the serving loop, snapshotted into stats payloads
        self._conn_counts = {1: 0, 2: 0}
        self._executor = ThreadPoolExecutor(
            max_workers=int(solve_workers),
            thread_name_prefix="repro-net-solve")

    @property
    def shard_id(self) -> str | None:
        """The advertised shard identity (``None`` before binding unless
        one was configured)."""
        if self._shard_id is not None:
            return self._shard_id
        bound = self._bound
        return f"{bound[0]}:{bound[1]}" if bound is not None else None

    def _on_close(self, wait: bool) -> None:
        self._executor.shutdown(wait=wait)
        self.server.close(wait=wait)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _hello_response(self, conn: ConnectionContext, hello: dict) -> dict:
        verdict = None
        offer = hello.get("shm")
        if offer is not None:
            # same-host proof: attach the client's probe block and read
            # its nonce back — a spoofed claim fails here and the
            # connection simply continues on the socket lane
            accepted = (conn.version >= 2
                        and shm.ShmRegistry.verify_offer(offer))
            if accepted:
                conn.shm = shm.ShmRegistry()
            verdict = bool(accepted)
        return protocol.hello_frame(version=conn.version,
                                    shard_id=self.shard_id, shm=verdict)

    def _new_connection(self) -> dict[str, ServerSession]:
        return {}

    def _on_connect(self, conn: ConnectionContext) -> None:
        self._conn_counts[conn.version] += 1

    async def _on_disconnect(self, conn: ConnectionContext) -> None:
        self._conn_counts[conn.version] -= 1
        # close-on-disconnect: this connection's sessions die with it,
        # so an abandoned client cannot pin the session table
        sessions = conn.state
        for handle in sessions.values():
            with contextlib.suppress(Exception):
                handle.close()
        sessions.clear()
        if conn.shm is not None:
            # unlink the peer's shared-memory blocks: a crashed client
            # must not leak them past its connection
            conn.shm.close()
            conn.shm = None

    def _image_in(self, wire: Any, conn: ConnectionContext):
        """An inbound image payload: shared-memory reference or codec."""
        if shm.is_shm_wire(wire):
            if conn.shm is None:
                raise protocol.ProtocolError(
                    "shared-memory lane was not negotiated on this "
                    "connection")
            return conn.shm.resolve(wire)
        return protocol.image_from_wire(wire)

    async def _respond(self, message: dict, conn: ConnectionContext,
                       version: int) -> dict:
        kind = message.get("type")
        request_id = message.get("id")
        sessions: dict[str, ServerSession] = conn.state
        binary = version >= 2
        loop = asyncio.get_running_loop()

        if kind == "solve":
            histogram = protocol.histogram_from_wire(message["histogram"])
            solution = await loop.run_in_executor(
                self._executor,
                functools.partial(self.server.engine.solve, histogram,
                                  float(message["max_distortion"]),
                                  algorithm=message.get("algorithm")))
            return protocol.solution_response(request_id, solution)

        if kind == "process":
            image = self._image_in(message["image"], conn)
            # timeout=0: a full queue refuses immediately with the typed
            # overloaded error — network clients back off on retry_after
            # rather than holding the event loop hostage
            future = self.server.submit(image,
                                        float(message["max_distortion"]),
                                        algorithm=message.get("algorithm"),
                                        timeout=0.0)
            result = await asyncio.wrap_future(future)
            # v2 responses omit the original image: it is the grayscale
            # rendition of the request image, which the client rebuilds
            # locally bit-exactly — the downlink never re-ships pixels
            return protocol.result_response(request_id, result,
                                            binary=binary,
                                            include_original=not binary)

        if kind == "open_session":
            options = dict(message.get("options") or {})
            handle = await loop.run_in_executor(
                self._executor,
                functools.partial(self.server.open_session,
                                  float(message["max_distortion"]),
                                  algorithm=message.get("algorithm"),
                                  **options))
            sessions[handle.id] = handle
            return protocol.session_response(request_id, handle.id)

        if kind == "feed":
            session_id = message.get("session_id")
            handle = sessions.get(session_id)
            if handle is None:
                raise SessionClosedError(
                    f"unknown session {session_id!r} on this connection")
            frame = self._image_in(message["frame"], conn)
            future = handle.submit(frame, timeout=0.0)
            outcome = await asyncio.wrap_future(future)
            return protocol.frame_response(request_id, outcome,
                                           binary=binary,
                                           include_original=not binary)

        if kind == "close_session":
            session_id = message.get("session_id")
            handle = sessions.pop(session_id, None)
            if handle is not None:
                handle.close()
            return protocol.session_closed_response(request_id, session_id)

        if kind == "stats":
            stats = dataclasses.replace(
                self.server.stats(),
                connections_v1=self._conn_counts[1],
                connections_v2=self._conn_counts[2])
            shard_id = self.shard_id
            if shard_id is not None:
                stats = dataclasses.replace(stats, shard_id=shard_id)
            return protocol.stats_response(request_id, stats)

        if kind == "health":
            # straight off the event loop: no engine work, so the probe
            # answers even while the batch queue is saturated
            return protocol.health_response(
                request_id, shard_id=self.shard_id,
                sessions_open=self.server.session_count,
                queue_depth=self.server.queue_depth)

        raise protocol.ProtocolError(f"unknown request type {kind!r}")
