"""Asyncio network front end: the serving stack behind a TCP socket.

:class:`NetworkServer` puts the existing in-process machinery — the
thread-safe :class:`~repro.api.engine.Engine`, the micro-batching
:class:`~repro.serve.coalescer.RequestCoalescer` worker pool and the
:class:`~repro.serve.server.SessionManager` — behind the wire protocol of
:mod:`repro.serve.protocol`.  The division of labour is strict:

* the **event loop** only frames/unframes JSON and shuttles bytes — it
  never touches pixels;
* **engine work** stays on threads: one-shot ``process`` requests and
  session ``feed`` frames enter the shared
  :class:`~repro.serve.server.Server` queue (so requests from *many
  connections* coalesce into the same micro-batch ticks as in-process
  traffic), while histogram-only ``solve`` requests and session opens run
  on a small dedicated executor via ``run_in_executor`` (a warmed solve is
  a cache lookup, far cheaper than a batch tick);
* **backpressure survives the hop**: queue-refused work surfaces as a
  typed ``overloaded`` error frame carrying the structured
  ``retry_after`` / ``queue_depth`` hints of
  :class:`~repro.serve.coalescer.ServerOverloadedError` — the connection
  stays open, the client backs off;
* **sessions are connection-owned**: a stream session opened over a
  connection dies with it (close-on-disconnect), so a vanished client can
  never pin the session table.

The event-loop discipline — length-prefixed frames, a ``hello``
handshake, one asyncio task per request, a per-connection write lock,
close-on-disconnect cleanup, and the serve/run/start/close lifecycle — is
factored into :class:`FrameServerBase` so the cluster router of
:mod:`repro.cluster.router` (a byte-shuttling front for many
``NetworkServer`` shards) speaks the protocol with the exact same manners.

``repro serve --host H --port P`` runs one from the command line;
:mod:`repro.client` is the SDK on the other end.  For tests, benchmarks
and examples the server also runs on a background thread::

    net = NetworkServer(Server(engine=engine))
    host, port = net.start()          # bound, accepting
    ...
    net.close()                       # drains and closes the wrapped Server

The :class:`NetworkServer` owns the :class:`~repro.serve.server.Server` it
wraps: :meth:`NetworkServer.close` closes it (and its engine workers) too.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.api.session import SessionClosedError
from repro.serve import protocol
from repro.serve.server import Server, ServerSession

__all__ = ["FrameServerBase", "NetworkServer", "DEFAULT_PORT"]

#: Default TCP port of ``repro serve --port`` and the client SDK.
DEFAULT_PORT = 7095


class FrameServerBase:
    """Shared asyncio machinery of the protocol's byte-framing servers.

    Owns the bind/serve/close lifecycle (including the background-thread
    :meth:`start` used by tests and benchmarks) and the per-connection
    discipline: ``hello`` handshake, length-prefixed frames, one asyncio
    task per request (a slow request must not stall its connection
    siblings; responses correlate by request id), a per-connection write
    lock, and a cleanup hook when the peer disconnects.

    Subclasses implement :meth:`_respond` (and optionally the
    ``_new_connection`` / ``_on_disconnect`` / ``_on_serve_start`` /
    ``_on_serve_stop`` / ``_on_close`` hooks);
    :class:`NetworkServer` answers requests with engine work,
    :class:`repro.cluster.router.ClusterRouter` by forwarding frames to
    backend shards.
    """

    _thread_name = "repro-frame-server"

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = int(port)
        self._bound: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started: threading.Event | None = None
        self._startup_error: BaseException | None = None
        self._connections: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` actually bound, or ``None`` before serving."""
        return self._bound

    async def serve(self, ready: Callable[[], None] | None = None) -> None:
        """Bind and serve until :meth:`close` (or task cancellation).

        ``ready`` is called once the socket is bound and :attr:`address`
        is set — the hook the CLI uses to print the listening line and
        tests use to unblock the client.
        """
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._on_serve_start()
            tcp = await asyncio.start_server(self._handle_connection,
                                             self.host, self.port)
        except BaseException:
            await self._on_serve_stop()
            self._loop = None
            self._stop_event = None
            raise
        sockname = tcp.sockets[0].getsockname()
        self._bound = (str(sockname[0]), int(sockname[1]))
        if ready is not None:
            ready()
        try:
            async with tcp:
                await self._stop_event.wait()
            # hang up the remaining connections deliberately (instead of
            # letting asyncio.run cancel them mid-write at loop teardown)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections,
                                     return_exceptions=True)
        finally:
            await self._on_serve_stop()
            self._bound = None
            self._loop = None
            self._stop_event = None

    def run(self, ready: Callable[[], None] | None = None) -> None:
        """Blocking convenience: ``asyncio.run`` the server in this thread
        (the ``repro serve --port`` mode).  Returns after :meth:`close`
        from another thread, or raises ``KeyboardInterrupt`` through."""
        asyncio.run(self.serve(ready=ready))

    def start(self) -> tuple[str, int]:
        """Serve on a daemon background thread; returns the bound address.

        The pattern tests, benchmarks and examples use: real sockets, no
        subprocess.  Pair with :meth:`close`.
        """
        if self._thread is not None:
            raise RuntimeError("the server is already running")
        self._started = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True,
                                        name=self._thread_name)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join()
            self._thread = None
            raise error
        address = self._bound
        assert address is not None
        return address

    def _thread_main(self) -> None:
        assert self._started is not None
        try:
            asyncio.run(self.serve(ready=self._started.set))
        except BaseException as exc:   # noqa: BLE001 - reported to starter
            self._startup_error = exc
        finally:
            # unblock start() whether binding succeeded, failed, or the
            # loop exited before ready fired
            self._started.set()

    def close(self, wait: bool = True) -> None:
        """Stop accepting connections and release owned resources.

        Safe to call from any thread (and idempotent).  With ``wait`` the
        background thread (if any) is joined before the subclass
        :meth:`_on_close` hook runs.
        """
        if self._closed:
            return
        self._closed = True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None and wait:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._on_close(wait)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    async def _on_serve_start(self) -> None:
        """Runs on the serving loop before the listening socket binds."""

    async def _on_serve_stop(self) -> None:
        """Runs on the serving loop as it shuts down (always paired with
        a completed :meth:`_on_serve_start`)."""

    def _on_close(self, wait: bool) -> None:
        """Release subclass-owned resources from :meth:`close`."""

    def _hello_response(self) -> dict:
        """The server side of the handshake."""
        return protocol.hello_frame()

    def _new_connection(self) -> Any:
        """Fresh per-connection state, handed to :meth:`_respond` and
        :meth:`_on_disconnect`."""
        return None

    async def _respond(self, message: dict, conn: Any) -> dict:
        """Answer one request frame; exceptions become typed error frames."""
        raise NotImplementedError

    async def _on_disconnect(self, conn: Any) -> None:
        """Clean up one connection's state after its peer is gone."""

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _read_frame(self, reader: asyncio.StreamReader) -> dict:
        header = await reader.readexactly(protocol.HEADER_BYTES)
        payload = await reader.readexactly(protocol.frame_length(header))
        return protocol.decode_frame(payload)

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, message: dict) -> None:
        frame = protocol.encode_frame(message)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = self._new_connection()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        try:
            try:
                hello = await self._read_frame(reader)
            except (asyncio.IncompleteReadError, protocol.ProtocolError):
                return
            version = hello.get("version")
            if hello.get("type") != "hello" or version != protocol.PROTOCOL_VERSION:
                await self._send(writer, write_lock, protocol.error_response(
                    hello.get("id"),
                    protocol.ProtocolError(
                        f"unsupported protocol: expected a hello frame with "
                        f"version {protocol.PROTOCOL_VERSION}, got "
                        f"{hello.get('type')!r} v{version!r}"),
                    code="unsupported_version"))
                return
            await self._send(writer, write_lock, self._hello_response())
            while True:
                try:
                    message = await self._read_frame(reader)
                except asyncio.IncompleteReadError:
                    break   # clean EOF (or mid-frame disconnect)
                # one task per request: a slow solve must not stall a
                # sibling session's feed on the same connection; response
                # order is by completion, correlated by request id
                task = asyncio.create_task(
                    self._dispatch(message, conn, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError,
                protocol.ProtocolError, asyncio.CancelledError):
            pass
        finally:
            if me is not None:
                self._connections.discard(me)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                await self._on_disconnect(conn)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, message: dict, conn: Any,
                        writer: asyncio.StreamWriter,
                        write_lock: asyncio.Lock) -> None:
        request_id = message.get("id")
        try:
            response = await self._respond(message, conn)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:   # noqa: BLE001 - typed error frame
            response = protocol.error_response(request_id, exc)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError,
                                 RuntimeError):
            await self._send(writer, write_lock, response)


class NetworkServer(FrameServerBase):
    """Serve a :class:`~repro.serve.server.Server` over asyncio TCP.

    Parameters
    ----------
    server:
        The in-process serving stack to expose; a fresh
        :class:`~repro.serve.server.Server` built from ``server_options``
        when omitted.  The network server owns it either way and closes it
        on :meth:`close`.
    host, port:
        Bind address.  ``port=0`` picks a free port — read
        :attr:`address` (or the :meth:`start` return value) for the bound
        one.
    solve_workers:
        Threads of the dedicated executor running histogram-only solves
        and session opens (the paths that bypass the micro-batch queue).
    shard_id:
        Identity this server advertises in its ``hello`` frame, ``health``
        responses and ``stats`` payloads — how aggregated cluster stats
        attribute counters to shards.  Defaults to the bound
        ``"host:port"`` while serving.
    server_options:
        Forwarded to :class:`~repro.serve.server.Server` when ``server``
        is omitted.
    """

    _thread_name = "repro-net-server"

    def __init__(self, server: Server | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 solve_workers: int = 4, shard_id: str | None = None,
                 **server_options) -> None:
        super().__init__(host=host, port=port)
        self.server = server if server is not None else Server(**server_options)
        self._shard_id = None if shard_id is None else str(shard_id)
        self._executor = ThreadPoolExecutor(
            max_workers=int(solve_workers),
            thread_name_prefix="repro-net-solve")

    @property
    def shard_id(self) -> str | None:
        """The advertised shard identity (``None`` before binding unless
        one was configured)."""
        if self._shard_id is not None:
            return self._shard_id
        bound = self._bound
        return f"{bound[0]}:{bound[1]}" if bound is not None else None

    def _on_close(self, wait: bool) -> None:
        self._executor.shutdown(wait=wait)
        self.server.close(wait=wait)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _hello_response(self) -> dict:
        return protocol.hello_frame(shard_id=self.shard_id)

    def _new_connection(self) -> dict[str, ServerSession]:
        return {}

    async def _on_disconnect(self, sessions: dict[str, ServerSession]) -> None:
        # close-on-disconnect: this connection's sessions die with it,
        # so an abandoned client cannot pin the session table
        for handle in sessions.values():
            with contextlib.suppress(Exception):
                handle.close()
        sessions.clear()

    async def _respond(self, message: dict,
                       sessions: dict[str, ServerSession]) -> dict:
        kind = message.get("type")
        request_id = message.get("id")
        loop = asyncio.get_running_loop()

        if kind == "solve":
            histogram = protocol.histogram_from_wire(message["histogram"])
            solution = await loop.run_in_executor(
                self._executor,
                functools.partial(self.server.engine.solve, histogram,
                                  float(message["max_distortion"]),
                                  algorithm=message.get("algorithm")))
            return protocol.solution_response(request_id, solution)

        if kind == "process":
            image = protocol.image_from_wire(message["image"])
            # timeout=0: a full queue refuses immediately with the typed
            # overloaded error — network clients back off on retry_after
            # rather than holding the event loop hostage
            future = self.server.submit(image,
                                        float(message["max_distortion"]),
                                        algorithm=message.get("algorithm"),
                                        timeout=0.0)
            result = await asyncio.wrap_future(future)
            return protocol.result_response(request_id, result)

        if kind == "open_session":
            options = dict(message.get("options") or {})
            handle = await loop.run_in_executor(
                self._executor,
                functools.partial(self.server.open_session,
                                  float(message["max_distortion"]),
                                  algorithm=message.get("algorithm"),
                                  **options))
            sessions[handle.id] = handle
            return protocol.session_response(request_id, handle.id)

        if kind == "feed":
            session_id = message.get("session_id")
            handle = sessions.get(session_id)
            if handle is None:
                raise SessionClosedError(
                    f"unknown session {session_id!r} on this connection")
            frame = protocol.image_from_wire(message["frame"])
            future = handle.submit(frame, timeout=0.0)
            outcome = await asyncio.wrap_future(future)
            return protocol.frame_response(request_id, outcome)

        if kind == "close_session":
            session_id = message.get("session_id")
            handle = sessions.pop(session_id, None)
            if handle is not None:
                handle.close()
            return protocol.session_closed_response(request_id, session_id)

        if kind == "stats":
            stats = self.server.stats()
            shard_id = self.shard_id
            if shard_id is not None:
                stats = dataclasses.replace(stats, shard_id=shard_id)
            return protocol.stats_response(request_id, stats)

        if kind == "health":
            # straight off the event loop: no engine work, so the probe
            # answers even while the batch queue is saturated
            return protocol.health_response(
                request_id, shard_id=self.shard_id,
                sessions_open=self.server.session_count,
                queue_depth=self.server.queue_depth)

        raise protocol.ProtocolError(f"unknown request type {kind!r}")
