"""Worker-pool serving front end: warm-up, backpressure, live statistics.

:class:`Server` is the deployable face of the reproduction — the ROADMAP's
"heavy traffic" direction built on three pieces this package already has:

* a **thread-safe** :class:`~repro.api.engine.Engine` (locked solution
  cache, per-algorithm solve locks, race-coalesced cold solves),
* the micro-batching :class:`~repro.serve.coalescer.RequestCoalescer`, so N
  concurrent clients with similar content pay one solve per tick, and
* a :class:`~repro.serve.stats.StatsRecorder` exposing throughput, latency
  percentiles and cache efficiency as one consistent snapshot.

Typical use::

    from repro.serve import Server

    with Server(workers=4) as server:
        server.warmup()                       # pre-solve the corpus
        future = server.submit(image, max_distortion=10.0)
        result = future.result()
        print(server.stats().as_dict())

``repro serve`` and ``repro loadtest`` drive the same class from the
command line; ``examples/serving_demo.py`` shows a full load-generation
session.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Iterable, Mapping, Sequence

from repro.api.engine import Engine
from repro.api.registry import CompensationAlgorithm
from repro.api.types import CompensationResult
from repro.imaging.image import Image
from repro.serve.coalescer import RequestCoalescer
from repro.serve.stats import ServerStats, StatsRecorder

__all__ = ["Server"]

#: Distortion budgets pre-solved by :meth:`Server.warmup` when none are
#: given — the budgets the CLI and the experiments sweep.
DEFAULT_WARMUP_BUDGETS: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0, 30.0)

#: Sentinel distinguishing "use the server's submit timeout" from an
#: explicit ``timeout=None`` (wait indefinitely).
_USE_DEFAULT = object()


class Server:
    """A concurrent compensation server over one shared engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.engine.Engine` to serve from; a fresh
        default-configured engine when omitted.
    algorithm:
        Default algorithm of the fresh engine (ignored when ``engine`` is
        given).
    workers:
        Worker threads executing micro-batches.
    max_batch, max_delay:
        Micro-batching shape: largest coalesced batch and the batching
        window in seconds (see
        :class:`~repro.serve.coalescer.RequestCoalescer`).
    max_pending:
        Bound of the request queue; beyond it submissions feel
        backpressure.
    submit_timeout:
        Default seconds a :meth:`submit` waits for queue space before
        raising :class:`~repro.serve.coalescer.ServerOverloadedError`.
    stats_window:
        Number of recent request latencies kept for the percentile
        estimates.
    """

    def __init__(self, engine: Engine | None = None, *,
                 algorithm: str | CompensationAlgorithm = "hebs",
                 workers: int = 4, max_batch: int = 32,
                 max_delay: float = 0.002, max_pending: int = 1024,
                 submit_timeout: float = 1.0,
                 stats_window: int = 4096) -> None:
        self.engine = engine if engine is not None else Engine(algorithm)
        self.submit_timeout = float(submit_timeout)
        self._recorder = StatsRecorder(window=stats_window)
        self._coalescer = RequestCoalescer(
            self.engine, max_batch=max_batch, max_delay=max_delay,
            max_pending=max_pending, workers=workers,
            recorder=self._recorder)

    # ------------------------------------------------------------------ #
    # request paths
    # ------------------------------------------------------------------ #
    def submit(self, image: Image, max_distortion: float,
               algorithm: str | CompensationAlgorithm | None = None,
               timeout: float | None = _USE_DEFAULT) -> Future:
        """Enqueue one request; returns a future resolving to a
        :class:`~repro.api.types.CompensationResult`.

        ``timeout`` overrides the server's default submit timeout (how long
        to wait for queue space under backpressure); ``None`` waits
        indefinitely, as in :meth:`RequestCoalescer.submit`.
        """
        if timeout is _USE_DEFAULT:
            timeout = self.submit_timeout
        return self._coalescer.submit(image, max_distortion,
                                      algorithm=algorithm, timeout=timeout)

    def process(self, image: Image, max_distortion: float,
                algorithm: str | CompensationAlgorithm | None = None,
                timeout: float | None = None,
                submit_timeout: float | None = _USE_DEFAULT,
                ) -> CompensationResult:
        """Synchronous convenience: submit one request and wait for it.

        ``timeout`` bounds the wait for the *result*; the queue-space wait
        under backpressure is bounded separately by ``submit_timeout``
        (the server default when omitted, ``None`` for indefinite).
        """
        return self.submit(image, max_distortion, algorithm=algorithm,
                           timeout=submit_timeout).result(timeout=timeout)

    def process_many(self, images: Iterable[Image], max_distortion: float,
                     algorithm: str | CompensationAlgorithm | None = None,
                     timeout: float | None = None,
                     submit_timeout: float | None = _USE_DEFAULT,
                     ) -> list[CompensationResult]:
        """Submit many requests at once and gather the results in order.

        Unlike :meth:`Engine.process_batch` this goes through the serving
        queue, so the requests coalesce with any other traffic the workers
        are seeing.  ``timeout`` bounds each *result* wait; the queue-space
        wait per submission is bounded by ``submit_timeout`` (the server
        default when omitted, ``None`` for indefinite).
        """
        futures = [self.submit(image, max_distortion, algorithm=algorithm,
                               timeout=submit_timeout)
                   for image in images]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def warmup(self, images: Mapping[str, Image] | Sequence[Image] | None = None,
               budgets: Sequence[float] = DEFAULT_WARMUP_BUDGETS,
               algorithm: str | CompensationAlgorithm | None = None) -> int:
        """Pre-solve a histogram corpus into the engine's cache.

        A cold cache makes the first wave of traffic pay full solves; warm-up
        moves that cost to deployment time.  ``images`` defaults to the
        built-in benchmark suite (the stand-in for a production content
        corpus); every ``(image, budget)`` pair is solved without the
        per-image apply.  Returns the number of fresh solutions cached.
        """
        if images is None:
            # deferred import: repro.serve must stay importable without bench
            from repro.bench.suite import benchmark_images
            images = benchmark_images()
        if isinstance(images, Mapping):
            images = list(images.values())
        primed = 0
        for image in images:
            for budget in budgets:
                primed += bool(self.engine.prime(image, budget,
                                                 algorithm=algorithm))
        return primed

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Requests waiting in the coalescer right now."""
        return self._coalescer.pending_count

    @property
    def closed(self) -> bool:
        """Whether the server stopped accepting requests."""
        return self._coalescer.closed

    def stats(self) -> ServerStats:
        """A live snapshot: throughput, latency percentiles, cache rates."""
        return self._recorder.snapshot(cache=self.engine.cache_stats,
                                       queue_depth=self.queue_depth)

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and (by default) drain the queue."""
        self._coalescer.close(wait=wait)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)
