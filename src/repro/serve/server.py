"""Worker-pool serving front end: warm-up, backpressure, stream sessions.

:class:`Server` is the deployable face of the reproduction — the ROADMAP's
"heavy traffic" direction built on pieces this package already has:

* a **thread-safe** :class:`~repro.api.engine.Engine` (locked solution
  cache, per-algorithm solve locks, race-coalesced cold solves),
* the micro-batching :class:`~repro.serve.coalescer.RequestCoalescer`, so N
  concurrent clients with similar content pay one solve per tick,
* push-based :class:`~repro.api.session.StreamSession` streams, multiplexed
  over the same micro-batches by the :class:`SessionManager` (open / feed /
  close, idle-TTL eviction, session cap), and
* a :class:`~repro.serve.stats.StatsRecorder` exposing throughput, latency
  percentiles, cache efficiency and per-session frame stats as one
  consistent snapshot.

Typical use::

    from repro.serve import Server

    with Server(workers=4) as server:
        server.warmup()                       # pre-solve the corpus
        future = server.submit(image, max_distortion=10.0)
        result = future.result()

        session = server.open_session(max_distortion=10.0)
        outcome = session.submit(frame).result()    # a StreamFrameResult
        session.close()
        print(server.stats().as_dict())

``repro serve`` and ``repro loadtest`` drive the same class from the
command line; ``examples/serving_demo.py`` and
``examples/stream_sessions.py`` show full sessions.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Iterable, Mapping, Sequence

from repro.api.engine import Engine
from repro.api.registry import CompensationAlgorithm
from repro.api.session import SessionClosedError, StreamSession
from repro.api.types import CompensationResult
from repro.imaging.image import Image
from repro.serve.coalescer import (
    RequestCoalescer,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.stats import ServerStats, StatsRecorder

__all__ = ["Server", "ServerSession", "SessionManager"]

#: Distortion budgets pre-solved by :meth:`Server.warmup` when none are
#: given — the budgets the CLI and the experiments sweep.
DEFAULT_WARMUP_BUDGETS: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0, 30.0)

#: Sentinel distinguishing "use the server's submit timeout" from an
#: explicit ``timeout=None`` (wait indefinitely).
_USE_DEFAULT = object()


class ServerSession:
    """One client's long-lived video stream through a :class:`Server`.

    Returned by :meth:`Server.open_session`.  The handle wraps an engine
    :class:`~repro.api.session.StreamSession` (which owns the smoother /
    scene detector / fast-path state) and adds the serving concerns: frames
    are fed with :meth:`submit` and return futures resolving to
    :class:`~repro.api.types.StreamFrameResult`, the
    :class:`SessionManager` keeps **at most one frame of the session in
    flight** in the coalescer (later frames wait in the session's own
    bounded queue, preserving display order), and an idle session is
    eventually evicted by the TTL sweep.

    Clients may submit several frames ahead without awaiting each result —
    the futures resolve strictly in submission order, each frame's temporal
    step seeing the state its predecessor left behind.
    """

    def __init__(self, manager: "SessionManager", session_id: str,
                 stream: StreamSession, max_queue: int) -> None:
        self._manager = manager
        self._id = session_id
        self._stream = stream
        self._max_queue = int(max_queue)
        # (frame, future, admission perf_counter timestamp): the timestamp
        # rides along so latency telemetry includes the queue wait
        self._queue: deque[tuple[Image, Future, float]] = deque()
        self._in_flight = False
        self._session_closed = False
        self.last_activity = manager._clock()

    # -------------------------------------------------------------- #
    # client surface
    # -------------------------------------------------------------- #
    @property
    def id(self) -> str:
        """Server-unique session identifier (the stats key)."""
        return self._id

    @property
    def closed(self) -> bool:
        """Whether the session stopped accepting frames."""
        return self._session_closed

    @property
    def frames(self) -> int:
        """Frames fully processed through this session so far."""
        return self._stream.frames

    def stats(self):
        """The underlying stream session's lifetime counters
        (:class:`~repro.api.session.StreamSessionStats`)."""
        return self._stream.stats()

    def submit(self, frame: Image,
               timeout: float | None = _USE_DEFAULT) -> Future:
        """Feed one frame; returns a future resolving to its
        :class:`~repro.api.types.StreamFrameResult`.

        ``timeout`` bounds the backpressure wait when this frame enters the
        coalescer directly (the server default when omitted); frames queued
        behind an in-flight predecessor are admitted immediately and enter
        the coalescer as their predecessors complete.  Raises
        :class:`~repro.api.session.SessionClosedError` after :meth:`close`
        and :class:`~repro.serve.coalescer.ServerOverloadedError` when the
        session's own frame queue is full.
        """
        return self._manager.feed(self, frame, timeout=timeout)

    def close(self) -> None:
        """Close the session (idempotent): frames still waiting in the
        session queue fail with
        :class:`~repro.api.session.SessionClosedError`; an in-flight frame
        still resolves."""
        self._manager.close(self)

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # coalescer-facing surface (the split-phase protocol)
    # -------------------------------------------------------------- #
    @property
    def algorithm(self) -> CompensationAlgorithm:
        """The resolved algorithm instance (the batch grouping key)."""
        return self._stream.algorithm

    @property
    def max_distortion(self) -> float:
        return self._stream.max_distortion

    def begin(self, frame: Image):
        return self._stream.begin(frame)

    def compute(self, plan):
        return self._stream.compute(plan)

    def complete(self, plan, raw):
        return self._stream.complete(plan, raw)

    def frame_done(self) -> None:
        """Called by the coalescer after a frame's future settled: pump the
        session's next queued frame (or clear the in-flight mark)."""
        self._manager._frame_done(self)


class SessionManager:
    """Open / feed / close stream sessions over one coalescer.

    The multiplexing policy of :class:`Server`'s session surface:

    * **capacity** — at most ``max_sessions`` sessions are open at once;
      :meth:`open` past the cap (after reaping idle sessions) raises
      :class:`~repro.serve.coalescer.ServerOverloadedError`.
    * **idle TTL** — sessions inactive for ``session_ttl`` seconds are
      evicted by a lazy sweep (run on every :meth:`open`, or explicitly via
      :meth:`sweep`); ``session_ttl=None`` disables eviction.
    * **ordering** — at most one frame per session is in the coalescer at
      any moment; later frames wait in the session's bounded queue
      (``max_queue``) and are pumped by the worker that completed their
      predecessor, so futures resolve in display order and the temporal
      state never races.
    """

    def __init__(self, engine: Engine, coalescer: RequestCoalescer, *,
                 max_sessions: int = 64, session_ttl: float | None = 300.0,
                 max_queue: int = 32, submit_timeout: float | None = 1.0,
                 recorder: StatsRecorder | None = None,
                 clock=time.monotonic) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if session_ttl is not None and session_ttl <= 0:
            raise ValueError("session_ttl must be positive (or None)")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self._engine = engine
        self._coalescer = coalescer
        self.max_sessions = int(max_sessions)
        self.session_ttl = None if session_ttl is None else float(session_ttl)
        self.max_queue = int(max_queue)
        self.submit_timeout = submit_timeout
        self._recorder = recorder
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[str, ServerSession] = {}
        self._ids = itertools.count()
        self._closed = False

    @property
    def open_count(self) -> int:
        """Sessions currently open."""
        with self._lock:
            return len(self._sessions)

    def open(self, max_distortion: float,
             algorithm: str | CompensationAlgorithm | None = None,
             **session_options) -> ServerSession:
        """Open a stream session; ``session_options`` are forwarded to
        :meth:`Engine.open_session <repro.api.engine.Engine.open_session>`
        (``smoother=``, ``snap_on_scene_change=``, ``scene_gated_solve=``,
        ...)."""
        # resolve outside the lock: a first-touch algorithm instantiation
        # (pipeline characterization) must not serialize the whole manager
        stream = self._engine.open_session(max_distortion,
                                           algorithm=algorithm,
                                           **session_options)
        with self._lock:
            if self._closed:
                raise ServerClosedError("the serving loop has been closed")
            self._sweep_locked()
            if len(self._sessions) >= self.max_sessions:
                # suggest waiting a slice of the idle TTL: capacity frees up
                # when a session closes or the sweep reaps an idle one
                ttl = self.session_ttl
                raise ServerOverloadedError(
                    f"session cap reached ({self.max_sessions} open); close "
                    f"or let idle sessions expire before opening more",
                    queue_depth=len(self._sessions),
                    retry_after_seconds=(1.0 if ttl is None
                                         else min(ttl / 4.0, 5.0)))
            session_id = f"s{next(self._ids):05d}"
            handle = ServerSession(self, session_id, stream, self.max_queue)
            self._sessions[session_id] = handle
            if self._recorder is not None:
                self._recorder.note_session_opened()
        return handle

    def feed(self, handle: ServerSession, frame: Image,
             timeout: float | None = _USE_DEFAULT) -> Future:
        """Admit one frame of ``handle`` (see :meth:`ServerSession.submit`)."""
        if timeout is _USE_DEFAULT:
            timeout = self.submit_timeout
        with self._lock:
            if handle._session_closed:
                raise SessionClosedError(
                    f"session {handle.id} has been closed")
            handle.last_activity = self._clock()
            if handle._in_flight or handle._queue:
                # a predecessor is in the coalescer: preserve display order
                # by waiting in the session's own (bounded) queue
                if len(handle._queue) >= handle._max_queue:
                    if self._recorder is not None:
                        self._recorder.note_rejected()
                    raise ServerOverloadedError(
                        f"session {handle.id} already has "
                        f"{handle._max_queue} frames queued",
                        queue_depth=len(handle._queue),
                        retry_after_seconds=self._coalescer.retry_after_hint())
                future: Future = Future()
                handle._queue.append((frame, future, time.perf_counter()))
                return future
            handle._in_flight = True
        try:
            # outside the lock: the coalescer's bounded queue may block for
            # backpressure, and a stalled admission must not freeze every
            # other session
            return self._coalescer.submit_frame(handle, frame,
                                                timeout=timeout)
        except BaseException:
            self._frame_done(handle)
            raise

    def close(self, handle: ServerSession) -> None:
        """Close one session (idempotent); queued frames fail with
        :class:`~repro.api.session.SessionClosedError`."""
        with self._lock:
            if handle._session_closed:
                return
            handle._session_closed = True
            abandoned = list(handle._queue)
            handle._queue.clear()
            self._sessions.pop(handle.id, None)
            in_flight = handle._in_flight
            if self._recorder is not None:
                self._recorder.note_session_closed()
        self._abandon(handle, abandoned)
        # an in-flight frame may not have begun yet: closing the stream now
        # would fail it spuriously, so the worker that settles it closes
        # the stream instead (see _frame_done)
        if not in_flight:
            handle._stream.close()

    def sweep(self) -> int:
        """Evict idle sessions now; returns how many were reaped."""
        with self._lock:
            return self._sweep_locked()

    def close_all(self) -> None:
        """Shutdown: close every session and refuse new ones."""
        with self._lock:
            self._closed = True
            handles = list(self._sessions.values())
        for handle in handles:
            self.close(handle)

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _frame_done(self, handle: ServerSession) -> None:
        """Pump the session's next queued frame into the coalescer.

        Runs on the worker that settled the previous frame's future (or on
        a feeder whose direct admission failed).  ``force=True`` bypasses
        the backpressure wait — a worker blocking on the queue it is
        supposed to drain would deadlock — and is bounded by the
        one-in-flight-per-session invariant.
        """
        while True:
            with self._lock:
                handle.last_activity = self._clock()
                if not handle._queue:
                    handle._in_flight = False
                    close_stream = handle._session_closed
                    break
                frame, future, accepted_at = handle._queue.popleft()
            try:
                self._coalescer.submit_frame(handle, frame, force=True,
                                             future=future,
                                             enqueued_at=accepted_at)
                return
            except BaseException as exc:   # noqa: BLE001 - forwarded
                # e.g. the coalescer closed under us: fail this frame and
                # keep draining the rest of the session queue
                if future.set_running_or_notify_cancel():
                    future.set_exception(exc)
        if close_stream:
            # the session was closed while this frame was in flight; the
            # stream close was deferred to us (the settling worker)
            handle._stream.close()

    def _abandon(self, handle: ServerSession,
                 queued: Sequence[tuple[Image, Future, float]]) -> None:
        """Fail frames that were still waiting in a closed session."""
        for _, future, _ in queued:
            if future.set_running_or_notify_cancel():
                future.set_exception(SessionClosedError(
                    f"session {handle.id} was closed before this frame ran"))

    def _sweep_locked(self) -> int:
        """Reap idle sessions (caller holds the lock)."""
        if self.session_ttl is None:
            return 0
        now = self._clock()
        reaped = 0
        for session_id, handle in list(self._sessions.items()):
            if handle._in_flight or handle._queue:
                continue
            if now - handle.last_activity > self.session_ttl:
                handle._session_closed = True
                del self._sessions[session_id]
                handle._stream.close()
                if self._recorder is not None:
                    self._recorder.note_session_closed(evicted=True)
                reaped += 1
        return reaped


class Server:
    """A concurrent compensation server over one shared engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.engine.Engine` to serve from; a fresh
        default-configured engine when omitted.
    algorithm:
        Default algorithm of the fresh engine (ignored when ``engine`` is
        given).
    workers:
        Worker threads executing micro-batches.
    max_batch, max_delay:
        Micro-batching shape: largest coalesced batch and the batching
        window in seconds (see
        :class:`~repro.serve.coalescer.RequestCoalescer`).
    max_pending:
        Bound of the request queue; beyond it submissions feel
        backpressure.
    submit_timeout:
        Default seconds a :meth:`submit` waits for queue space before
        raising :class:`~repro.serve.coalescer.ServerOverloadedError`.
    stats_window:
        Number of recent request latencies kept for the percentile
        estimates.
    max_sessions:
        Cap on concurrently open stream sessions; :meth:`open_session` past
        it (after reaping idle sessions) raises
        :class:`~repro.serve.coalescer.ServerOverloadedError`.
    session_ttl:
        Seconds of inactivity after which an idle stream session is
        evicted (``None`` disables eviction).
    session_queue:
        Per-session bound on frames queued behind the one in flight.
    """

    def __init__(self, engine: Engine | None = None, *,
                 algorithm: str | CompensationAlgorithm = "hebs",
                 workers: int = 4, max_batch: int = 32,
                 max_delay: float = 0.002, max_pending: int = 1024,
                 submit_timeout: float = 1.0,
                 stats_window: int = 4096,
                 max_sessions: int = 64,
                 session_ttl: float | None = 300.0,
                 session_queue: int = 32) -> None:
        self.engine = engine if engine is not None else Engine(algorithm)
        self.submit_timeout = float(submit_timeout)
        self._recorder = StatsRecorder(window=stats_window)
        self._coalescer = RequestCoalescer(
            self.engine, max_batch=max_batch, max_delay=max_delay,
            max_pending=max_pending, workers=workers,
            recorder=self._recorder)
        self._sessions = SessionManager(
            self.engine, self._coalescer, max_sessions=max_sessions,
            session_ttl=session_ttl, max_queue=session_queue,
            submit_timeout=self.submit_timeout, recorder=self._recorder)

    # ------------------------------------------------------------------ #
    # request paths
    # ------------------------------------------------------------------ #
    def submit(self, image: Image, max_distortion: float,
               algorithm: str | CompensationAlgorithm | None = None,
               timeout: float | None = _USE_DEFAULT) -> Future:
        """Enqueue one request; returns a future resolving to a
        :class:`~repro.api.types.CompensationResult`.

        ``timeout`` overrides the server's default submit timeout (how long
        to wait for queue space under backpressure); ``None`` waits
        indefinitely, as in :meth:`RequestCoalescer.submit`.
        """
        if timeout is _USE_DEFAULT:
            timeout = self.submit_timeout
        return self._coalescer.submit(image, max_distortion,
                                      algorithm=algorithm, timeout=timeout)

    def process(self, image: Image, max_distortion: float,
                algorithm: str | CompensationAlgorithm | None = None,
                timeout: float | None = None,
                submit_timeout: float | None = _USE_DEFAULT,
                ) -> CompensationResult:
        """Synchronous convenience: submit one request and wait for it.

        ``timeout`` bounds the wait for the *result*; the queue-space wait
        under backpressure is bounded separately by ``submit_timeout``
        (the server default when omitted, ``None`` for indefinite).
        """
        return self.submit(image, max_distortion, algorithm=algorithm,
                           timeout=submit_timeout).result(timeout=timeout)

    def process_many(self, images: Iterable[Image], max_distortion: float,
                     algorithm: str | CompensationAlgorithm | None = None,
                     timeout: float | None = None,
                     submit_timeout: float | None = _USE_DEFAULT,
                     ) -> list[CompensationResult]:
        """Submit many requests at once and gather the results in order.

        Unlike :meth:`Engine.process_batch` this goes through the serving
        queue, so the requests coalesce with any other traffic the workers
        are seeing.  ``timeout`` bounds each *result* wait; the queue-space
        wait per submission is bounded by ``submit_timeout`` (the server
        default when omitted, ``None`` for indefinite).
        """
        futures = [self.submit(image, max_distortion, algorithm=algorithm,
                               timeout=submit_timeout)
                   for image in images]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # stream sessions
    # ------------------------------------------------------------------ #
    def open_session(self, max_distortion: float,
                     algorithm: str | CompensationAlgorithm | None = None,
                     **session_options) -> ServerSession:
        """Open a push-based stream session served through the coalescer.

        Frames fed to the returned :class:`ServerSession` interleave with
        one-shot traffic (and with other sessions' frames) in shared
        micro-batches, while the session's temporal state — smoother, scene
        detector, fast path — stays private and its frames resolve in
        display order.  ``session_options`` are forwarded to
        :meth:`Engine.open_session <repro.api.engine.Engine.open_session>`
        (``smoother=``, ``snap_on_scene_change=``, ``scene_gated_solve=``,
        ...).  Raises
        :class:`~repro.serve.coalescer.ServerOverloadedError` at the
        session cap.
        """
        return self._sessions.open(max_distortion, algorithm=algorithm,
                                   **session_options)

    def close_session(self, session: ServerSession) -> None:
        """Close one stream session (equivalent to ``session.close()``)."""
        self._sessions.close(session)

    def sweep_sessions(self) -> int:
        """Evict idle stream sessions now; returns how many were reaped."""
        return self._sessions.sweep()

    @property
    def session_count(self) -> int:
        """Stream sessions currently open."""
        return self._sessions.open_count

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def warmup(self, images: Mapping[str, Image] | Sequence[Image] | None = None,
               budgets: Sequence[float] = DEFAULT_WARMUP_BUDGETS,
               algorithm: str | CompensationAlgorithm | None = None) -> int:
        """Pre-solve a histogram corpus into the engine's cache.

        A cold cache makes the first wave of traffic pay full solves; warm-up
        moves that cost to deployment time.  ``images`` defaults to the
        built-in benchmark suite (the stand-in for a production content
        corpus); every ``(image, budget)`` pair is solved without the
        per-image apply.  Returns the number of fresh solutions cached.
        """
        if images is None:
            # deferred import: repro.serve must stay importable without bench
            from repro.bench.suite import benchmark_images
            images = benchmark_images()
        if isinstance(images, Mapping):
            images = list(images.values())
        primed = 0
        for image in images:
            for budget in budgets:
                primed += bool(self.engine.prime(image, budget,
                                                 algorithm=algorithm))
        return primed

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Requests waiting in the coalescer right now."""
        return self._coalescer.pending_count

    @property
    def closed(self) -> bool:
        """Whether the server stopped accepting requests."""
        return self._coalescer.closed

    def stats(self) -> ServerStats:
        """A live snapshot: throughput, latency percentiles, cache rates,
        session counters and per-session frame latencies."""
        return self._recorder.snapshot(cache=self.engine.cache_stats,
                                       queue_depth=self.queue_depth,
                                       sessions_open=self.session_count)

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and (by default) drain the queue.

        Open stream sessions are closed first (their queued frames fail
        with :class:`~repro.api.session.SessionClosedError`); in-flight
        work drains as usual when ``wait`` is set.
        """
        self._sessions.close_all()
        self._coalescer.close(wait=wait)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)
