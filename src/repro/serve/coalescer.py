"""Micro-batching request coalescer: N concurrent submits, one solve.

The paper's real-time flow (Fig. 4) solves once per *histogram* and replays
cheap per-pixel LUTs — so when N clients concurrently request compensation
for similar content, the right unit of work is one
:meth:`~repro.api.engine.Engine.process_batch` per tick, not N independent
:meth:`~repro.api.engine.Engine.process` calls.  :class:`RequestCoalescer`
implements that gather:

* :meth:`RequestCoalescer.submit` enqueues a request and returns a
  :class:`concurrent.futures.Future` immediately.
* Worker threads claim micro-batches: the first pending request opens a
  batching window of ``max_delay`` seconds (or until ``max_batch`` requests
  accumulate), so bursts coalesce while a lone request is barely delayed.
* Each claimed batch is grouped by ``(algorithm, budget)`` and executed as
  one engine batch; the engine then groups by histogram signature, so
  duplicate content in the burst pays a single solve.
* The pending queue is bounded (``max_pending``): when it is full,
  ``submit`` blocks up to its timeout and then raises
  :class:`ServerOverloadedError` — backpressure instead of unbounded memory.

Beyond one-shot requests the coalescer also carries **stream-session
frames** (:meth:`RequestCoalescer.submit_frame`): a frame belonging to a
long-lived :class:`~repro.api.session.StreamSession` served by the
:class:`~repro.serve.server.SessionManager`.  Session frames from *many*
sessions interleave into the same micro-batches as one-shot traffic — the
frame's raw per-frame policy result comes out of the shared
``process_batch`` tick, and the session's temporal step
(:meth:`~repro.api.session.StreamSession.complete`) runs in the worker
afterwards.  Per-session frame order is preserved because the session
manager keeps at most one frame of a session in flight; the flicker bound
is enforced inside the session's own smoother, never here.

The coalescer is intentionally engine-agnostic: anything with a
``process_batch(images, max_distortion, algorithm=...)`` method works, which
is what the unit tests exploit.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

from repro.api.registry import CompensationAlgorithm
from repro.imaging.image import Image
from repro.serve.stats import StatsRecorder

__all__ = [
    "RequestCoalescer",
    "ServerClosedError",
    "ServerOverloadedError",
]


class ServerOverloadedError(RuntimeError):
    """A bounded queue (requests, session frames or the session table)
    stayed full past the submit timeout.

    Beyond the message the error carries structured backpressure hints, so
    in-process callers and the wire protocol
    (:func:`repro.serve.protocol.error_response`) can tell clients *how*
    overloaded the server is and when a retry is worth attempting:

    Attributes
    ----------
    queue_depth:
        Occupancy of the queue that refused the submission (the pending
        request queue, a session's frame queue, or the open-session table),
        when known.
    retry_after_seconds:
        Suggested client back-off before retrying, when the raising
        component can estimate one (e.g. a couple of batching windows for
        the request queue).  ``None`` means "no estimate"; the protocol
        layer substitutes its default hint.
    """

    def __init__(self, message: str, *, queue_depth: int | None = None,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after_seconds = retry_after_seconds


class ServerClosedError(RuntimeError):
    """The coalescer/server was closed and accepts no new requests."""


@dataclass
class _PendingRequest:
    """One queued request: payload plus its future and enqueue timestamp.

    ``session`` is ``None`` for a one-shot request; for a stream-session
    frame it is the serve-side session handle (begin/compute/complete
    surface plus ``frame_done``), and ``plan`` is filled by the executing
    worker once :meth:`~repro.api.session.StreamSession.begin` ran.
    """

    image: Image
    max_distortion: float
    algorithm: str | CompensationAlgorithm | None
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    session: object | None = None
    plan: object | None = None

    def group_key(self):
        """Requests sharing this key can ride in one engine batch.

        Algorithm *instances* group by identity, not by name: two clients
        may carry differently configured instances under one registry name,
        and batching them together would run one client's images through
        the other client's configuration.
        """
        algorithm = self.algorithm
        if isinstance(algorithm, CompensationAlgorithm):
            return (("instance", id(algorithm)), self.max_distortion)
        return (algorithm, self.max_distortion)


class RequestCoalescer:
    """Gathers concurrent ``submit()`` calls into shared engine batches.

    Parameters
    ----------
    engine:
        The (thread-safe) :class:`~repro.api.engine.Engine` executing the
        batches, or any object with a compatible ``process_batch``.
    max_batch:
        Largest number of requests claimed into one micro-batch.
    max_delay:
        Batching window in seconds: how long a claimed batch waits for
        companions after its first request arrived.  This bounds the extra
        latency coalescing can add to a lone request.
    max_pending:
        Bound of the pending queue; submissions past it block and then fail
        with :class:`ServerOverloadedError` (backpressure).
    workers:
        Number of batch-executing worker threads.
    recorder:
        Optional :class:`~repro.serve.stats.StatsRecorder` receiving
        submit/complete/batch/reject events.
    """

    def __init__(self, engine, *, max_batch: int = 32,
                 max_delay: float = 0.002, max_pending: int = 1024,
                 workers: int = 1,
                 recorder: StatsRecorder | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.max_pending = int(max_pending)
        self._recorder = recorder
        self._cond = threading.Condition()
        self._pending: list[_PendingRequest] = []
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-serve-worker-{index}")
            for index in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Requests currently waiting to be claimed by a worker."""
        with self._cond:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether the coalescer stopped accepting requests."""
        with self._cond:
            return self._closed

    def retry_after_hint(self) -> float:
        """Suggested client back-off when the pending queue refuses a
        request: a couple of batching windows (one for the batch currently
        forming, one for the wave that will claim the freed slots), floored
        so sub-millisecond windows don't suggest a busy-wait."""
        return max(2.0 * self.max_delay, 0.05)

    def submit(self, image: Image, max_distortion: float,
               algorithm: str | CompensationAlgorithm | None = None,
               timeout: float | None = 1.0) -> Future:
        """Enqueue one request; returns its future immediately.

        Blocks up to ``timeout`` seconds when the pending queue is full,
        then raises :class:`ServerOverloadedError`.  ``timeout=None`` waits
        indefinitely; ``timeout=0`` fails immediately on a full queue.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        request = _PendingRequest(image=image, max_distortion=max_distortion,
                                  algorithm=algorithm)
        return self._enqueue(request, timeout=timeout, force=False)

    def submit_frame(self, session, frame: Image,
                     timeout: float | None = 1.0, force: bool = False,
                     future: Future | None = None,
                     enqueued_at: float | None = None) -> Future:
        """Enqueue one stream-session frame; returns its future immediately.

        ``session`` is the serve-side handle of a
        :class:`~repro.serve.server.SessionManager` session: it names the
        frame's algorithm instance and budget (so the frame groups with
        compatible one-shot traffic) and carries the split-phase surface the
        worker drives.  ``force=True`` bypasses the backpressure wait — used
        by the session manager when a worker pumps a session's next queued
        frame, where blocking the worker on its own queue would deadlock;
        the bypass is bounded by the one-in-flight-per-session invariant.
        ``future`` lets the pump re-use the future it already handed out,
        and ``enqueued_at`` (a ``time.perf_counter`` value) preserves the
        frame's original admission time so the recorded latency covers the
        session-queue wait, not just the coalescer leg.
        """
        request = _PendingRequest(
            image=frame, max_distortion=session.max_distortion,
            algorithm=session.algorithm, session=session)
        if future is not None:
            request.future = future
        if enqueued_at is not None:
            request.enqueued_at = float(enqueued_at)
        return self._enqueue(request, timeout=timeout, force=force)

    def _enqueue(self, request: _PendingRequest, timeout: float | None,
                 force: bool) -> Future:
        """Shared admission path: backpressure, shutdown fence, bookkeeping."""
        deadline = (None if timeout is None
                    else time.monotonic() + max(timeout, 0.0))
        with self._cond:
            while (not force and len(self._pending) >= self.max_pending
                   and not self._closed):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    if self._recorder is not None:
                        self._recorder.note_rejected()
                    raise ServerOverloadedError(
                        f"request queue full ({self.max_pending} pending) "
                        f"for longer than the {timeout:g}s submit timeout",
                        queue_depth=len(self._pending),
                        retry_after_seconds=self.retry_after_hint())
                self._cond.wait(remaining)
            if self._closed:
                # count refusals at shutdown like backpressure rejections,
                # so the stats account for every request a client saw fail
                if self._recorder is not None:
                    self._recorder.note_rejected()
                raise ServerClosedError("the serving loop has been closed")
            if not request.enqueued_at:
                request.enqueued_at = time.perf_counter()
            self._pending.append(request)
            # record before a worker can possibly complete the request, so
            # a stats snapshot never sees completed > submitted
            if self._recorder is not None:
                self._recorder.note_submitted()
            self._cond.notify_all()
        return request.future

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _claim(self) -> list[_PendingRequest] | None:
        """Claim the next micro-batch; ``None`` when closed and drained."""
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            # the batching window: wait for companions until the batch is
            # full or max_delay elapsed since the oldest pending request.
            # The head is re-read every pass: a sibling worker may claim it
            # while we wait, and a fresher head deserves a fresh window.
            while (self._pending and len(self._pending) < self.max_batch
                   and not self._closed):
                remaining = self.max_delay - (
                    time.perf_counter() - self._pending[0].enqueued_at)
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._pending[:self.max_batch]
            del self._pending[:len(batch)]
            self._cond.notify_all()     # wake backpressure waiters
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._claim()
            if batch is None:
                return
            if batch:   # a sibling worker may have drained the window
                self._execute(batch)

    def _execute(self, batch: Sequence[_PendingRequest]) -> None:
        """Run one claimed micro-batch: plan, group, batch-process, resolve.

        One-shot requests resolve to the raw engine result.  Session frames
        first :meth:`~repro.api.session.StreamSession.begin` (advancing the
        session's scene/rolling state, deciding whether the frame needs a
        solve), then take their raw result from the shared engine batch
        (batchable frames) or from the session itself (fast-path frames),
        and finally :meth:`~repro.api.session.StreamSession.complete` the
        temporal step before the future resolves.
        """
        ready: list[_PendingRequest] = []
        for request in batch:
            # transition each future to RUNNING; a client may have
            # cancelled a pending request (e.g. after a wait timeout), and
            # resolving a cancelled future would crash the worker
            if not request.future.set_running_or_notify_cancel():
                if self._recorder is not None:
                    self._recorder.note_failed(1)
                self._after_request(request)
                continue
            if request.session is not None:
                try:
                    request.plan = request.session.begin(request.image)
                except BaseException as exc:   # noqa: BLE001 - forwarded
                    self._fail_request(request, exc)
                    continue
            ready.append(request)

        groups: dict[tuple, list[_PendingRequest]] = {}
        singles: list[_PendingRequest] = []
        for request in ready:
            if request.plan is not None and not request.plan.batchable:
                singles.append(request)
            else:
                groups.setdefault(request.group_key(), []).append(request)

        # the fast-path frames first: a steady-scene replay is one cheap LUT
        # application and must not wait behind the tick's full solves
        for request in singles:
            try:
                raw = request.session.compute(request.plan)
            except BaseException as exc:   # noqa: BLE001 - forwarded
                self._fail_request(request, exc)
                continue
            self._resolve(request, raw, time.perf_counter())

        for members in groups.values():
            head = members[0]
            try:
                results = self.engine.process_batch(
                    [member.plan.grayscale if member.plan is not None
                     else member.image for member in members],
                    head.max_distortion, algorithm=head.algorithm)
            except BaseException as exc:   # noqa: BLE001 - forwarded, not hidden
                for member in members:
                    self._fail_request(member, exc)
                continue
            if len(results) != len(members):
                # a zip over mismatched lengths would silently strand the
                # tail futures in RUNNING forever; fail every member fast
                error = RuntimeError(
                    f"engine returned {len(results)} results for a batch "
                    f"of {len(members)} images")
                for member in members:
                    self._fail_request(member, error)
                continue
            if self._recorder is not None:
                self._recorder.note_batch(len(members))
            completed_at = time.perf_counter()
            for member, result in zip(members, results):
                self._resolve(member, result, completed_at)

    def _resolve(self, request: _PendingRequest, raw,
                 completed_at: float) -> None:
        """Finish one RUNNING request with its raw engine result."""
        if request.session is not None:
            try:
                raw = request.session.complete(request.plan, raw)
            except BaseException as exc:   # noqa: BLE001 - forwarded
                self._fail_request(request, exc)
                return
        latency = completed_at - request.enqueued_at
        # record completion before resolving the future: a client woken by
        # ``result()`` must never observe a stats snapshot that has not yet
        # counted its own request
        if self._recorder is not None:
            self._recorder.note_completed(latency)
            if request.session is not None:
                self._recorder.note_session_frame(request.session.id, latency)
        request.future.set_result(raw)
        self._after_request(request)

    def _fail_request(self, request: _PendingRequest,
                      error: BaseException) -> None:
        """Answer one RUNNING request with an exception."""
        request.future.set_exception(error)
        if self._recorder is not None:
            self._recorder.note_failed(1)
        self._after_request(request)

    def _after_request(self, request: _PendingRequest) -> None:
        """Post-resolution hook: let a session pump its next queued frame.

        Runs after the future settled (either way), so a session's next
        frame can never begin before the previous frame's outcome is
        visible to its client.
        """
        if request.session is not None:
            request.session.frame_done()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; workers drain the queue, then exit.

        ``wait=True`` (the default) joins the workers, so every future
        submitted before the close is resolved when this returns.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)
