"""Micro-batching request coalescer: N concurrent submits, one solve.

The paper's real-time flow (Fig. 4) solves once per *histogram* and replays
cheap per-pixel LUTs — so when N clients concurrently request compensation
for similar content, the right unit of work is one
:meth:`~repro.api.engine.Engine.process_batch` per tick, not N independent
:meth:`~repro.api.engine.Engine.process` calls.  :class:`RequestCoalescer`
implements that gather:

* :meth:`RequestCoalescer.submit` enqueues a request and returns a
  :class:`concurrent.futures.Future` immediately.
* Worker threads claim micro-batches: the first pending request opens a
  batching window of ``max_delay`` seconds (or until ``max_batch`` requests
  accumulate), so bursts coalesce while a lone request is barely delayed.
* Each claimed batch is grouped by ``(algorithm, budget)`` and executed as
  one engine batch; the engine then groups by histogram signature, so
  duplicate content in the burst pays a single solve.
* The pending queue is bounded (``max_pending``): when it is full,
  ``submit`` blocks up to its timeout and then raises
  :class:`ServerOverloadedError` — backpressure instead of unbounded memory.

The coalescer is intentionally engine-agnostic: anything with a
``process_batch(images, max_distortion, algorithm=...)`` method works, which
is what the unit tests exploit.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

from repro.api.registry import CompensationAlgorithm
from repro.imaging.image import Image
from repro.serve.stats import StatsRecorder

__all__ = [
    "RequestCoalescer",
    "ServerClosedError",
    "ServerOverloadedError",
]


class ServerOverloadedError(RuntimeError):
    """The bounded request queue stayed full past the submit timeout."""


class ServerClosedError(RuntimeError):
    """The coalescer/server was closed and accepts no new requests."""


@dataclass
class _PendingRequest:
    """One queued request: payload plus its future and enqueue timestamp."""

    image: Image
    max_distortion: float
    algorithm: str | CompensationAlgorithm | None
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0

    def group_key(self):
        """Requests sharing this key can ride in one engine batch.

        Algorithm *instances* group by identity, not by name: two clients
        may carry differently configured instances under one registry name,
        and batching them together would run one client's images through
        the other client's configuration.
        """
        algorithm = self.algorithm
        if isinstance(algorithm, CompensationAlgorithm):
            return (("instance", id(algorithm)), self.max_distortion)
        return (algorithm, self.max_distortion)


class RequestCoalescer:
    """Gathers concurrent ``submit()`` calls into shared engine batches.

    Parameters
    ----------
    engine:
        The (thread-safe) :class:`~repro.api.engine.Engine` executing the
        batches, or any object with a compatible ``process_batch``.
    max_batch:
        Largest number of requests claimed into one micro-batch.
    max_delay:
        Batching window in seconds: how long a claimed batch waits for
        companions after its first request arrived.  This bounds the extra
        latency coalescing can add to a lone request.
    max_pending:
        Bound of the pending queue; submissions past it block and then fail
        with :class:`ServerOverloadedError` (backpressure).
    workers:
        Number of batch-executing worker threads.
    recorder:
        Optional :class:`~repro.serve.stats.StatsRecorder` receiving
        submit/complete/batch/reject events.
    """

    def __init__(self, engine, *, max_batch: int = 32,
                 max_delay: float = 0.002, max_pending: int = 1024,
                 workers: int = 1,
                 recorder: StatsRecorder | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.max_pending = int(max_pending)
        self._recorder = recorder
        self._cond = threading.Condition()
        self._pending: list[_PendingRequest] = []
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-serve-worker-{index}")
            for index in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Requests currently waiting to be claimed by a worker."""
        with self._cond:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether the coalescer stopped accepting requests."""
        with self._cond:
            return self._closed

    def submit(self, image: Image, max_distortion: float,
               algorithm: str | CompensationAlgorithm | None = None,
               timeout: float | None = 1.0) -> Future:
        """Enqueue one request; returns its future immediately.

        Blocks up to ``timeout`` seconds when the pending queue is full,
        then raises :class:`ServerOverloadedError`.  ``timeout=None`` waits
        indefinitely; ``timeout=0`` fails immediately on a full queue.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        request = _PendingRequest(image=image, max_distortion=max_distortion,
                                  algorithm=algorithm)
        deadline = (None if timeout is None
                    else time.monotonic() + max(timeout, 0.0))
        with self._cond:
            while len(self._pending) >= self.max_pending and not self._closed:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    if self._recorder is not None:
                        self._recorder.note_rejected()
                    raise ServerOverloadedError(
                        f"request queue full ({self.max_pending} pending) "
                        f"for longer than the {timeout:g}s submit timeout")
                self._cond.wait(remaining)
            if self._closed:
                # count refusals at shutdown like backpressure rejections,
                # so the stats account for every request a client saw fail
                if self._recorder is not None:
                    self._recorder.note_rejected()
                raise ServerClosedError("the serving loop has been closed")
            request.enqueued_at = time.perf_counter()
            self._pending.append(request)
            # record before a worker can possibly complete the request, so
            # a stats snapshot never sees completed > submitted
            if self._recorder is not None:
                self._recorder.note_submitted()
            self._cond.notify_all()
        return request.future

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _claim(self) -> list[_PendingRequest] | None:
        """Claim the next micro-batch; ``None`` when closed and drained."""
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            # the batching window: wait for companions until the batch is
            # full or max_delay elapsed since the oldest pending request.
            # The head is re-read every pass: a sibling worker may claim it
            # while we wait, and a fresher head deserves a fresh window.
            while (self._pending and len(self._pending) < self.max_batch
                   and not self._closed):
                remaining = self.max_delay - (
                    time.perf_counter() - self._pending[0].enqueued_at)
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._pending[:self.max_batch]
            del self._pending[:len(batch)]
            self._cond.notify_all()     # wake backpressure waiters
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._claim()
            if batch is None:
                return
            if batch:   # a sibling worker may have drained the window
                self._execute(batch)

    def _execute(self, batch: Sequence[_PendingRequest]) -> None:
        """Run one claimed micro-batch: group, batch-process, resolve."""
        groups: dict[tuple, list[_PendingRequest]] = {}
        for request in batch:
            groups.setdefault(request.group_key(), []).append(request)
        for members in groups.values():
            # transition each future to RUNNING; a client may have
            # cancelled a pending request (e.g. after a wait timeout), and
            # resolving a cancelled future would crash the worker
            live = [member for member in members
                    if member.future.set_running_or_notify_cancel()]
            if self._recorder is not None and len(live) < len(members):
                self._recorder.note_failed(len(members) - len(live))
            if not live:
                continue
            head = live[0]
            try:
                results = self.engine.process_batch(
                    [member.image for member in live],
                    head.max_distortion, algorithm=head.algorithm)
            except BaseException as exc:   # noqa: BLE001 - forwarded, not hidden
                for member in live:
                    member.future.set_exception(exc)
                if self._recorder is not None:
                    self._recorder.note_failed(len(live))
                continue
            if len(results) != len(live):
                # a zip over mismatched lengths would silently strand the
                # tail futures in RUNNING forever; fail every member fast
                error = RuntimeError(
                    f"engine returned {len(results)} results for a batch "
                    f"of {len(live)} images")
                for member in live:
                    member.future.set_exception(error)
                if self._recorder is not None:
                    self._recorder.note_failed(len(live))
                continue
            if self._recorder is not None:
                self._recorder.note_batch(len(live))
            completed_at = time.perf_counter()
            for member, result in zip(live, results):
                # record completion before resolving the future: a client
                # woken by ``result()`` must never observe a stats snapshot
                # that has not yet counted its own request
                if self._recorder is not None:
                    self._recorder.note_completed(
                        completed_at - member.enqueued_at)
                member.future.set_result(result)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; workers drain the queue, then exit.

        ``wait=True`` (the default) joins the workers, so every future
        submitted before the close is resolved when this returns.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)
