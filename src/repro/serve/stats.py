"""Thread-safe serving telemetry: throughput, latency percentiles, batching.

Every component of :mod:`repro.serve` reports into one
:class:`StatsRecorder`; :meth:`StatsRecorder.snapshot` folds the counters,
the latency window and the engine's cache statistics into an immutable
:class:`ServerStats` record — the "live stats" surface of
:class:`~repro.serve.server.Server` and the payload of the CI perf artifact
(``BENCH_serving.json``).

Latency percentiles are computed over a bounded sliding window (the most
recent ``window`` completions) so a long-lived server reports its *current*
tail, not its lifetime average, and memory stays constant.  Stream-session
frames additionally feed bounded per-session windows, surfaced as
:class:`SessionFrameStats` under :attr:`ServerStats.sessions` (plus the
aggregate ``sessions_open`` / ``session_frames`` counters).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.api.cache import CacheStats

__all__ = [
    "percentile",
    "json_ready",
    "ServerStats",
    "SessionFrameStats",
    "StatsRecorder",
]

#: Most recent frame latencies retained per stream session, and the number
#: of per-session windows retained (oldest sessions age out first), so a
#: long-lived server's session telemetry stays bounded.
_SESSION_WINDOW = 512
_MAX_SESSION_WINDOWS = 256


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by the nearest-rank method.

    Returns 0.0 for an empty sequence; ``q`` is in percent (e.g. ``99``).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return float(ordered[max(0, min(rank, len(ordered) - 1))])


def json_ready(mapping: Mapping[str, object]) -> dict:
    """A copy of ``mapping`` with every numpy scalar coerced to its Python
    counterpart, recursively through nested mappings.

    The ``as_dict`` payloads of this module travel verbatim through
    ``json.dumps`` — the CI perf artifacts, ``repro loadtest --json`` and
    the ``stats`` RPC of :mod:`repro.serve.protocol` — and a single
    ``np.float64`` smuggled in by an upstream computation (``round()``
    preserves the numpy type!) would make serialization raise.  Every
    ``as_dict`` in the serving layer funnels through this guard so the
    round-trip is guaranteed by construction.
    """
    coerced: dict = {}
    for key, value in mapping.items():
        if isinstance(value, Mapping):
            value = json_ready(value)
        elif isinstance(value, np.bool_):
            value = bool(value)
        elif isinstance(value, np.integer):
            value = int(value)
        elif isinstance(value, np.floating):
            value = float(value)
        coerced[key] = value
    return coerced


@dataclass(frozen=True)
class SessionFrameStats:
    """Per-session frame telemetry inside a :class:`ServerStats` snapshot.

    Latencies are submit-to-completion times of the session's most recent
    frames (seconds, bounded window).
    """

    session_id: str
    frames: int
    latency_mean: float
    latency_p50: float
    latency_p95: float

    def as_dict(self) -> Mapping[str, float | int | str]:
        """A flat, JSON-ready view (latencies in ms) — guaranteed to
        ``json.dumps`` round-trip (see :func:`json_ready`)."""
        return json_ready({
            "session_id": self.session_id,
            "frames": self.frames,
            "latency_mean_ms": round(1e3 * self.latency_mean, 3),
            "latency_p50_ms": round(1e3 * self.latency_p50, 3),
            "latency_p95_ms": round(1e3 * self.latency_p95, 3),
        })


@dataclass(frozen=True)
class ServerStats:
    """One consistent snapshot of a serving component's counters.

    Attributes
    ----------
    submitted, completed, failed:
        Request counters: accepted into the queue / answered with a result /
        answered with an exception.
    rejected:
        Requests refused by backpressure (bounded queue full past the
        submit timeout) — these never count as submitted.
    batches:
        Number of engine batches executed by the coalescer.
    mean_batch_size:
        Average requests per engine batch (1.0 means no coalescing).
    elapsed_seconds:
        Wall time between the first submission and this snapshot (0 before
        any request).
    throughput:
        Completed requests per second of elapsed time.
    latency_mean, latency_p50, latency_p95, latency_p99:
        Submit-to-completion latency statistics, in seconds, over the
        recorder's sliding window.
    queue_depth:
        Requests pending in the coalescer at snapshot time.
    cache:
        The engine's :class:`~repro.api.cache.CacheStats` at snapshot time.
    sessions_open:
        Stream sessions open on the server at snapshot time.
    sessions_opened, sessions_closed, sessions_evicted:
        Lifetime session counters; evictions (idle sessions reaped by the
        TTL sweep) also count as closed.
    session_frames:
        Stream-session frames completed (a subset of ``completed``).
    sessions:
        Per-session frame telemetry, keyed by session id (most recent
        sessions; bounded).
    connections_v1, connections_v2:
        Client connections currently open by negotiated protocol
        generation — the observability handle on a mixed-version fleet
        mid-migration.  Stamped by :class:`~repro.serve.net.NetworkServer`
        (always 0 for an in-process server, which has no connections).
    shard_id:
        Identity of the serving shard this snapshot came from, for
        attribution inside aggregated cluster stats.  ``None`` for an
        in-process server; :class:`~repro.serve.net.NetworkServer` stamps
        its shard id onto the snapshots it sends over the wire.
    """

    submitted: int
    completed: int
    failed: int
    rejected: int
    batches: int
    mean_batch_size: float
    elapsed_seconds: float
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    queue_depth: int
    cache: CacheStats
    sessions_open: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    session_frames: int = 0
    sessions: Mapping[str, SessionFrameStats] = field(default_factory=dict)
    connections_v1: int = 0
    connections_v2: int = 0
    shard_id: str | None = None

    @property
    def in_flight(self) -> int:
        """Requests accepted but not yet answered."""
        return self.submitted - self.completed - self.failed

    def as_dict(self) -> Mapping[str, float | int]:
        """A JSON-ready view of the snapshot (latencies in ms).

        Flat counters plus one nested ``sessions`` mapping (session id →
        :meth:`SessionFrameStats.as_dict`).  Guaranteed to ``json.dumps``
        round-trip (see :func:`json_ready`) — this is the verbatim payload
        of the ``stats`` RPC, and
        :func:`repro.serve.protocol.server_stats_from_wire` rebuilds a
        :class:`ServerStats` from it on the client side.
        """
        return json_ready({
            "shard_id": self.shard_id,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "latency_mean_ms": round(1e3 * self.latency_mean, 3),
            "latency_p50_ms": round(1e3 * self.latency_p50, 3),
            "latency_p95_ms": round(1e3 * self.latency_p95, 3),
            "latency_p99_ms": round(1e3 * self.latency_p99, 3),
            "queue_depth": self.queue_depth,
            "sessions_open": self.sessions_open,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "session_frames": self.session_frames,
            "connections_v1": self.connections_v1,
            "connections_v2": self.connections_v2,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_replays": self.cache.replays,
            "cache_size": self.cache.size,
            "cache_max_size": self.cache.max_size,
            "cache_evictions": self.cache.evictions,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
            "cache_reuse_rate": round(self.cache.reuse_rate, 4),
            "sessions": {session_id: entry.as_dict()
                         for session_id, entry in self.sessions.items()},
        })


class StatsRecorder:
    """Thread-safe accumulator behind :class:`ServerStats` snapshots.

    Parameters
    ----------
    window:
        Number of most recent request latencies retained for the
        percentile estimates.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, window: int = 4096, clock=time.perf_counter) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self._lock = threading.Lock()
        self._clock = clock
        self._latencies: deque[float] = deque(maxlen=int(window))
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._batches = 0
        self._batched_requests = 0
        self._first_submit: float | None = None
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._sessions_evicted = 0
        self._session_frames = 0
        # per-session latency windows, oldest session aged out first so a
        # long-lived server's telemetry stays bounded
        self._session_latencies: OrderedDict[str, deque[float]] = OrderedDict()

    def note_submitted(self, count: int = 1) -> None:
        """Record ``count`` requests accepted into the queue."""
        now = self._clock()
        with self._lock:
            self._submitted += count
            if self._first_submit is None:
                self._first_submit = now

    def note_rejected(self, count: int = 1) -> None:
        """Record ``count`` requests refused by backpressure."""
        with self._lock:
            self._rejected += count

    def note_completed(self, latency_seconds: float) -> None:
        """Record one successfully answered request and its latency."""
        with self._lock:
            self._completed += 1
            self._latencies.append(float(latency_seconds))

    def note_failed(self, count: int = 1) -> None:
        """Record ``count`` requests answered with an exception."""
        with self._lock:
            self._failed += count

    def note_batch(self, size: int) -> None:
        """Record one engine batch of ``size`` coalesced requests."""
        with self._lock:
            self._batches += 1
            self._batched_requests += size

    def note_session_opened(self, count: int = 1) -> None:
        """Record ``count`` stream sessions opened."""
        with self._lock:
            self._sessions_opened += count

    def note_session_closed(self, count: int = 1,
                            evicted: bool = False) -> None:
        """Record ``count`` stream sessions closed (``evicted`` marks
        closures performed by the idle-TTL sweep)."""
        with self._lock:
            self._sessions_closed += count
            if evicted:
                self._sessions_evicted += count

    def note_session_frame(self, session_id: str,
                           latency_seconds: float) -> None:
        """Record one completed stream-session frame and its latency.

        Called *in addition to* :meth:`note_completed` — session frames are
        ordinary completions that additionally feed the per-session window.
        """
        with self._lock:
            self._session_frames += 1
            window = self._session_latencies.get(session_id)
            if window is None:
                window = deque(maxlen=_SESSION_WINDOW)
                self._session_latencies[session_id] = window
                while len(self._session_latencies) > _MAX_SESSION_WINDOWS:
                    self._session_latencies.popitem(last=False)
            window.append(float(latency_seconds))

    def snapshot(self, cache: CacheStats | None = None,
                 queue_depth: int = 0,
                 sessions_open: int = 0) -> ServerStats:
        """A consistent :class:`ServerStats` of everything recorded so far."""
        now = self._clock()
        with self._lock:
            latencies = list(self._latencies)
            sessions = {
                sid: SessionFrameStats(
                    session_id=sid,
                    frames=len(window),
                    latency_mean=sum(window) / len(window),
                    latency_p50=percentile(window, 50),
                    latency_p95=percentile(window, 95),
                )
                for sid, window in self._session_latencies.items() if window
            }
            elapsed = (now - self._first_submit
                       if self._first_submit is not None else 0.0)
            mean_batch = (self._batched_requests / self._batches
                          if self._batches else 0.0)
            mean_latency = (sum(latencies) / len(latencies)
                            if latencies else 0.0)
            return ServerStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                batches=self._batches,
                mean_batch_size=mean_batch,
                elapsed_seconds=max(elapsed, 0.0),
                throughput=(self._completed / elapsed if elapsed > 0 else 0.0),
                latency_mean=mean_latency,
                latency_p50=percentile(latencies, 50),
                latency_p95=percentile(latencies, 95),
                latency_p99=percentile(latencies, 99),
                queue_depth=queue_depth,
                cache=cache if cache is not None else CacheStats(
                    hits=0, misses=0, size=0, max_size=0, evictions=0,
                    replays=0),
                sessions_open=sessions_open,
                sessions_opened=self._sessions_opened,
                sessions_closed=self._sessions_closed,
                sessions_evicted=self._sessions_evicted,
                session_frames=self._session_frames,
                sessions=sessions,
            )
