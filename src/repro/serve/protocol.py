"""Wire codec and protocol of the network serving API.

The paper's central decomposition (Fig. 4) — solve once per *histogram*,
replay a cheap per-pixel LUT — means a backlight-scaling service never needs
to see pixels: a client ships a 256-bin histogram plus a distortion budget
and gets back a :class:`~repro.api.types.CompensationSolution` to apply
locally.  This module defines everything both ends of that conversation
share:

**Framing.**  A frame is a 4-byte big-endian length prefix followed by a
UTF-8 JSON object.  :func:`encode_frame` builds one; :func:`frame_length`
validates a received header (bounded by :data:`MAX_FRAME_BYTES`) and
:func:`decode_frame` parses a received payload.  Binary payloads (pixel
arrays, driver voltages) travel as base64 inside the JSON, so a frame is
always one self-describing JSON document.

**Codec.**  ``*_to_wire`` / ``*_from_wire`` pairs for every value the
service exchanges: histograms, images, every built-in
:class:`~repro.core.transforms.PixelTransform` (exact field round-trip;
unknown third-party transforms degrade to their per-level LUT),
driver programs, power breakdowns, :class:`CompensationSolution`,
:class:`~repro.api.types.CompensationResult`,
:class:`~repro.api.types.StreamFrameResult` and
:class:`~repro.serve.stats.ServerStats`.  Round-trips are **bit-exact**:
integer arrays travel as raw bytes, floats survive via JSON's shortest
round-trip ``repr``, so a decoded transform applies to an image with the
exact same output pixels as the original.

**Messages.**  Version negotiation (``hello`` both ways; a client opens
with its baseline ``version`` — always :data:`PROTOCOL_V1`, so pre-v2
servers keep accepting it — plus an optional ``max_version`` advertising
the newest generation it speaks, and the server answers with the highest
version both sides share, :func:`negotiated_version`; a server that is
part of a cluster identifies itself with a ``shard_id``), the request types ``solve`` (histogram-only,
the paper-native fast path), ``process`` (full image), ``open_session`` /
``feed`` / ``close_session`` (the push-based stream surface), ``stats``
and ``health`` (the cheap liveness probe of the cluster router),
with one response type each and a typed ``error`` frame.
:func:`error_response` maps
:class:`~repro.serve.coalescer.ServerOverloadedError` (with its structured
``queue_depth`` / ``retry_after_seconds`` hints),
:class:`~repro.serve.coalescer.ServerClosedError` and
:class:`~repro.api.session.SessionClosedError` onto protocol error codes,
and :func:`exception_from_error` rebuilds the same typed exception on the
client — so backpressure semantics survive the network hop instead of
degenerating into a dropped connection.

**Routing.**  :func:`routing_key` is the cluster routing key of a piece of
content: the quantized grayscale-histogram signature of
:func:`repro.api.cache.histogram_signature` — the same bytes the engine's
solution cache is keyed on.  A ``process`` request may carry it pre-stamped
(the ``routing`` field) so a router never has to decode pixels to place the
request on the shard whose cache already holds its solution.

**Protocol v2.**  This module is the *message* codec; frames carrying the
same messages can travel in two payload formats, negotiated per
connection: the v1 JSON format defined here (arrays as base64 mappings —
byte-for-byte unchanged since v1) and the v2 binary format of
:mod:`repro.serve.wire2` (arrays as raw zero-copy segments).  Every
``*_from_wire`` decoder accepts either leaf form — a base64 mapping or a
decoded ``np.ndarray`` — so the layers above never care which codec a
frame arrived in.  ``*_to_wire`` encoders take ``binary=True`` to emit
ndarray leaves for wire2 to lift into segments (images additionally pack
to ``uint8`` when the bit depth allows, halving pixel bytes).

:mod:`repro.serve.net` is the asyncio server speaking this protocol;
:mod:`repro.client` is the SDK; :mod:`repro.cluster` is the
consistent-hash router in front of many servers.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Mapping

import numpy as np

from repro.api.session import SessionClosedError
from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.api.cache import CacheStats, histogram_signature
from repro.core.histogram import Histogram
from repro.core.transforms import (
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    IdentityTransform,
    LUTTransform,
    PiecewiseLinearTransform,
    PixelTransform,
    SingleBandSpreadTransform,
)
from repro.display.driver import DriverProgram
from repro.display.power import PowerBreakdown
from repro.imaging.image import Image
from repro.serve.coalescer import ServerClosedError, ServerOverloadedError
from repro.serve.stats import ServerStats, SessionFrameStats

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_V1",
    "negotiated_version",
    "MAX_FRAME_BYTES",
    "MAX_HISTOGRAM_PIXELS",
    "HEADER_BYTES",
    "DEFAULT_RETRY_AFTER",
    "ProtocolError",
    "encode_frame",
    "frame_length",
    "decode_frame",
    "hello_frame",
    "solve_request",
    "process_request",
    "open_session_request",
    "feed_request",
    "close_session_request",
    "stats_request",
    "health_request",
    "health_response",
    "routing_key",
    "solution_response",
    "result_response",
    "session_response",
    "frame_response",
    "session_closed_response",
    "stats_response",
    "error_response",
    "exception_from_error",
    "array_to_wire",
    "array_from_wire",
    "check_descriptor",
    "histogram_to_wire",
    "histogram_from_wire",
    "image_to_wire",
    "image_from_wire",
    "transform_to_wire",
    "transform_from_wire",
    "driver_program_to_wire",
    "driver_program_from_wire",
    "solution_to_wire",
    "solution_from_wire",
    "result_to_wire",
    "result_from_wire",
    "stream_frame_to_wire",
    "stream_frame_from_wire",
    "server_stats_from_wire",
]

#: Newest protocol generation spoken by this build.  Both ends open with
#: a ``hello`` frame; the server answers with the highest generation both
#: sides share (:func:`negotiated_version`) and refuses a client it
#: cannot speak to with an ``unsupported_version`` error frame.
PROTOCOL_VERSION = 2

#: The original JSON protocol generation — the baseline every peer
#: speaks, and the ``version`` value a client's hello always carries
#: (pre-v2 servers reject any other; newer generations ride in the
#: separate ``max_version`` key those servers ignore).
PROTOCOL_V1 = 1

#: Frame header size: one big-endian unsigned 32-bit payload length.
HEADER_BYTES = 4

#: Upper bound on one frame's JSON payload.  Generous for any realistic
#: image (a 1024x1024 16-bit frame is ~2.7 MiB base64) while refusing a
#: corrupt or hostile length prefix before allocating for it.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Retry hint (seconds) put on ``overloaded`` error frames when the raising
#: component did not estimate one itself.
DEFAULT_RETRY_AFTER = 0.05

#: Upper bound on the total pixel mass of a wire histogram (2**28 ≈ a
#: 16k x 16k frame).  The counts are the real amplification vector — a
#: ~50-byte ``solve`` frame could otherwise claim terabytes of pixels and
#: make the server's histogram realization allocate them — so the codec
#: refuses them at decode time, long before ``Histogram.to_image``.
MAX_HISTOGRAM_PIXELS = 1 << 28


class ProtocolError(RuntimeError):
    """A malformed, oversized or version-incompatible protocol frame."""


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #
def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Serialize one message into a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":"),
                         allow_nan=False).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return len(payload).to_bytes(HEADER_BYTES, "big") + payload


def frame_length(header: bytes) -> int:
    """Validate a received 4-byte header and return the payload length."""
    if len(header) != HEADER_BYTES:
        raise ProtocolError(
            f"frame header must be {HEADER_BYTES} bytes, got {len(header)}")
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame, beyond the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return length


def decode_frame(payload: bytes) -> dict:
    """Parse one frame payload into its message dictionary."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}")
    return message


# --------------------------------------------------------------------- #
# value codec: arrays, histograms, images
# --------------------------------------------------------------------- #
def check_descriptor(dtype: Any, shape: Any,
                     nbytes: int) -> tuple[np.dtype, tuple[int, ...]]:
    """Validate a wire array descriptor against its payload length.

    Both codecs funnel through here before ``np.frombuffer`` so a
    malformed frame surfaces as a typed ``bad_request`` error instead of
    a raw numpy exception server-side: the dtype must name a plain
    bool/int/uint/float scalar (no object, void or structured dtypes —
    those can execute pickle or hide padding), every dimension must be a
    non-negative integer (``-1`` would make ``reshape`` silently *infer*
    a shape the peer never declared), and the declared element count must
    match the payload length exactly.

    Returns the parsed ``(np.dtype, shape tuple)``.
    """
    try:
        parsed = np.dtype(dtype)
    except TypeError as exc:
        raise ProtocolError(f"malformed array payload: {exc}") from exc
    if parsed.kind not in "biuf":
        raise ProtocolError(
            f"malformed array payload: unsupported wire dtype {dtype!r}")
    if not isinstance(shape, (list, tuple)):
        raise ProtocolError(
            f"malformed array payload: shape must be a list, "
            f"got {type(shape).__name__}")
    dims: list[int] = []
    for dim in shape:
        if isinstance(dim, bool) or not isinstance(dim, (int, np.integer)):
            raise ProtocolError(
                f"malformed array payload: non-integer dimension {dim!r}")
        if dim < 0:
            raise ProtocolError(
                f"malformed array payload: negative dimension {dim!r}")
        dims.append(int(dim))
    count = 1
    for dim in dims:
        count *= dim
    if count * parsed.itemsize != nbytes:
        raise ProtocolError(
            f"malformed array payload: shape {dims} of dtype "
            f"{parsed.str} needs {count * parsed.itemsize} bytes, "
            f"payload has {nbytes}")
    return parsed, tuple(dims)


def array_to_wire(array: np.ndarray) -> dict:
    """Bit-exact wire form of a numpy array (dtype + shape + base64 data)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": [int(n) for n in array.shape],
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def array_from_wire(wire: Mapping[str, Any] | np.ndarray) -> np.ndarray:
    """Decode a wire array leaf — a v1 base64 mapping, or an ndarray a v2
    frame already materialized (returned as-is, still a zero-copy view)."""
    if isinstance(wire, np.ndarray):
        return wire
    try:
        raw = base64.b64decode(str(wire["data"]).encode("ascii"),
                               validate=True)
        declared_dtype = wire["dtype"]
        declared_shape = wire["shape"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed array payload: {exc}") from exc
    dtype, shape = check_descriptor(declared_dtype, declared_shape, len(raw))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


# kept under the historical private names for in-package call sites
_array_to_wire = array_to_wire
_array_from_wire = array_from_wire


def histogram_to_wire(histogram: Histogram) -> dict:
    """Wire form of a histogram: the exact integer counts."""
    return {"counts": [int(count) for count in histogram.counts]}


def histogram_from_wire(wire: Mapping[str, Any]) -> Histogram:
    try:
        histogram = Histogram(np.asarray(wire["counts"], dtype=np.int64))
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"malformed histogram payload: {exc}") from exc
    if histogram.n_pixels > MAX_HISTOGRAM_PIXELS:
        raise ProtocolError(
            f"histogram claims {histogram.n_pixels} pixels, beyond the "
            f"{MAX_HISTOGRAM_PIXELS}-pixel protocol limit")
    return histogram


def image_to_wire(image: Image, *, binary: bool = False) -> dict:
    """Wire form of an image: raw pixels plus bit depth and name.

    With ``binary=True`` (v2 frames) the pixels stay an ``np.ndarray``
    leaf for :mod:`repro.serve.wire2` to lift into a raw segment —
    additionally packed to ``uint8`` when the bit depth fits, halving
    the bytes of the common 8-bit case.  The dtype travels in the
    segment descriptor, so decoding needs no extra flag:
    :class:`~repro.imaging.image.Image` widens back to its uint16
    internal storage bit-exactly.
    """
    if binary:
        pixels = image.pixels
        if image.bit_depth <= 8:
            pixels = pixels.astype(np.uint8)
        return {
            "pixels": pixels,
            "bit_depth": int(image.bit_depth),
            "name": image.name,
        }
    return {
        "pixels": _array_to_wire(image.pixels),
        "bit_depth": int(image.bit_depth),
        "name": image.name,
    }


def image_from_wire(wire: Mapping[str, Any]) -> Image:
    try:
        return Image(_array_from_wire(wire["pixels"]),
                     bit_depth=int(wire["bit_depth"]),
                     name=str(wire.get("name", "")))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed image payload: {exc}") from exc


# --------------------------------------------------------------------- #
# value codec: transforms
# --------------------------------------------------------------------- #
def transform_to_wire(transform: PixelTransform) -> dict:
    """Wire form of a pixel transformation.

    Every built-in transform serializes its exact defining fields, so the
    decoded instance is equal to (``==``) and applies bit-identically to
    the original.  An unknown third-party subclass degrades to its
    per-level LUT sampled on the :class:`LUTTransform` grid — exact at
    every grid point, interpolated in between.
    """
    if isinstance(transform, IdentityTransform):
        return {"kind": "identity"}
    if isinstance(transform, GrayscaleShiftTransform):
        return {"kind": "grayscale-shift", "beta": float(transform.beta)}
    if isinstance(transform, GrayscaleSpreadTransform):
        return {"kind": "grayscale-spread", "beta": float(transform.beta)}
    if isinstance(transform, SingleBandSpreadTransform):
        return {"kind": "single-band", "g_low": float(transform.g_low),
                "g_high": float(transform.g_high)}
    if isinstance(transform, PiecewiseLinearTransform):
        return {"kind": "piecewise",
                "x_breaks": [float(x) for x in transform.x_breaks],
                "y_breaks": [float(y) for y in transform.y_breaks]}
    if isinstance(transform, LUTTransform):
        return {"kind": "lut", "table": [float(v) for v in transform.table]}
    if isinstance(transform, PixelTransform):
        table = transform(np.linspace(0.0, 1.0, 256))
        return {"kind": "lut", "table": [float(v) for v in table]}
    raise TypeError(f"not a PixelTransform: {transform!r}")


def transform_from_wire(wire: Mapping[str, Any]) -> PixelTransform:
    try:
        kind = wire["kind"]
        if kind == "identity":
            return IdentityTransform()
        if kind == "grayscale-shift":
            return GrayscaleShiftTransform(beta=float(wire["beta"]))
        if kind == "grayscale-spread":
            return GrayscaleSpreadTransform(beta=float(wire["beta"]))
        if kind == "single-band":
            return SingleBandSpreadTransform(g_low=float(wire["g_low"]),
                                             g_high=float(wire["g_high"]))
        if kind == "piecewise":
            return PiecewiseLinearTransform(
                x_breaks=tuple(float(x) for x in wire["x_breaks"]),
                y_breaks=tuple(float(y) for y in wire["y_breaks"]))
        if kind == "lut":
            return LUTTransform(table=tuple(float(v) for v in wire["table"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed transform payload: {exc}") from exc
    raise ProtocolError(f"unknown transform kind {wire.get('kind')!r}")


# --------------------------------------------------------------------- #
# value codec: driver programs, power, solutions, results
# --------------------------------------------------------------------- #
def driver_program_to_wire(program: DriverProgram) -> dict:
    return {
        "breakpoint_levels": _array_to_wire(program.breakpoint_levels),
        "reference_voltages": _array_to_wire(program.reference_voltages),
        "backlight_factor": float(program.backlight_factor),
        "vdd": float(program.vdd),
        "levels": int(program.levels),
    }


def driver_program_from_wire(wire: Mapping[str, Any]) -> DriverProgram:
    try:
        return DriverProgram(
            breakpoint_levels=_array_from_wire(wire["breakpoint_levels"]),
            reference_voltages=_array_from_wire(wire["reference_voltages"]),
            backlight_factor=float(wire["backlight_factor"]),
            vdd=float(wire["vdd"]),
            levels=int(wire["levels"]))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed driver program payload: {exc}") from exc


def _power_to_wire(power: PowerBreakdown) -> dict:
    return {"ccfl": float(power.ccfl), "panel": float(power.panel)}


def _power_from_wire(wire: Mapping[str, Any]) -> PowerBreakdown:
    try:
        return PowerBreakdown(ccfl=float(wire["ccfl"]),
                              panel=float(wire["panel"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed power payload: {exc}") from exc


def solution_to_wire(solution: CompensationSolution) -> dict:
    """Wire form of an image-independent solution.

    The technique-native ``details`` payload stays server-side (it holds
    solver intermediates a remote client cannot use); transformation,
    backlight factor and driver program — everything needed for the
    client-side LUT application — round-trip exactly.
    """
    return {
        "algorithm": solution.algorithm,
        "transform": transform_to_wire(solution.transform),
        "backlight_factor": float(solution.backlight_factor),
        "driver_program": (None if solution.driver_program is None
                           else driver_program_to_wire(solution.driver_program)),
    }


def solution_from_wire(wire: Mapping[str, Any]) -> CompensationSolution:
    try:
        program = wire.get("driver_program")
        return CompensationSolution(
            algorithm=str(wire["algorithm"]),
            transform=transform_from_wire(wire["transform"]),
            backlight_factor=float(wire["backlight_factor"]),
            driver_program=(None if program is None
                            else driver_program_from_wire(program)))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed solution payload: {exc}") from exc


def result_to_wire(result: CompensationResult, *, binary: bool = False,
                   include_original: bool = True) -> dict:
    """Wire form of a full per-image result (``details`` stays server-side).

    ``binary=True`` leaves pixel arrays as ndarray leaves for the v2
    codec.  ``include_original=False`` (v2 responses) omits the
    ``original`` image entirely: every algorithm sets it to the
    grayscale rendition of the request image, which the requester can
    reconstruct bit-exactly with :meth:`Image.to_grayscale
    <repro.imaging.image.Image.to_grayscale>` — so the downlink never
    re-ships pixels the client already has.
    """
    wire = {
        "algorithm": result.algorithm,
        "output": image_to_wire(result.output, binary=binary),
        "backlight_factor": float(result.backlight_factor),
        "transform": transform_to_wire(result.transform),
        "distortion": float(result.distortion),
        "power": _power_to_wire(result.power),
        "reference_power": _power_to_wire(result.reference_power),
        "max_distortion": (None if result.max_distortion is None
                           else float(result.max_distortion)),
        "driver_program": (None if result.driver_program is None
                           else driver_program_to_wire(result.driver_program)),
        "from_cache": bool(result.from_cache),
        "replayed": bool(result.replayed),
    }
    if include_original:
        wire["original"] = image_to_wire(result.original, binary=binary)
    return wire


def result_from_wire(wire: Mapping[str, Any], *,
                     original: Image | None = None) -> CompensationResult:
    """Rebuild a result; ``original`` supplies the image when the frame
    omitted it (v2) — pass the request image's grayscale rendition."""
    try:
        original_wire = wire.get("original")
        if original_wire is not None:
            original = image_from_wire(original_wire)
        elif original is None:
            raise ProtocolError(
                "result payload omits 'original' and no request image "
                "was provided to reconstruct it")
        program = wire.get("driver_program")
        budget = wire.get("max_distortion")
        return CompensationResult(
            algorithm=str(wire["algorithm"]),
            original=original,
            output=image_from_wire(wire["output"]),
            backlight_factor=float(wire["backlight_factor"]),
            transform=transform_from_wire(wire["transform"]),
            distortion=float(wire["distortion"]),
            power=_power_from_wire(wire["power"]),
            reference_power=_power_from_wire(wire["reference_power"]),
            max_distortion=None if budget is None else float(budget),
            driver_program=(None if program is None
                            else driver_program_from_wire(program)),
            from_cache=bool(wire.get("from_cache", False)),
            replayed=bool(wire.get("replayed", False)))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result payload: {exc}") from exc


def stream_frame_to_wire(outcome: StreamFrameResult, *,
                         binary: bool = False,
                         include_original: bool = True) -> dict:
    return {
        "result": result_to_wire(outcome.result, binary=binary,
                                 include_original=include_original),
        "requested_backlight": float(outcome.requested_backlight),
        "applied_backlight": float(outcome.applied_backlight),
        "scene_change": bool(outcome.scene_change),
        "reused": bool(outcome.reused),
    }


def stream_frame_from_wire(wire: Mapping[str, Any], *,
                           original: Image | None = None) -> StreamFrameResult:
    try:
        return StreamFrameResult(
            result=result_from_wire(wire["result"], original=original),
            requested_backlight=float(wire["requested_backlight"]),
            applied_backlight=float(wire["applied_backlight"]),
            scene_change=bool(wire["scene_change"]),
            reused=bool(wire.get("reused", False)))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed stream frame payload: {exc}") from exc


def server_stats_from_wire(wire: Mapping[str, Any]) -> ServerStats:
    """Rebuild a :class:`~repro.serve.stats.ServerStats` from the payload of
    a ``stats`` response (the server's ``as_dict`` view, latencies in ms)."""
    try:
        sessions = {
            session_id: SessionFrameStats(
                session_id=str(entry["session_id"]),
                frames=int(entry["frames"]),
                latency_mean=float(entry["latency_mean_ms"]) / 1e3,
                latency_p50=float(entry["latency_p50_ms"]) / 1e3,
                latency_p95=float(entry["latency_p95_ms"]) / 1e3)
            for session_id, entry in dict(wire.get("sessions", {})).items()
        }
        return ServerStats(
            submitted=int(wire["submitted"]),
            completed=int(wire["completed"]),
            failed=int(wire["failed"]),
            rejected=int(wire["rejected"]),
            batches=int(wire["batches"]),
            mean_batch_size=float(wire["mean_batch_size"]),
            elapsed_seconds=float(wire["elapsed_seconds"]),
            throughput=float(wire["throughput_rps"]),
            latency_mean=float(wire["latency_mean_ms"]) / 1e3,
            latency_p50=float(wire["latency_p50_ms"]) / 1e3,
            latency_p95=float(wire["latency_p95_ms"]) / 1e3,
            latency_p99=float(wire["latency_p99_ms"]) / 1e3,
            queue_depth=int(wire["queue_depth"]),
            cache=CacheStats(
                hits=int(wire["cache_hits"]),
                misses=int(wire["cache_misses"]),
                size=int(wire.get("cache_size", 0)),
                max_size=int(wire.get("cache_max_size", 0)),
                evictions=int(wire.get("cache_evictions", 0)),
                replays=int(wire["cache_replays"])),
            sessions_open=int(wire.get("sessions_open", 0)),
            sessions_opened=int(wire.get("sessions_opened", 0)),
            sessions_closed=int(wire.get("sessions_closed", 0)),
            sessions_evicted=int(wire.get("sessions_evicted", 0)),
            session_frames=int(wire.get("session_frames", 0)),
            sessions=sessions,
            connections_v1=int(wire.get("connections_v1", 0)),
            connections_v2=int(wire.get("connections_v2", 0)),
            shard_id=(None if wire.get("shard_id") is None
                      else str(wire["shard_id"])))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed stats payload: {exc}") from exc


# --------------------------------------------------------------------- #
# messages: handshake and requests
# --------------------------------------------------------------------- #
def hello_frame(version: int = PROTOCOL_V1,
                shard_id: str | None = None, *,
                max_version: int | None = None,
                shm: Any = None) -> dict:
    """The handshake message both ends open with.

    ``version`` is the *baseline* generation — a client always sends
    :data:`PROTOCOL_V1` there, because pre-v2 servers reject any other
    value; the newest generation it speaks rides in ``max_version``,
    which old servers ignore (and which is omitted when it would equal
    ``version``, keeping the v1 handshake bytes pinned).  A server's
    reply carries the negotiated generation in ``version``.

    A server that is part of a cluster identifies itself with its
    ``shard_id`` (the attribution key of aggregated cluster stats).
    ``shm`` carries the shared-memory-lane negotiation payload of
    :mod:`repro.serve.shm`: a probe descriptor on the client hello, a
    boolean verdict on the server reply.  Every optional key is omitted
    entirely when unset, so the plain v1 handshake bytes are unchanged.
    """
    frame = {"type": "hello", "version": int(version)}
    if max_version is not None and int(max_version) != int(version):
        frame["max_version"] = int(max_version)
    if shard_id is not None:
        frame["shard_id"] = str(shard_id)
    if shm is not None:
        frame["shm"] = shm
    return frame


def negotiated_version(hello: Mapping[str, Any]) -> int:
    """The protocol generation to speak with the peer that sent ``hello``.

    The peer offers the range ``[version, max(version, max_version)]``;
    we speak ``[PROTOCOL_V1, PROTOCOL_VERSION]``.  Returns the highest
    generation in both ranges, or ``0`` when the ranges are disjoint or
    the hello malformed (→ answer ``unsupported_version`` and close).
    """
    try:
        low = int(hello.get("version"))
        high = int(hello.get("max_version", low))
    except (TypeError, ValueError):
        return 0
    high = max(low, high)
    if low < PROTOCOL_V1 or low > PROTOCOL_VERSION:
        return 0
    return min(high, PROTOCOL_VERSION)


def routing_key(source: Image | Histogram) -> bytes:
    """The cluster routing key of a piece of content.

    The quantized grayscale-histogram signature
    (:func:`repro.api.cache.histogram_signature`) — exactly what the
    engine's solution cache is keyed on, which is the whole argument for
    content-hash routing: identical content always lands on the shard
    whose cache already holds its solution.  An image and the histogram
    of its grayscale rendition produce the same key, so ``solve`` and
    ``process`` traffic for the same content co-locate.
    """
    if isinstance(source, Histogram):
        histogram = source
    else:
        histogram = Histogram.of_image(source.to_grayscale())
    return histogram_signature(histogram)


def solve_request(request_id: int, source: Image | Histogram,
                  max_distortion: float,
                  algorithm: str | None = None) -> dict:
    """The histogram-only fast path: ship O(histogram) bytes, get back an
    image-independent solution to apply locally."""
    histogram = (source if isinstance(source, Histogram)
                 else Histogram.of_image(source))
    return {"type": "solve", "id": int(request_id),
            "histogram": histogram_to_wire(histogram),
            "max_distortion": float(max_distortion),
            "algorithm": algorithm}


def process_request(request_id: int, image: Image, max_distortion: float,
                    algorithm: str | None = None,
                    routing: bytes | None = None, *,
                    binary: bool = False) -> dict:
    """The full-image path: the server applies the solution and accounts
    distortion and power.

    ``routing`` optionally pre-stamps the :func:`routing_key` of the
    image (hex on the wire), so a cluster router can place the request
    without decoding pixels on its event loop.  Servers ignore it; an
    un-stamped request routes fine — the router derives the key itself,
    off-loop.
    """
    message = {"type": "process", "id": int(request_id),
               "image": image_to_wire(image, binary=binary),
               "max_distortion": float(max_distortion),
               "algorithm": algorithm}
    if routing is not None:
        message["routing"] = bytes(routing).hex()
    return message


def open_session_request(request_id: int, max_distortion: float,
                         algorithm: str | None = None,
                         options: Mapping[str, Any] | None = None) -> dict:
    """Open a server-side stream session.  ``options`` are the
    JSON-representable keyword options of :meth:`Engine.open_session
    <repro.api.engine.Engine.open_session>` (``scene_gated_solve=``,
    ``snap_on_scene_change=``, ``stability_bins=``, ...); stateful objects
    (smoothers, detectors) cannot cross the wire and stay server-defaults."""
    return {"type": "open_session", "id": int(request_id),
            "max_distortion": float(max_distortion),
            "algorithm": algorithm,
            "options": dict(options or {})}


def feed_request(request_id: int, session_id: str, frame: Image, *,
                 binary: bool = False,
                 shm: Mapping[str, Any] | None = None) -> dict:
    """``shm`` replaces the pixel payload with a shared-memory block
    reference (:mod:`repro.serve.shm`) on a negotiated same-host lane —
    the control frame still travels the socket, the pixels do not."""
    message = {"type": "feed", "id": int(request_id),
               "session_id": str(session_id)}
    if shm is not None:
        message["frame"] = {"shm": dict(shm)}
    else:
        message["frame"] = image_to_wire(frame, binary=binary)
    return message


def close_session_request(request_id: int, session_id: str) -> dict:
    return {"type": "close_session", "id": int(request_id),
            "session_id": str(session_id)}


def stats_request(request_id: int) -> dict:
    return {"type": "stats", "id": int(request_id)}


def health_request(request_id: int) -> dict:
    """The liveness probe of the cluster router: answered straight off
    the event loop, no engine work — a shard that cannot answer it
    within the probe timeout is marked down."""
    return {"type": "health", "id": int(request_id)}


# --------------------------------------------------------------------- #
# messages: responses
# --------------------------------------------------------------------- #
def solution_response(request_id: int,
                      solution: CompensationSolution) -> dict:
    return {"type": "solution", "id": int(request_id),
            "solution": solution_to_wire(solution)}


def result_response(request_id: int, result: CompensationResult, *,
                    binary: bool = False,
                    include_original: bool = True) -> dict:
    return {"type": "result", "id": int(request_id),
            "result": result_to_wire(result, binary=binary,
                                     include_original=include_original)}


def session_response(request_id: int, session_id: str) -> dict:
    return {"type": "session", "id": int(request_id),
            "session_id": str(session_id)}


def frame_response(request_id: int, outcome: StreamFrameResult, *,
                   binary: bool = False,
                   include_original: bool = True) -> dict:
    return {"type": "frame", "id": int(request_id),
            "outcome": stream_frame_to_wire(
                outcome, binary=binary,
                include_original=include_original)}


def session_closed_response(request_id: int, session_id: str) -> dict:
    return {"type": "session_closed", "id": int(request_id),
            "session_id": str(session_id)}


def stats_response(request_id: int,
                   stats: ServerStats | Mapping[str, Any]) -> dict:
    payload = stats.as_dict() if isinstance(stats, ServerStats) else stats
    return {"type": "stats", "id": int(request_id), "stats": dict(payload)}


def health_response(request_id: int, shard_id: str | None = None,
                    status: str = "ok", sessions_open: int = 0,
                    queue_depth: int = 0) -> dict:
    """Answer to a ``health`` probe: identity plus two cheap load gauges."""
    return {"type": "health", "id": int(request_id),
            "shard_id": None if shard_id is None else str(shard_id),
            "status": str(status),
            "sessions_open": int(sessions_open),
            "queue_depth": int(queue_depth)}


# --------------------------------------------------------------------- #
# messages: typed errors
# --------------------------------------------------------------------- #
#: Protocol error codes.  ``overloaded`` carries the backpressure hints;
#: ``session_closed`` covers both a closed and an unknown session id;
#: ``bad_request`` is a client-side mistake (malformed payload, unknown
#: algorithm, invalid operating point); ``internal`` is everything else.
ERROR_CODES = ("overloaded", "server_closed", "session_closed",
               "bad_request", "unsupported_version", "internal")


def error_response(request_id: int | None, error: BaseException, *,
                   code: str | None = None) -> dict:
    """Map an exception onto a typed protocol error frame.

    :class:`~repro.serve.coalescer.ServerOverloadedError` becomes
    ``overloaded`` with its ``queue_depth`` and ``retry_after_seconds``
    hints (defaulting to :data:`DEFAULT_RETRY_AFTER` so a remote client
    always has a back-off to honor) — the server stays connected and
    answers again after the hint, instead of dropping the socket.
    """
    retry_after = None
    queue_depth = None
    if code is None:
        if isinstance(error, ServerOverloadedError):
            code = "overloaded"
        elif isinstance(error, ServerClosedError):
            code = "server_closed"
        elif isinstance(error, SessionClosedError):
            code = "session_closed"
        elif isinstance(error, (ProtocolError, ValueError, KeyError,
                                TypeError)):
            code = "bad_request"
        else:
            code = "internal"
    if isinstance(error, ServerOverloadedError):
        queue_depth = error.queue_depth
        retry_after = error.retry_after_seconds
        if retry_after is None:
            retry_after = DEFAULT_RETRY_AFTER
    message = str(error) or type(error).__name__
    return {"type": "error",
            "id": None if request_id is None else int(request_id),
            "code": code,
            "message": message,
            "retry_after": None if retry_after is None else float(retry_after),
            "queue_depth": None if queue_depth is None else int(queue_depth)}


def exception_from_error(frame: Mapping[str, Any]) -> BaseException:
    """Rebuild the typed exception an ``error`` frame describes.

    The client SDK raises these, so remote callers catch the *same*
    exception types as in-process callers: ``overloaded`` →
    :class:`~repro.serve.coalescer.ServerOverloadedError` (with
    ``queue_depth`` / ``retry_after_seconds`` restored), ``server_closed``
    → :class:`~repro.serve.coalescer.ServerClosedError`,
    ``session_closed`` → :class:`~repro.api.session.SessionClosedError`,
    ``bad_request`` → :class:`ValueError`, ``unsupported_version`` →
    :class:`ProtocolError`, ``internal`` → :class:`RuntimeError`.
    """
    code = frame.get("code", "internal")
    message = str(frame.get("message", "")) or f"server error ({code})"
    if code == "overloaded":
        retry_after = frame.get("retry_after")
        queue_depth = frame.get("queue_depth")
        return ServerOverloadedError(
            message,
            queue_depth=None if queue_depth is None else int(queue_depth),
            retry_after_seconds=(None if retry_after is None
                                 else float(retry_after)))
    if code == "server_closed":
        return ServerClosedError(message)
    if code == "session_closed":
        return SessionClosedError(message)
    if code == "bad_request":
        return ValueError(message)
    if code == "unsupported_version":
        return ProtocolError(message)
    return RuntimeError(message)
