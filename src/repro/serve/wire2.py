"""Protocol v2: negotiated binary frames with zero-copy array payloads.

The v1 codec of :mod:`repro.serve.protocol` ships every array as base64
inside JSON — fine for ~1 KB ``solve`` frames, 33%+ bloat plus an extra
encode/decode copy per frame for full-image ``process`` requests and
session ``feed`` traffic.  Protocol v2 keeps the *message* layer (the same
request/response dictionaries, the same typed errors, the same outer
4-byte length prefix on the socket) and swaps the *payload* layer: a
binary header and a segment table, with array payloads appended as raw
bytes and decoded with ``np.frombuffer`` — zero copies between the socket
buffer and the numpy array handed to the engine.

**Frame layout** (everything big-endian)::

    offset  size  field
    0       2     magic  b"R2"       (a JSON payload starts with "{", so
    2       1     version (0x02)      one-byte sniffing tells the codecs
    3       1     flags   (0)         apart; see :func:`is_v2_payload`)
    4       4     header_len          length of the JSON header, bytes
    8       2     nseg                number of binary segments
    10      4*n   segment lengths     one u32 per segment
    10+4n   ...   JSON header         the message dict, arrays replaced by
                                      descriptors {"$seg": i, "dtype": ...,
                                      "shape": [...]}
    ...     ...   segments            raw array bytes, concatenated in
                                      segment order

**Codec.**  :func:`encode_message` walks the message tree and lifts every
``numpy.ndarray`` leaf into a segment; :func:`decode_message` puts
zero-copy ``np.frombuffer`` views back in their place (read-only — they
alias the received buffer).  :func:`downgrade_message` converts the same
tree to pure v1 JSON form (base64 arrays) — the transcode path a cluster
router takes when a v2 client's frame must reach a v1-only shard.

**Bytes-through.**  A router forwarding a v2 frame between two v2 peers
never touches the segments: :func:`restamp` re-encodes only the (small)
JSON header to rewrite the correlation id (and optionally the session
id), splicing the original segment bytes back verbatim; :func:`peek`
reads the header alone, so routing decisions (request type, routing key,
session id) cost O(header), not O(pixels).

Array descriptors are validated strictly (:func:`check_descriptor` —
shared with the v1 codec): the dtype must be a plain bool/int/uint/float,
every dimension non-negative, and the declared element count must match
the payload length exactly, so a malformed frame surfaces as a typed
``bad_request`` error instead of a raw numpy exception server-side.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    check_descriptor,
)

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "SEGMENT_KEY",
    "is_v2_payload",
    "encode_message",
    "encode_frame",
    "decode_message",
    "decode_any",
    "peek",
    "restamp",
    "downgrade_message",
]

#: First two payload bytes of every v2 frame.  A v1 payload is a JSON
#: object and starts with ``{`` (0x7b), so the magic is unambiguous.
MAGIC = b"R2"

#: Wire-format generation byte carried after the magic.
WIRE_VERSION = 2

#: JSON-header key marking a lifted array segment.  ``$`` cannot appear
#: as the first character of any v1 codec key, so a descriptor can never
#: be confused with an ordinary payload mapping.
SEGMENT_KEY = "$seg"

_PREFIX_LEN = 10    # magic + version + flags + header_len + nseg


def is_v2_payload(payload: bytes) -> bool:
    """Whether a frame payload is a v2 binary frame (by magic sniff)."""
    return payload[:2] == MAGIC


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #
def _lift(value: Any, segments: list[bytes]) -> Any:
    """Replace ndarray leaves with segment descriptors, collecting bytes."""
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        index = len(segments)
        segments.append(array.tobytes())
        return {SEGMENT_KEY: index,
                "dtype": array.dtype.str,
                "shape": [int(n) for n in array.shape]}
    if isinstance(value, Mapping):
        return {key: _lift(entry, segments) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_lift(entry, segments) for entry in value]
    return value


def _assemble(header: Mapping[str, Any], segments: list[bytes]) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":"),
                              allow_nan=False).encode("utf-8")
    parts = [MAGIC,
             WIRE_VERSION.to_bytes(1, "big"),
             b"\x00",
             len(header_bytes).to_bytes(4, "big"),
             len(segments).to_bytes(2, "big")]
    for segment in segments:
        parts.append(len(segment).to_bytes(4, "big"))
    parts.append(header_bytes)
    parts.extend(segments)
    payload = b"".join(parts)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"v2 frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return payload


def encode_message(message: Mapping[str, Any]) -> bytes:
    """Serialize one message dict (ndarray leaves allowed) into a v2
    frame payload (no outer length prefix)."""
    segments: list[bytes] = []
    header = _lift(dict(message), segments)
    if len(segments) > 0xFFFF:
        raise ProtocolError(
            f"v2 frame would need {len(segments)} segments, beyond the "
            f"65535-segment limit")
    return _assemble(header, segments)


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """A complete length-prefixed v2 frame, ready for the socket."""
    payload = encode_message(message)
    return len(payload).to_bytes(4, "big") + payload


# --------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------- #
def _split(payload: bytes) -> tuple[dict, list[tuple[int, int]], int]:
    """Parse the binary envelope: (header dict, [(offset, length)], nseg).

    Validates the envelope exactly: magic, wire version, and that the
    declared header and segment lengths tile the payload with no slack.
    """
    if len(payload) < _PREFIX_LEN:
        raise ProtocolError(
            f"truncated v2 frame: {len(payload)} bytes is shorter than "
            f"the {_PREFIX_LEN}-byte prefix")
    if payload[:2] != MAGIC:
        raise ProtocolError("not a v2 frame (bad magic)")
    if payload[2] != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported v2 wire generation {payload[2]}")
    header_len = int.from_bytes(payload[4:8], "big")
    nseg = int.from_bytes(payload[8:10], "big")
    table_end = _PREFIX_LEN + 4 * nseg
    if table_end > len(payload):
        raise ProtocolError("truncated v2 frame: segment table cut short")
    lengths = [int.from_bytes(payload[_PREFIX_LEN + 4 * i:
                                      _PREFIX_LEN + 4 * i + 4], "big")
               for i in range(nseg)]
    header_end = table_end + header_len
    if header_end > len(payload):
        raise ProtocolError("truncated v2 frame: JSON header cut short")
    spans: list[tuple[int, int]] = []
    offset = header_end
    for length in lengths:
        spans.append((offset, length))
        offset += length
    if offset != len(payload):
        raise ProtocolError(
            f"malformed v2 frame: declared sections cover {offset} bytes "
            f"of a {len(payload)}-byte payload")
    try:
        header = json.loads(payload[table_end:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable v2 frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"v2 frame header must be a JSON object, got "
            f"{type(header).__name__}")
    return header, spans, nseg


def _materialize(value: Any, view: memoryview,
                 spans: list[tuple[int, int]]) -> Any:
    if isinstance(value, dict):
        if SEGMENT_KEY in value:
            try:
                index = int(value[SEGMENT_KEY])
                span = spans[index] if index >= 0 else None
            except (TypeError, ValueError, IndexError):
                span = None
            if span is None:
                raise ProtocolError(
                    f"malformed array payload: segment index "
                    f"{value.get(SEGMENT_KEY)!r} out of range")
            offset, length = span
            dtype, shape = check_descriptor(value.get("dtype"),
                                            value.get("shape"), length)
            # the zero-copy heart of v2: the array is a read-only view
            # straight over the received payload bytes
            array = np.frombuffer(view[offset:offset + length], dtype=dtype)
            return array.reshape(shape)
        return {key: _materialize(entry, view, spans)
                for key, entry in value.items()}
    if isinstance(value, list):
        return [_materialize(entry, view, spans) for entry in value]
    return value


def decode_message(payload: bytes) -> dict:
    """Parse a v2 frame payload into its message dict.

    Array descriptors come back as **read-only zero-copy** ``np.ndarray``
    views over ``payload`` — the v1-compatible ``*_from_wire`` decoders of
    :mod:`repro.serve.protocol` accept them in place of base64 mappings.
    """
    header, spans, _ = _split(payload)
    return _materialize(header, memoryview(payload), spans)


def decode_any(payload: bytes) -> tuple[int, dict]:
    """Sniff and decode either codec: ``(frame_version, message)``."""
    if is_v2_payload(payload):
        return 2, decode_message(payload)
    # deferred import dance is unnecessary: protocol has no import cycle
    from repro.serve import protocol
    return 1, protocol.decode_frame(payload)


def peek(payload: bytes) -> dict:
    """The JSON header of a v2 frame, descriptors left as plain dicts.

    O(header) — segments are neither validated nor touched.  The router
    uses this to read ``type`` / ``id`` / ``routing`` / ``session_id``
    without paying for pixels.
    """
    header, _, _ = _split(payload)
    return header


def restamp(payload: bytes, request_id: int | None, *,
            session_id: str | None = None) -> bytes:
    """Rewrite the correlation id (and optionally the session id) of a v2
    frame **without re-encoding its segments** — the router's
    bytes-through fast path.

    Only the JSON header is decoded and re-serialized; the segment bytes
    are spliced back verbatim, so a multi-megabyte ``process`` frame is
    restamped in O(header) time and the pixels cross the router untouched.
    """
    header, spans, _ = _split(payload)
    header["id"] = request_id
    if session_id is not None:
        header["session_id"] = str(session_id)
    if spans:
        first_offset = spans[0][0]
        segment_bytes = payload[first_offset:]
        segments_sizes = [length for _, length in spans]
    else:
        segment_bytes = b""
        segments_sizes = []
    header_bytes = json.dumps(header, separators=(",", ":"),
                              allow_nan=False).encode("utf-8")
    parts = [MAGIC,
             WIRE_VERSION.to_bytes(1, "big"),
             b"\x00",
             len(header_bytes).to_bytes(4, "big"),
             len(segments_sizes).to_bytes(2, "big")]
    for length in segments_sizes:
        parts.append(length.to_bytes(4, "big"))
    parts.append(header_bytes)
    parts.append(segment_bytes)
    return b"".join(parts)


def downgrade_message(message: Mapping[str, Any]) -> dict:
    """Convert a decoded message (ndarray leaves) to pure v1 JSON form.

    The transcode fallback of the cluster router: a v2 client's frame
    bound for a v1-only shard has its arrays re-encoded as the base64
    mappings of :func:`repro.serve.protocol.array_to_wire`.
    """
    from repro.serve import protocol

    def walk(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return protocol.array_to_wire(value)
        if isinstance(value, Mapping):
            return {key: walk(entry) for key, entry in value.items()}
        if isinstance(value, (list, tuple)):
            return [walk(entry) for entry in value]
        return value

    return walk(dict(message))
