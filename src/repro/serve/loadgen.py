"""Multi-client load generator for :class:`~repro.serve.server.Server`.

Simulates the workload the ROADMAP targets: many concurrent clients
requesting backlight compensation for content with heavily repeated
histograms (the same photos, consecutive frames of mostly-still scenes).
Two client shapes:

* **one-shot** — :func:`run_load` spawns ``clients`` threads that start
  together behind a barrier and hammer one shared server with independent
  requests; the returned :class:`LoadReport` carries wall time, throughput,
  latency percentiles and the server's own statistics snapshot.
* **video** — :func:`run_stream_load` gives every client a *clip* and a
  long-lived stream session (:meth:`Server.open_session
  <repro.serve.server.Server.open_session>`): frames are pushed one at a
  time, each awaited before the next, the way a decoder drives a display.
  The returned :class:`StreamLoadReport` adds per-session applied-backlight
  traces so callers can verify the flicker bound end to end.

Both generators are duck-typed over the server surface they drive
(``submit(image, budget, algorithm=...) -> Future``, ``open_session(...)``,
``stats()``), so they also run against a **remote** server: pass a
:class:`repro.client.RemoteServerAdapter` (one TCP connection per client
thread) instead of a :class:`~repro.serve.server.Server` — which is exactly
what ``repro loadtest --connect HOST:PORT`` does against a ``repro serve
--port`` process.

``repro loadtest`` prints either report (optionally timing the serial
baseline for a speedup figure) and can emit it as JSON for the CI perf
trajectory; ``examples/serving_demo.py``, ``examples/stream_sessions.py``
and ``examples/remote_client.py`` walk through the same flows narratively.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.reporting import Table
from repro.api.types import CompensationResult, StreamFrameResult
from repro.imaging.image import Image
from repro.serve.server import Server
from repro.serve.stats import ServerStats, json_ready, percentile

__all__ = [
    "LoadReport",
    "StreamLoadReport",
    "run_load",
    "run_stream_load",
    "report_table",
    "stream_report_table",
    "time_serial_baseline",
    "time_serial_stream_baseline",
]


def _algorithm_for(algorithm, index: int):
    """Resolve the per-request algorithm of a (possibly mixed) workload.

    A list/tuple of algorithms is cycled by workload index — the mixed
    display-class scenario where CCFL and OLED requests interleave on one
    server; anything else (a name, an instance, ``None``) is shared by
    every request.  Strings are *not* sequences here: ``"hebs"`` means one
    algorithm, not five.
    """
    if isinstance(algorithm, (list, tuple)):
        if not algorithm:
            raise ValueError("an algorithm sequence must not be empty")
        return algorithm[index % len(algorithm)]
    return algorithm


def time_serial_baseline(engine, images: Sequence[Image],
                         max_distortion: float, algorithm=None):
    """Time the pre-serving calling convention on ``engine``: one
    independent ``process`` call per request, nothing coalesced.

    Pass a cache-disabled engine (``Engine(..., cache_size=0)``) for the
    truly independent baseline the serving speedup is quoted against.
    ``algorithm`` may be a sequence, cycled by request index like
    :func:`run_load` does.  Returns ``(seconds, results)`` so callers can
    also verify the served outputs bitwise against the serial ones.
    """
    start = time.perf_counter()
    results = [engine.process(image, max_distortion,
                              algorithm=_algorithm_for(algorithm, index))
               for index, image in enumerate(images)]
    return time.perf_counter() - start, results


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`run_load` session.

    ``latencies`` are per-request submit-to-result times (seconds), in
    completion order per client; ``results`` maps workload index to the
    compensation result so callers can verify outputs.  ``errors`` counts
    requests that raised instead of resolving.
    """

    clients: int
    requests: int
    errors: int
    elapsed_seconds: float
    latencies: Sequence[float]
    results: Mapping[int, CompensationResult]
    stats: ServerStats

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall time."""
        completed = self.requests - self.errors
        return completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def latency_p95(self) -> float:
        return percentile(self.latencies, 95)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latencies, 99)

    def as_dict(self) -> Mapping[str, float | int]:
        """A flat, JSON-ready view (latencies in ms) — guaranteed to
        ``json.dumps`` round-trip (see :func:`repro.serve.stats.json_ready`)."""
        return json_ready({
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "latency_p50_ms": round(1e3 * self.latency_p50, 3),
            "latency_p95_ms": round(1e3 * self.latency_p95, 3),
            "latency_p99_ms": round(1e3 * self.latency_p99, 3),
            **{f"server_{key}": value
               for key, value in self.stats.as_dict().items()},
        })


def run_load(server: Server, images: Sequence[Image],
             max_distortion: float = 10.0, *, clients: int = 8,
             algorithm=None, result_timeout: float = 60.0) -> LoadReport:
    """Hammer ``server`` with ``images`` from ``clients`` concurrent threads.

    The workload is dealt round-robin (client ``i`` takes images ``i``,
    ``i+clients``, ...), all clients start together behind a barrier, and
    each submits its share as fast as results come back.  Per-request
    latencies and results (indexed by workload position) are collected for
    verification against a serial reference.

    ``algorithm`` may be a single name/instance shared by every request,
    or a **sequence** cycled by workload index — the mixed display-class
    scenario: ``algorithm=["hebs", "oled-darken"]`` interleaves backlit
    and emissive requests through one server, cache and all.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if not images:
        raise ValueError("the workload must contain at least one image")
    barrier = threading.Barrier(clients + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    results: dict[int, CompensationResult] = {}
    errors = [0]

    def client(offset: int) -> None:
        barrier.wait()
        for index in range(offset, len(images), clients):
            started = time.perf_counter()
            try:
                future = server.submit(images[index], max_distortion,
                                       algorithm=_algorithm_for(algorithm,
                                                                index))
                result = future.result(timeout=result_timeout)
            except Exception:   # noqa: BLE001 - tallied, session continues
                with lock:
                    errors[0] += 1
                continue
            latency = time.perf_counter() - started
            with lock:
                latencies.append(latency)
                results[index] = result

    threads = [threading.Thread(target=client, args=(offset,), daemon=True,
                                name=f"repro-loadgen-{offset}")
               for offset in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return LoadReport(
        clients=clients,
        requests=len(images),
        errors=errors[0],
        elapsed_seconds=elapsed,
        latencies=tuple(latencies),
        results=dict(results),
        stats=server.stats(),
    )


def _session_options_for(session_options, index: int) -> dict:
    """Resolve per-session options: a mapping is shared verbatim, a callable
    is invoked with the session index so every session can get *fresh*
    mutable state (a :class:`~repro.core.temporal.BacklightSmoother` shared
    across sessions would leak one stream's temporal state into the next)."""
    if callable(session_options):
        return dict(session_options(index) or {})
    return dict(session_options or {})


def time_serial_stream_baseline(engine, clips: Sequence[Sequence[Image]],
                                max_distortion: float, algorithm=None,
                                session_options=None):
    """Time the pre-serving video convention: one engine session per clip,
    run to completion before the next clip starts, nothing coalesced.

    Pass a cache-disabled engine (``Engine(..., cache_size=0)``) for the
    truly independent baseline.  ``session_options`` is a mapping forwarded
    to every ``open_session`` call, or a callable ``index -> mapping`` when
    sessions need fresh per-session state (smoothers are mutable!).
    Returns ``(seconds, outcomes)`` where ``outcomes[i]`` is clip ``i``'s
    list of :class:`~repro.api.types.StreamFrameResult`, so callers can
    verify the served outputs against the serial ones.
    """
    outcomes: list[list[StreamFrameResult]] = []
    start = time.perf_counter()
    for index, clip in enumerate(clips):
        options = _session_options_for(session_options, index)
        with engine.open_session(
                max_distortion, algorithm=_algorithm_for(algorithm, index),
                **options) as session:
            outcomes.append([session.submit(frame) for frame in clip])
    return time.perf_counter() - start, outcomes


@dataclass(frozen=True)
class StreamLoadReport:
    """Outcome of one :func:`run_stream_load` session.

    ``latencies`` are per-frame submit-to-result times (seconds) across all
    sessions; ``traces`` maps each session's id to its applied-backlight
    factor per frame (display order), the series the flicker bound is
    verified on; ``outcomes`` maps session id to the full per-frame results.
    ``errors`` counts frames that raised instead of resolving.
    """

    sessions: int
    frames: int
    errors: int
    elapsed_seconds: float
    latencies: Sequence[float]
    traces: Mapping[str, Sequence[float]]
    outcomes: Mapping[str, Sequence[StreamFrameResult]]
    stats: ServerStats

    @property
    def throughput(self) -> float:
        """Completed frames per second of wall time."""
        completed = self.frames - self.errors
        return completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def latency_p95(self) -> float:
        return percentile(self.latencies, 95)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latencies, 99)

    def worst_step(self) -> float:
        """Largest frame-to-frame applied-backlight change of any session."""
        worst = 0.0
        for trace in self.traces.values():
            for previous, current in zip(trace, trace[1:]):
                worst = max(worst, abs(current - previous))
        return worst

    def session_p95(self) -> Mapping[str, float]:
        """Per-session p95 frame latency (seconds), from the server stats."""
        return {sid: entry.latency_p95
                for sid, entry in self.stats.sessions.items()
                if sid in self.traces}

    def as_dict(self) -> Mapping[str, float | int]:
        """A flat, JSON-ready view (latencies in ms) — guaranteed to
        ``json.dumps`` round-trip even though the backlight trace values
        are numpy scalars (see :func:`repro.serve.stats.json_ready`)."""
        return json_ready({
            "sessions": self.sessions,
            "frames": self.frames,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_fps": round(self.throughput, 3),
            "latency_p50_ms": round(1e3 * self.latency_p50, 3),
            "latency_p95_ms": round(1e3 * self.latency_p95, 3),
            "latency_p99_ms": round(1e3 * self.latency_p99, 3),
            "worst_backlight_step": round(self.worst_step(), 6),
            **{f"server_{key}": value
               for key, value in self.stats.as_dict().items()},
        })


def run_stream_load(server: Server, clips: Sequence[Sequence[Image]],
                    max_distortion: float = 10.0, *, algorithm=None,
                    result_timeout: float = 60.0,
                    session_options=None) -> StreamLoadReport:
    """Drive ``server`` with one video client per clip, concurrently.

    Every client opens a stream session, pushes its clip frame by frame —
    awaiting each :class:`~repro.api.types.StreamFrameResult` before
    submitting the next, the way a real decoder paces a display — and
    closes the session.  All clients start together behind a barrier.
    ``session_options`` is a mapping forwarded to every
    :meth:`~repro.serve.server.Server.open_session` call, or a callable
    ``index -> mapping`` when sessions need fresh per-session state (a
    shared mutable ``smoother=`` would leak temporal state across
    sessions).  ``algorithm`` may be a sequence cycled by *session* index —
    the mixed display-class scenario: half the streams drive a backlit
    panel, half an emissive one, through one server.
    """
    if not clips:
        raise ValueError("the workload must contain at least one clip")
    if any(not clip for clip in clips):
        raise ValueError("every clip must contain at least one frame")
    barrier = threading.Barrier(len(clips) + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    traces: dict[str, list[float]] = {}
    outcomes: dict[str, list[StreamFrameResult]] = {}
    errors = [0]

    def client(index: int, clip: Sequence[Image]) -> None:
        try:
            session = server.open_session(
                max_distortion, algorithm=_algorithm_for(algorithm, index),
                **_session_options_for(session_options, index))
        except Exception:   # noqa: BLE001 - e.g. the session cap
            # the clip is lost, but the barrier must not strand the others
            with lock:
                errors[0] += len(clip)
            barrier.wait()
            return
        trace: list[float] = []
        results: list[StreamFrameResult] = []
        barrier.wait()
        try:
            for frame in clip:
                started = time.perf_counter()
                try:
                    outcome = session.submit(frame).result(
                        timeout=result_timeout)
                except Exception:   # noqa: BLE001 - tallied, clip continues
                    with lock:
                        errors[0] += 1
                    continue
                latency = time.perf_counter() - started
                trace.append(outcome.applied_backlight)
                results.append(outcome)
                with lock:
                    latencies.append(latency)
        finally:
            session.close()
            with lock:
                traces[session.id] = trace
                outcomes[session.id] = results

    threads = [threading.Thread(target=client, args=(index, clip),
                                daemon=True,
                                name=f"repro-streamgen-{index}")
               for index, clip in enumerate(clips)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return StreamLoadReport(
        sessions=len(clips),
        frames=sum(len(clip) for clip in clips),
        errors=errors[0],
        elapsed_seconds=elapsed,
        latencies=tuple(latencies),
        traces={sid: tuple(trace) for sid, trace in traces.items()},
        outcomes={sid: tuple(results) for sid, results in outcomes.items()},
        stats=server.stats(),
    )


def report_table(report: LoadReport,
                 serial_seconds: float | None = None) -> Table:
    """Render a :class:`LoadReport` as the CLI's quantity/value table.

    ``serial_seconds`` (wall time of the equivalent serial
    ``process``-per-request loop) adds the headline speedup row.
    """
    stats = report.stats
    rows = [
        {"quantity": "clients", "value": report.clients},
        {"quantity": "requests", "value": report.requests},
        {"quantity": "errors", "value": report.errors},
        {"quantity": "wall time (s)", "value": report.elapsed_seconds},
        {"quantity": "throughput (req/s)", "value": report.throughput},
        {"quantity": "latency p50 (ms)", "value": 1e3 * report.latency_p50},
        {"quantity": "latency p95 (ms)", "value": 1e3 * report.latency_p95},
        {"quantity": "latency p99 (ms)", "value": 1e3 * report.latency_p99},
        {"quantity": "engine batches", "value": stats.batches},
        {"quantity": "mean batch size", "value": stats.mean_batch_size},
        {"quantity": "cache hit rate %", "value": 100.0 * stats.cache.hit_rate},
        {"quantity": "cache reuse rate %",
         "value": 100.0 * stats.cache.reuse_rate},
    ]
    if serial_seconds is not None:
        rows.append({"quantity": "serial baseline (s)",
                     "value": serial_seconds})
        rows.append({"quantity": "speedup vs serial",
                     "value": (serial_seconds / report.elapsed_seconds
                               if report.elapsed_seconds else float("inf"))})
    return Table(
        title=(f"Load test: {report.requests} requests from "
               f"{report.clients} clients"),
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(rows)


def stream_report_table(report: StreamLoadReport,
                        serial_seconds: float | None = None) -> Table:
    """Render a :class:`StreamLoadReport` as the CLI's quantity/value table.

    ``serial_seconds`` (wall time of the equivalent serial
    session-per-clip loop, see :func:`time_serial_stream_baseline`) adds
    the headline speedup row.
    """
    stats = report.stats
    rows = [
        {"quantity": "sessions", "value": report.sessions},
        {"quantity": "frames", "value": report.frames},
        {"quantity": "errors", "value": report.errors},
        {"quantity": "wall time (s)", "value": report.elapsed_seconds},
        {"quantity": "throughput (frames/s)", "value": report.throughput},
        {"quantity": "frame latency p50 (ms)",
         "value": 1e3 * report.latency_p50},
        {"quantity": "frame latency p95 (ms)",
         "value": 1e3 * report.latency_p95},
        {"quantity": "frame latency p99 (ms)",
         "value": 1e3 * report.latency_p99},
        {"quantity": "worst backlight step", "value": report.worst_step()},
        {"quantity": "engine batches", "value": stats.batches},
        {"quantity": "mean batch size", "value": stats.mean_batch_size},
        {"quantity": "cache hit rate %", "value": 100.0 * stats.cache.hit_rate},
        {"quantity": "cache reuse rate %",
         "value": 100.0 * stats.cache.reuse_rate},
    ]
    if serial_seconds is not None:
        rows.append({"quantity": "serial baseline (s)",
                     "value": serial_seconds})
        rows.append({"quantity": "speedup vs serial",
                     "value": (serial_seconds / report.elapsed_seconds
                               if report.elapsed_seconds else float("inf"))})
    return Table(
        title=(f"Stream load test: {report.frames} frames from "
               f"{report.sessions} concurrent sessions"),
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(rows)
