"""Multi-client load generator for :class:`~repro.serve.server.Server`.

Simulates the workload the ROADMAP targets: many concurrent clients
requesting backlight compensation for content with heavily repeated
histograms (the same photos, consecutive frames of mostly-still scenes).
:func:`run_load` spawns ``clients`` threads that start together behind a
barrier and hammer one shared server; the returned :class:`LoadReport`
carries wall time, throughput, latency percentiles and the server's own
statistics snapshot.

``repro loadtest`` prints the report (optionally timing the serial
``process``-per-request baseline for a speedup figure) and can emit it as
JSON for the CI perf trajectory; ``examples/serving_demo.py`` walks through
the same flow narratively.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.reporting import Table
from repro.api.types import CompensationResult
from repro.imaging.image import Image
from repro.serve.server import Server
from repro.serve.stats import ServerStats, percentile

__all__ = ["LoadReport", "run_load", "report_table", "time_serial_baseline"]


def time_serial_baseline(engine, images: Sequence[Image],
                         max_distortion: float, algorithm=None):
    """Time the pre-serving calling convention on ``engine``: one
    independent ``process`` call per request, nothing coalesced.

    Pass a cache-disabled engine (``Engine(..., cache_size=0)``) for the
    truly independent baseline the serving speedup is quoted against.
    Returns ``(seconds, results)`` so callers can also verify the served
    outputs bitwise against the serial ones.
    """
    start = time.perf_counter()
    results = [engine.process(image, max_distortion, algorithm=algorithm)
               for image in images]
    return time.perf_counter() - start, results


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`run_load` session.

    ``latencies`` are per-request submit-to-result times (seconds), in
    completion order per client; ``results`` maps workload index to the
    compensation result so callers can verify outputs.  ``errors`` counts
    requests that raised instead of resolving.
    """

    clients: int
    requests: int
    errors: int
    elapsed_seconds: float
    latencies: Sequence[float]
    results: Mapping[int, CompensationResult]
    stats: ServerStats

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall time."""
        completed = self.requests - self.errors
        return completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def latency_p95(self) -> float:
        return percentile(self.latencies, 95)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latencies, 99)

    def as_dict(self) -> Mapping[str, float | int]:
        """A flat, JSON-ready view (latencies in ms)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "latency_p50_ms": round(1e3 * self.latency_p50, 3),
            "latency_p95_ms": round(1e3 * self.latency_p95, 3),
            "latency_p99_ms": round(1e3 * self.latency_p99, 3),
            **{f"server_{key}": value
               for key, value in self.stats.as_dict().items()},
        }


def run_load(server: Server, images: Sequence[Image],
             max_distortion: float = 10.0, *, clients: int = 8,
             algorithm=None, result_timeout: float = 60.0) -> LoadReport:
    """Hammer ``server`` with ``images`` from ``clients`` concurrent threads.

    The workload is dealt round-robin (client ``i`` takes images ``i``,
    ``i+clients``, ...), all clients start together behind a barrier, and
    each submits its share as fast as results come back.  Per-request
    latencies and results (indexed by workload position) are collected for
    verification against a serial reference.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if not images:
        raise ValueError("the workload must contain at least one image")
    barrier = threading.Barrier(clients + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    results: dict[int, CompensationResult] = {}
    errors = [0]

    def client(offset: int) -> None:
        barrier.wait()
        for index in range(offset, len(images), clients):
            started = time.perf_counter()
            try:
                future = server.submit(images[index], max_distortion,
                                       algorithm=algorithm)
                result = future.result(timeout=result_timeout)
            except Exception:   # noqa: BLE001 - tallied, session continues
                with lock:
                    errors[0] += 1
                continue
            latency = time.perf_counter() - started
            with lock:
                latencies.append(latency)
                results[index] = result

    threads = [threading.Thread(target=client, args=(offset,), daemon=True,
                                name=f"repro-loadgen-{offset}")
               for offset in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return LoadReport(
        clients=clients,
        requests=len(images),
        errors=errors[0],
        elapsed_seconds=elapsed,
        latencies=tuple(latencies),
        results=dict(results),
        stats=server.stats(),
    )


def report_table(report: LoadReport,
                 serial_seconds: float | None = None) -> Table:
    """Render a :class:`LoadReport` as the CLI's quantity/value table.

    ``serial_seconds`` (wall time of the equivalent serial
    ``process``-per-request loop) adds the headline speedup row.
    """
    stats = report.stats
    rows = [
        {"quantity": "clients", "value": report.clients},
        {"quantity": "requests", "value": report.requests},
        {"quantity": "errors", "value": report.errors},
        {"quantity": "wall time (s)", "value": report.elapsed_seconds},
        {"quantity": "throughput (req/s)", "value": report.throughput},
        {"quantity": "latency p50 (ms)", "value": 1e3 * report.latency_p50},
        {"quantity": "latency p95 (ms)", "value": 1e3 * report.latency_p95},
        {"quantity": "latency p99 (ms)", "value": 1e3 * report.latency_p99},
        {"quantity": "engine batches", "value": stats.batches},
        {"quantity": "mean batch size", "value": stats.mean_batch_size},
        {"quantity": "cache hit rate %", "value": 100.0 * stats.cache.hit_rate},
        {"quantity": "cache reuse rate %",
         "value": 100.0 * stats.cache.reuse_rate},
    ]
    if serial_seconds is not None:
        rows.append({"quantity": "serial baseline (s)",
                     "value": serial_seconds})
        rows.append({"quantity": "speedup vs serial",
                     "value": (serial_seconds / report.elapsed_seconds
                               if report.elapsed_seconds else float("inf"))})
    return Table(
        title=(f"Load test: {report.requests} requests from "
               f"{report.clients} clients"),
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(rows)
