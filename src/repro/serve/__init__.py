"""Concurrent serving layer over the unified :mod:`repro.api` engine.

The paper's real-time flow (Fig. 4) solves once per histogram and replays
cheap per-pixel LUTs — exactly the shape that parallelizes.  This package
turns the (thread-safe) :class:`~repro.api.engine.Engine` into a service:

:mod:`repro.serve.coalescer`
    :class:`RequestCoalescer` — micro-batching: concurrent ``submit()``
    calls gather into one ``process_batch`` per tick, with a bounded queue
    and submit timeouts for backpressure
    (:class:`ServerOverloadedError` / :class:`ServerClosedError`).
:mod:`repro.serve.server`
    :class:`Server` — the worker-pool front end with corpus warm-up and a
    live statistics snapshot.
:mod:`repro.serve.stats`
    :class:`StatsRecorder` / :class:`ServerStats` — throughput, latency
    percentiles (p50/p95/p99), batching shape and cache efficiency.
:mod:`repro.serve.loadgen`
    :func:`run_load` / :class:`LoadReport` — the multi-client load
    generator behind ``repro loadtest`` and ``examples/serving_demo.py``.

Quickstart::

    from repro.serve import Server

    with Server(workers=4) as server:
        server.warmup()
        result = server.process(image, max_distortion=10.0)
        print(server.stats().as_dict())
"""

from repro.serve.coalescer import (
    RequestCoalescer,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.loadgen import (
    LoadReport,
    report_table,
    run_load,
    time_serial_baseline,
)
from repro.serve.server import Server
from repro.serve.stats import ServerStats, StatsRecorder, percentile

__all__ = [
    "Server",
    "RequestCoalescer",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerStats",
    "StatsRecorder",
    "LoadReport",
    "run_load",
    "report_table",
    "time_serial_baseline",
    "percentile",
]
