"""Concurrent serving layer over the unified :mod:`repro.api` engine.

The paper's real-time flow (Fig. 4) solves once per histogram and replays
cheap per-pixel LUTs — exactly the shape that parallelizes.  This package
turns the (thread-safe) :class:`~repro.api.engine.Engine` into a service:

:mod:`repro.serve.coalescer`
    :class:`RequestCoalescer` — micro-batching: concurrent ``submit()``
    calls (and stream-session frames, via ``submit_frame``) gather into one
    ``process_batch`` per tick, with a bounded queue and submit timeouts
    for backpressure
    (:class:`ServerOverloadedError` / :class:`ServerClosedError`).
:mod:`repro.serve.server`
    :class:`Server` — the worker-pool front end with corpus warm-up and a
    live statistics snapshot — and its stream-session surface:
    :class:`SessionManager` / :class:`ServerSession` multiplex push-based
    :class:`~repro.api.session.StreamSession` streams (see
    :meth:`repro.api.engine.Engine.open_session`) over the shared
    micro-batches, with per-session frame ordering, an idle-TTL sweep and
    a session cap.
:mod:`repro.serve.stats`
    :class:`StatsRecorder` / :class:`ServerStats` — throughput, latency
    percentiles (p50/p95/p99), batching shape, cache efficiency and
    per-session frame stats (:class:`SessionFrameStats`).
:mod:`repro.serve.loadgen`
    :func:`run_load` / :class:`LoadReport` — the multi-client one-shot load
    generator — and the video-client mode: :func:`run_stream_load` /
    :class:`StreamLoadReport` drive N concurrent sessions frame by frame.
    Both behind ``repro loadtest`` and the examples.  Both are duck-typed
    over the server surface, so ``repro loadtest --connect HOST:PORT``
    points them at a remote server through
    :class:`repro.client.RemoteServerAdapter`.
:mod:`repro.serve.protocol`
    The wire codec and message set of the network serving API: versioned
    length-prefixed JSON frames, bit-exact ``to_wire``/``from_wire`` for
    histograms, images, transforms, solutions and results, and the typed
    error frames that carry backpressure hints across the network hop.
:mod:`repro.serve.wire2`
    The negotiated protocol-v2 binary frame format: the same messages
    with raw zero-copy array segments (``np.frombuffer`` decode), a
    peek/restamp surface for the cluster router's bytes-through fast
    path, and a transcode fallback to v1 JSON.
:mod:`repro.serve.shm`
    The same-host shared-memory lane of protocol v2: nonce-proofed
    negotiation, image payloads by block reference, leak-proof
    unlink-on-disconnect.
:mod:`repro.serve.net`
    :class:`NetworkServer` — the asyncio TCP front end multiplexing many
    connections onto the shared micro-batch ticks (``repro serve --host
    --port``); :mod:`repro.client` is the SDK on the other end.

Quickstart::

    from repro.serve import Server

    with Server(workers=4) as server:
        server.warmup()
        result = server.process(image, max_distortion=10.0)

        with server.open_session(max_distortion=10.0) as session:
            outcome = session.submit(frame).result()
        print(server.stats().as_dict())
"""

from repro.serve.coalescer import (
    RequestCoalescer,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.loadgen import (
    LoadReport,
    StreamLoadReport,
    report_table,
    run_load,
    run_stream_load,
    stream_report_table,
    time_serial_baseline,
    time_serial_stream_baseline,
)
from repro.serve.net import DEFAULT_PORT, NetworkServer
from repro.serve.protocol import PROTOCOL_V1, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import Server, ServerSession, SessionManager
from repro.serve.stats import (
    ServerStats,
    SessionFrameStats,
    StatsRecorder,
    json_ready,
    percentile,
)

__all__ = [
    "NetworkServer",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "PROTOCOL_V1",
    "ProtocolError",
    "json_ready",
    "Server",
    "ServerSession",
    "SessionManager",
    "RequestCoalescer",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerStats",
    "SessionFrameStats",
    "StatsRecorder",
    "LoadReport",
    "StreamLoadReport",
    "run_load",
    "run_stream_load",
    "report_table",
    "stream_report_table",
    "time_serial_baseline",
    "time_serial_stream_baseline",
    "percentile",
]
