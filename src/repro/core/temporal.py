"""Temporal (video) backlight control on top of the per-frame HEBS pipeline.

The paper evaluates stills; its predecessor DLS [4] targets video, where two
extra concerns appear:

* **Flicker.**  The backlight factor must not jump between consecutive
  frames; abrupt luminance steps are far more visible than a static
  luminance error.  :class:`BacklightSmoother` applies exponential smoothing
  plus a slew-rate limit to the per-frame target factors.
* **Per-frame cost.**  Recomputing the full histogram for every frame is
  wasteful when consecutive frames are similar.  :class:`RollingHistogram`
  maintains an exponentially weighted histogram that can be updated cheaply
  and re-used until a scene change; :class:`SceneChangeDetector` flags when
  the histogram moved enough that the transformation must be re-derived.

:class:`TemporalBacklightController` glues the three pieces to a
:class:`~repro.core.pipeline.HEBS` pipeline: feed it frames, get back
per-frame results whose backlight factors are smooth and whose pixel
transformations are only re-derived when the content actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import Histogram
from repro.core.pipeline import HEBS, HEBSResult
from repro.imaging.image import Image

__all__ = [
    "BacklightSmoother",
    "RollingHistogram",
    "SceneChangeDetector",
    "TemporalBacklightController",
    "TemporalFrameResult",
]


@dataclass
class BacklightSmoother:
    """Exponential smoothing + slew-rate limiting of the backlight factor.

    Parameters
    ----------
    smoothing:
        Weight of the new target in the exponential update (1 = no
        smoothing, small values react slowly).
    max_step:
        Largest allowed change of the backlight factor between consecutive
        frames (the flicker limit).
    initial:
        Backlight factor before the first frame (1.0 = full backlight).
    """

    smoothing: float = 0.5
    max_step: float = 0.05
    initial: float = 1.0
    _current: float = field(init=False, repr=False, default=1.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 < self.max_step <= 1.0:
            raise ValueError("max_step must be in (0, 1]")
        if not 0.0 < self.initial <= 1.0:
            raise ValueError("initial must be in (0, 1]")
        self._current = float(self.initial)

    @property
    def current(self) -> float:
        """The backlight factor currently applied."""
        return self._current

    def update(self, target: float) -> float:
        """Advance one frame towards ``target`` and return the applied factor."""
        if not 0.0 < target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {target}")
        blended = (1.0 - self.smoothing) * self._current + self.smoothing * target
        limited = float(np.clip(blended, self._current - self.max_step,
                                self._current + self.max_step))
        self._current = float(np.clip(limited, 0.0, 1.0))
        return self._current

    def reset(self, value: float | None = None) -> None:
        """Jump immediately to ``value`` (or the initial factor)."""
        self._current = float(self.initial if value is None else value)

    def reset_within_limit(self, value: float,
                           reference: float | None = None) -> bool:
        """A guarded :meth:`reset`: jump to ``value`` only when it honors
        the flicker bound — within ``max_step`` of ``reference`` (the
        current factor when omitted).  Returns whether the jump was taken;
        on rejection the state is unchanged."""
        anchor = self._current if reference is None else float(reference)
        if abs(value - anchor) > self.max_step + 1e-12:
            return False
        self._current = float(value)
        return True


@dataclass
class RollingHistogram:
    """Exponentially weighted histogram over a frame stream.

    ``update`` folds a new frame's histogram into the running estimate with
    weight ``alpha``; the running estimate is what the GHE transformation is
    derived from, so a single noisy frame cannot yank the transfer function
    around.
    """

    levels: int = 256
    alpha: float = 0.3
    _weights: np.ndarray | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError("levels must be at least 2")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    @property
    def is_empty(self) -> bool:
        """Whether no frame has been folded in yet."""
        return self._weights is None

    def update(self, frame: Image) -> Histogram:
        """Fold ``frame`` into the rolling estimate and return it."""
        histogram = Histogram.of_image(frame)
        if histogram.levels != self.levels:
            raise ValueError(
                f"frame has {histogram.levels} levels, expected {self.levels}")
        fresh = histogram.counts.astype(np.float64)
        if self._weights is None:
            self._weights = fresh
        else:
            self._weights = (1.0 - self.alpha) * self._weights + self.alpha * fresh
        return self.current()

    def current(self) -> Histogram:
        """The rolling histogram as an integer-count :class:`Histogram`."""
        if self._weights is None:
            raise RuntimeError("no frame has been observed yet")
        counts = np.rint(self._weights).astype(np.int64)
        if counts.sum() == 0:
            counts[int(np.argmax(self._weights))] = 1
        return Histogram(counts)

    def reset(self) -> None:
        """Forget all history."""
        self._weights = None


@dataclass
class SceneChangeDetector:
    """Flags frames whose histogram moved far from the rolling estimate.

    The distance is the normalized L1 histogram distance (0..1); a scene
    change resets the rolling histogram and forces a re-derivation of the
    pixel transformation.
    """

    threshold: float = 0.25
    _previous: Histogram | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def observe(self, frame: Image) -> bool:
        """Return True when ``frame`` starts a new scene."""
        histogram = Histogram.of_image(frame)
        if self._previous is None:
            self._previous = histogram
            return True
        distance = histogram.l1_distance(self._previous)
        self._previous = histogram
        return distance > self.threshold

    def reset(self) -> None:
        """Forget the previous frame."""
        self._previous = None


@dataclass(frozen=True)
class TemporalFrameResult:
    """Per-frame outcome of the temporal controller.

    Attributes
    ----------
    result:
        The HEBS result actually applied to the frame (derived at the
        smoothed backlight factor's dynamic range).
    requested_backlight:
        The backlight factor the per-frame policy asked for before smoothing.
    applied_backlight:
        The smoothed, slew-limited factor actually programmed.
    scene_change:
        Whether this frame was detected as a scene change (transformation
        re-derived from scratch).
    """

    result: HEBSResult
    requested_backlight: float
    applied_backlight: float
    scene_change: bool


class TemporalBacklightController:
    """Drive a HEBS pipeline over a frame stream without flicker.

    Parameters
    ----------
    pipeline:
        The per-frame HEBS pipeline.
    max_distortion:
        Distortion budget applied to every frame.
    smoother:
        Backlight smoothing policy (defaults to 0.5 smoothing, 0.05 max step).
    scene_detector:
        Scene-change detector (defaults to an L1 threshold of 0.25).
    adaptive:
        Whether the per-frame range selection bisects on the measured
        distortion (slower, tighter) or uses the characteristic curve.
    """

    def __init__(self, pipeline: HEBS, max_distortion: float,
                 smoother: BacklightSmoother | None = None,
                 scene_detector: SceneChangeDetector | None = None,
                 adaptive: bool = True) -> None:
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        self.pipeline = pipeline
        self.max_distortion = float(max_distortion)
        self.smoother = smoother or BacklightSmoother()
        self.scene_detector = scene_detector or SceneChangeDetector()
        self.adaptive = bool(adaptive)
        self._history: list[TemporalFrameResult] = []

    @property
    def history(self) -> tuple[TemporalFrameResult, ...]:
        """All frame results processed so far, in order."""
        return tuple(self._history)

    def submit(self, frame: Image) -> TemporalFrameResult:
        """Process one frame and return the (smoothed) result."""
        grayscale = frame.to_grayscale()
        scene_change = self.scene_detector.observe(grayscale)

        if self.adaptive:
            raw = self.pipeline.process_adaptive(grayscale, self.max_distortion)
        else:
            raw = self.pipeline.process(grayscale, self.max_distortion)
        requested = raw.backlight_factor

        applied = self.smoother.update(requested)
        # Re-derive the transformation for the dynamic range the *smoothed*
        # factor supports.  When smoothing keeps the backlight brighter than
        # requested the larger range only reduces distortion; when it keeps
        # the backlight dimmer (slewing towards a brighter scene) the budget
        # may transiently be exceeded — the flicker constraint wins, which is
        # the whole point of smoothing.
        levels = grayscale.levels
        target_range = int(np.clip(round(applied * (levels - 1)), 1, levels - 1))
        adjusted = self.pipeline.process_with_range(grayscale, target_range,
                                                    max_distortion=self.max_distortion)

        outcome = TemporalFrameResult(
            result=adjusted,
            requested_backlight=requested,
            applied_backlight=adjusted.backlight_factor,
            scene_change=scene_change,
        )
        self._history.append(outcome)
        return outcome

    def backlight_trace(self) -> np.ndarray:
        """The applied backlight factor of every processed frame."""
        return np.array([frame.applied_backlight for frame in self._history])

    def worst_step(self) -> float:
        """Largest frame-to-frame change of the applied backlight factor."""
        trace = self.backlight_trace()
        if trace.size < 2:
            return 0.0
        return float(np.abs(np.diff(trace)).max())

    def energy(self, seconds_per_frame: float = 1.0 / 30.0) -> float:
        """Total display energy of the processed stream (normalized units)."""
        return float(sum(frame.result.power.total for frame in self._history)
                     * seconds_per_frame)

    def reference_energy(self, seconds_per_frame: float = 1.0 / 30.0) -> float:
        """Energy of the same stream at full backlight, no transformation."""
        return float(sum(frame.result.reference_power.total
                         for frame in self._history) * seconds_per_frame)

    def energy_saving_percent(self) -> float:
        """Percent energy saving of the processed stream."""
        reference = self.reference_energy()
        if reference <= 0:
            return 0.0
        return 100.0 * (1.0 - self.energy() / reference)
