"""Image histograms: the statistic HEBS operates on — paper Sec. 2 and 4.

"The image histogram simply denotes the marginal distribution function of
the image pixel values" (Sec. 2).  HEBS needs three histogram objects:

* :class:`Histogram` — the marginal distribution ``h(x)`` over grayscale
  levels, with the usual summary statistics and the occupied dynamic range.
* :class:`CumulativeHistogram` — ``H(x)``, used directly by the GHE solver
  (Eq. 5: ``Phi(x) = U^{-1}(H(x))``).
* :func:`uniform_cumulative` — the target cumulative histogram ``U`` of a
  uniform distribution between ``g_min`` and ``g_max`` (Sec. 4, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image

__all__ = ["Histogram", "CumulativeHistogram", "uniform_cumulative"]


@dataclass(frozen=True)
class Histogram:
    """Marginal distribution of pixel values over the grayscale levels.

    Attributes
    ----------
    counts:
        ``counts[x]`` is the number of pixels with value ``x``; the array
        has one entry per representable level.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1 or counts.size < 2:
            raise ValueError("histogram needs a 1-D array with >= 2 levels")
        if np.any(counts < 0):
            raise ValueError("histogram counts must be non-negative")
        if counts.sum() == 0:
            raise ValueError("histogram must contain at least one pixel")
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def of_image(cls, image: Image) -> "Histogram":
        """Histogram of the (grayscale) pixel values of ``image``.

        RGB images are converted to luminance first, matching how the paper
        derives a single transformation for colour panels.
        """
        grayscale = image.to_grayscale()
        counts = np.bincount(grayscale.pixels.reshape(-1),
                             minlength=grayscale.levels)
        return cls(counts)

    @classmethod
    def from_probabilities(cls, probabilities: np.ndarray,
                           n_pixels: int = 10000) -> "Histogram":
        """Build a histogram from a probability mass function.

        Useful in tests and synthetic studies: the PMF is scaled to
        ``n_pixels`` pixels and rounded.
        """
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        counts = np.rint(probabilities / total * n_pixels).astype(np.int64)
        if counts.sum() == 0:
            counts[int(np.argmax(probabilities))] = 1
        return cls(counts)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> int:
        """Number of grayscale levels covered by the histogram."""
        return int(self.counts.size)

    @property
    def n_pixels(self) -> int:
        """Total number of pixels (``N`` in the paper's equations)."""
        return int(self.counts.sum())

    def probabilities(self) -> np.ndarray:
        """Normalized histogram ``h(x) / N``."""
        return self.counts.astype(np.float64) / self.n_pixels

    def occupied_levels(self) -> np.ndarray:
        """Indices of the grayscale levels with at least one pixel."""
        return np.nonzero(self.counts)[0]

    def min_level(self) -> int:
        """Smallest occupied grayscale level."""
        return int(self.occupied_levels()[0])

    def max_level(self) -> int:
        """Largest occupied grayscale level."""
        return int(self.occupied_levels()[-1])

    def dynamic_range(self) -> int:
        """Occupied dynamic range ``max - min`` (the paper's ``R``)."""
        return self.max_level() - self.min_level()

    def mean(self) -> float:
        """Mean pixel value implied by the histogram."""
        levels = np.arange(self.levels)
        return float(np.sum(levels * self.probabilities()))

    def variance(self) -> float:
        """Variance of the pixel values implied by the histogram."""
        levels = np.arange(self.levels, dtype=np.float64)
        mean = self.mean()
        return float(np.sum(self.probabilities() * (levels - mean) ** 2))

    def entropy(self) -> float:
        """Shannon entropy of the pixel-value distribution, in bits.

        A near-uniform histogram (high entropy) is the hard case for HEBS:
        "every level is as important as the other and discarding any
        grayscale level can cause a significant image distortion" (Sec. 3).
        """
        probabilities = self.probabilities()
        nonzero = probabilities[probabilities > 0]
        return float(-np.sum(nonzero * np.log2(nonzero)))

    # ------------------------------------------------------------------ #
    # conversions and comparisons
    # ------------------------------------------------------------------ #
    def cumulative(self) -> "CumulativeHistogram":
        """The cumulative histogram ``H(x) = sum_{k <= x} h(k)``."""
        return CumulativeHistogram(np.cumsum(self.counts))

    def to_image(self, name: str = "") -> Image:
        """A canonical image realizing this histogram exactly.

        The pixels are every occupied level repeated ``counts[level]`` times
        in increasing order, reshaped to the squarest ``(H, W)`` whose area
        is the exact pixel count, so ``Histogram.of_image(h.to_image()) ==
        h`` bitwise.  This is the bridge from the paper's histogram-only
        real-time flow (Fig. 4) back to the per-image algorithm surface: a
        client that only shipped a histogram (see
        :meth:`repro.api.engine.Engine.solve` and the ``solve`` RPC of
        :mod:`repro.serve.protocol`) can still be served by techniques whose
        entry point takes an :class:`~repro.imaging.image.Image`, because
        everything they derive from it is a histogram statistic.  (The
        square-ish shape keeps windowed measures — which some techniques
        consult *during* their policy search — applicable; a pixel count
        with no useful divisor degrades to a single row.)

        The bit depth is the smallest one covering ``levels`` (8 for the
        usual 256-level histograms).
        """
        bit_depth = max(1, (self.levels - 1).bit_length())
        pixels = np.repeat(np.arange(self.levels, dtype=np.uint16),
                           self.counts)
        n = pixels.size
        height = next(d for d in range(int(np.sqrt(n)), 0, -1) if n % d == 0)
        return Image(pixels.reshape(height, n // height),
                     bit_depth=bit_depth, name=name)

    def l1_distance(self, other: "Histogram") -> float:
        """Normalized L1 distance between two histograms, in ``[0, 1]``."""
        if self.levels != other.levels:
            raise ValueError("histograms must cover the same number of levels")
        return float(
            0.5 * np.abs(self.probabilities() - other.probabilities()).sum()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return bool(np.array_equal(self.counts, other.counts))

    def __hash__(self) -> int:
        return hash(self.counts.tobytes())


@dataclass(frozen=True)
class CumulativeHistogram:
    """Cumulative distribution ``H(x)``: number of pixels with value <= x."""

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size < 2:
            raise ValueError("cumulative histogram needs a 1-D array with >= 2 levels")
        if np.any(np.diff(values) < 0):
            raise ValueError("cumulative histogram must be non-decreasing")
        if values[-1] <= 0:
            raise ValueError("cumulative histogram must end at a positive total")
        values.setflags(write=False)
        object.__setattr__(self, "values", values)

    @property
    def levels(self) -> int:
        """Number of grayscale levels covered."""
        return int(self.values.size)

    @property
    def n_pixels(self) -> float:
        """Total number of pixels ``N`` (the final cumulative value)."""
        return float(self.values[-1])

    def normalized(self) -> np.ndarray:
        """``H(x) / N`` in ``[0, 1]``."""
        return self.values / self.n_pixels

    def marginal(self) -> Histogram:
        """Recover the marginal histogram by first differences."""
        counts = np.diff(self.values, prepend=0.0)
        return Histogram(np.rint(counts).astype(np.int64))

    def l1_distance(self, other: "CumulativeHistogram") -> float:
        """Mean absolute difference of the normalized cumulative histograms.

        This is (a discretization of) the GHE objective of Eq. (4): the
        integral of ``|U(Phi(x)) - H(x)|`` over the grayscale domain.
        """
        if self.levels != other.levels:
            raise ValueError("cumulative histograms must cover the same levels")
        return float(np.mean(np.abs(self.normalized() - other.normalized())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CumulativeHistogram):
            return NotImplemented
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:
        return hash(self.values.tobytes())


def uniform_cumulative(levels: int, n_pixels: float, g_min: int,
                       g_max: int) -> CumulativeHistogram:
    """Cumulative histogram of the uniform target distribution (footnote 3).

    ``U(x) = 0`` for ``x < g_min``; ``U(x) = N (x - g_min) / (g_max - g_min)``
    for ``g_min <= x <= g_max``; ``U(x) = N`` for ``x > g_max``.

    Parameters
    ----------
    levels:
        Number of grayscale levels of the display (256 for 8 bits).
    n_pixels:
        Total pixel count ``N`` of the image being equalized.
    g_min, g_max:
        Lower and upper limits of the uniform target; ``g_max - g_min`` is
        the target dynamic range ``R``.
    """
    if not 0 <= g_min < g_max <= levels - 1:
        raise ValueError(
            f"need 0 <= g_min < g_max <= {levels - 1}, got ({g_min}, {g_max})"
        )
    if n_pixels <= 0:
        raise ValueError("n_pixels must be positive")
    x = np.arange(levels, dtype=np.float64)
    ramp = n_pixels * (x - g_min) / float(g_max - g_min)
    values = np.clip(ramp, 0.0, n_pixels)
    return CumulativeHistogram(values)
