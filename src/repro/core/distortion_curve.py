"""The distortion characteristic curve — paper Sec. 3 and Sec. 5.1c, Fig. 7.

The general dynamic-backlight-scaling problem is hard because the distortion
function is complex.  The paper sidesteps it empirically: for every benchmark
image, set the target dynamic range of the transformed image to a series of
values, measure the resulting distortion, and fit a global curve mapping the
target dynamic range to the expected ("entire dataset fit") and pessimistic
("worst-case fit") distortion.  At run time the curve is *inverted*: given a
distortion budget ``D_max``, look up the minimum admissible dynamic range
``R`` — step 1 of the HEBS algorithm.

:func:`build_distortion_curve` performs the sweep and the fits;
:class:`DistortionCharacteristicCurve` holds the fitted model and provides
``predict`` / ``min_range_for_distortion``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.equalization import equalize_histogram
from repro.imaging.image import Image
from repro.quality.distortion import DistortionMeasure, get_measure

__all__ = [
    "DistortionSample",
    "DistortionCharacteristicCurve",
    "build_distortion_curve",
    "DEFAULT_RANGE_GRID",
]

#: The ten target dynamic ranges the paper sweeps (Sec. 5.1c uses "ten
#: different values"; Fig. 7's x axis spans 50..250).
DEFAULT_RANGE_GRID: tuple[int, ...] = (50, 72, 94, 116, 139, 161, 183, 205, 228, 250)


@dataclass(frozen=True)
class DistortionSample:
    """One point of the characterization sweep.

    Attributes
    ----------
    image_name:
        Benchmark image the sample was measured on.
    target_range:
        Dynamic range ``R`` the image was compressed to.
    distortion:
        Measured distortion (percent) of the compressed image.
    """

    image_name: str
    target_range: int
    distortion: float


def _design_matrix(ranges: np.ndarray, levels: int, degree: int) -> np.ndarray:
    """Polynomial basis in the *compression amount* ``1 - R/(levels-1)``.

    Using the compression amount (rather than ``R`` itself) as the regressor
    makes the fitted curve pass near zero distortion at full range and grow
    as the range shrinks, matching the shape of Fig. 7.
    """
    compression = 1.0 - ranges / float(levels - 1)
    return np.vander(compression, degree + 1, increasing=True)


@dataclass(frozen=True)
class DistortionCharacteristicCurve:
    """Fitted mapping between target dynamic range and expected distortion.

    Attributes
    ----------
    dataset_coefficients:
        Polynomial coefficients (in the compression-amount basis) of the
        "entire dataset" fit of Fig. 7.
    worstcase_coefficients:
        Coefficients of the "worst-case" fit: the dataset fit shifted and
        rescaled so it upper-bounds every measured sample.
    levels:
        Number of grayscale levels of the characterized display.
    samples:
        The raw sweep samples (kept for plotting / re-fitting).
    measure_name:
        Name of the distortion measure the sweep used.
    """

    dataset_coefficients: tuple[float, ...]
    worstcase_coefficients: tuple[float, ...]
    levels: int = 256
    samples: tuple[DistortionSample, ...] = field(default=(), repr=False)
    measure_name: str = "effective"

    def __post_init__(self) -> None:
        if len(self.dataset_coefficients) != len(self.worstcase_coefficients):
            raise ValueError("both fits must use the same polynomial degree")
        if len(self.dataset_coefficients) < 2:
            raise ValueError("need at least a linear fit (two coefficients)")
        if self.levels < 2:
            raise ValueError("levels must be at least 2")

    # ------------------------------------------------------------------ #
    def _predict(self, coefficients: Sequence[float],
                 target_range: float | np.ndarray) -> np.ndarray:
        ranges = np.asarray(target_range, dtype=np.float64)
        basis = _design_matrix(np.atleast_1d(ranges), self.levels,
                               len(coefficients) - 1)
        predicted = basis @ np.asarray(coefficients)
        return np.maximum(predicted, 0.0)

    def predict(self, target_range: float | np.ndarray,
                worst_case: bool = False) -> float | np.ndarray:
        """Expected distortion (percent) at a target dynamic range.

        ``worst_case=True`` evaluates the pessimistic envelope instead of
        the dataset-average fit.
        """
        coefficients = (self.worstcase_coefficients if worst_case
                        else self.dataset_coefficients)
        predicted = self._predict(coefficients, target_range)
        if np.isscalar(target_range):
            return float(predicted[0])
        return predicted

    def min_range_for_distortion(self, max_distortion: float,
                                 worst_case: bool = True) -> int:
        """Smallest dynamic range whose predicted distortion fits the budget.

        This is step 1 of the HEBS flow (Fig. 4): the user-specified maximum
        tolerable distortion is turned into the minimum admissible dynamic
        range.  The worst-case fit is used by default so the budget is met
        for every image the curve was characterized on; pass
        ``worst_case=False`` to budget against the average behaviour.

        Returns a range in ``[1, levels - 1]``; if even the full range is
        predicted to exceed the budget the full range is returned (no
        compression, no dimming).
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        candidate_ranges = np.arange(1, self.levels, dtype=np.float64)
        predicted = np.asarray(self.predict(candidate_ranges, worst_case=worst_case))
        # Enforce monotonicity of the decision: a range is admissible only if
        # every larger range is admissible too, so the admissible set is an
        # upper interval even if the raw polynomial wiggles.
        tightest = np.maximum.accumulate(predicted[::-1])[::-1]
        admissible = np.nonzero(tightest <= max_distortion)[0]
        if admissible.size == 0:
            return self.levels - 1
        return int(candidate_ranges[admissible[0]])

    def sample_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The sweep samples as ``(ranges, distortions)`` arrays."""
        ranges = np.array([s.target_range for s in self.samples], dtype=np.float64)
        distortions = np.array([s.distortion for s in self.samples], dtype=np.float64)
        return ranges, distortions


def build_distortion_curve(
    images: Mapping[str, Image] | Iterable[Image],
    target_ranges: Sequence[int] = DEFAULT_RANGE_GRID,
    measure: str | DistortionMeasure = "effective",
    degree: int = 3,
    g_min: int = 0,
) -> DistortionCharacteristicCurve:
    """Characterize a benchmark set and fit the distortion curve (Fig. 7).

    Parameters
    ----------
    images:
        Benchmark images, either a ``{name: Image}`` mapping or an iterable
        of (named) images.
    target_ranges:
        The dynamic ranges to sweep (the paper uses ten values).
    measure:
        Distortion measure name (see
        :func:`repro.quality.distortion.available_measures`) or a callable.
    degree:
        Degree of the polynomial fit in the compression-amount basis.
    g_min:
        Lower grayscale limit of the equalization target; the upper limit is
        ``g_min + R``.

    Returns
    -------
    DistortionCharacteristicCurve
        Fitted curve carrying all sweep samples.
    """
    if isinstance(images, Mapping):
        named_images = list(images.items())
    else:
        named_images = [(image.name or f"image{i}", image)
                        for i, image in enumerate(images)]
    if not named_images:
        raise ValueError("need at least one benchmark image")
    if len(target_ranges) < 2:
        raise ValueError("need at least two target ranges to fit a curve")

    measure_fn = get_measure(measure) if isinstance(measure, str) else measure
    measure_name = measure if isinstance(measure, str) else getattr(
        measure, "__name__", "custom")

    levels = named_images[0][1].levels
    samples: list[DistortionSample] = []
    for name, image in named_images:
        grayscale = image.to_grayscale()
        if grayscale.levels != levels:
            raise ValueError("all benchmark images must share a bit depth")
        for target_range in target_ranges:
            target_range = int(target_range)
            if not 1 <= target_range <= levels - 1 - g_min:
                raise ValueError(
                    f"target range {target_range} not realizable with g_min={g_min}"
                )
            result = equalize_histogram(grayscale, g_min, g_min + target_range)
            transformed = result.apply(grayscale)
            distortion = float(measure_fn(grayscale, transformed))
            samples.append(DistortionSample(name, target_range, distortion))

    ranges = np.array([s.target_range for s in samples], dtype=np.float64)
    distortions = np.array([s.distortion for s in samples], dtype=np.float64)

    basis = _design_matrix(ranges, levels, degree)
    dataset_coefficients, *_ = np.linalg.lstsq(basis, distortions, rcond=None)

    # Worst-case fit: shift the dataset fit upward until it dominates every
    # sample (the paper's "worst-case" envelope of Fig. 7).
    residuals = distortions - basis @ dataset_coefficients
    shift = float(max(residuals.max(), 0.0))
    worstcase_coefficients = np.array(dataset_coefficients, copy=True)
    worstcase_coefficients[0] += shift

    return DistortionCharacteristicCurve(
        dataset_coefficients=tuple(float(c) for c in dataset_coefficients),
        worstcase_coefficients=tuple(float(c) for c in worstcase_coefficients),
        levels=levels,
        samples=tuple(samples),
        measure_name=measure_name,
    )
