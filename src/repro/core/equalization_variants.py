"""Alternative histogram-equalization methods (the paper's stated future work).

Sec. 6: "In future work alternative distortion measures and histograms
equalization methods will be evaluated."  This module provides the two most
common alternatives to plain global equalization, both constrained to the
same range-compression interface as the GHE solver so the HEBS pipeline can
swap them in:

* **Clipped (contrast-limited) equalization** — the histogram is clipped at a
  multiple of the uniform bin height before the cumulative transform is
  built.  This bounds the slope of the transformation and therefore the
  amount of contrast amplification, trading a slightly less uniform target
  histogram for a gentler transform (the global version of CLAHE's clip
  limit).
* **Bi-histogram equalization (BBHE)** — the histogram is split at the image
  mean and the two halves are equalized independently into the lower and
  upper halves of the target range.  This preserves the mean brightness of
  the image, which plain equalization does not.

Every variant returns the same :class:`~repro.core.equalization.GHEResult`
record, so the PLC step, the driver programming and all experiments work
unchanged.  The ``abl-eq`` ablation benchmark compares them.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.equalization import GHEResult, equalization_objective, equalize_histogram
from repro.core.histogram import CumulativeHistogram, Histogram
from repro.core.transforms import LUTTransform
from repro.imaging.image import Image

__all__ = [
    "clipped_equalization",
    "bi_histogram_equalization",
    "available_equalizers",
    "get_equalizer",
]

#: An equalizer maps (source, g_min, g_max) to a GHEResult.
Equalizer = Callable[..., GHEResult]


def _as_histogram(source: Image | Histogram) -> Histogram:
    return source if isinstance(source, Histogram) else Histogram.of_image(source)


def _result_from_lut(histogram: Histogram, output_levels: np.ndarray,
                     g_min: int, g_max: int) -> GHEResult:
    """Package a per-level output curve as a GHEResult (shared helper).

    ``output_levels`` holds the (continuous) output grayscale level for every
    input level; the transform keeps the continuous values (display rounding
    happens when the LUT is applied), while the objective is evaluated on the
    integer-rounded pushed-forward histogram, matching the GHE solver.
    """
    levels = histogram.levels
    continuous = np.clip(np.asarray(output_levels, dtype=np.float64),
                         0.0, levels - 1)
    # enforce monotonicity (numerical guard; all variants are monotone by
    # construction)
    continuous = np.maximum.accumulate(continuous)
    transform = LUTTransform(tuple(continuous / (levels - 1)))

    rounded = np.rint(continuous).astype(np.int64)
    transformed_counts = np.zeros(levels, dtype=np.int64)
    np.add.at(transformed_counts, rounded, histogram.counts)
    cumulative = CumulativeHistogram(np.cumsum(transformed_counts).astype(float))
    objective = equalization_objective(cumulative, g_min, g_max)
    return GHEResult(transform=transform, g_min=int(g_min), g_max=int(g_max),
                     objective=objective, source_histogram=histogram)


def _validate_range(levels: int, g_min: int, g_max: int) -> None:
    if not 0 <= g_min < g_max <= levels - 1:
        raise ValueError(
            f"need 0 <= g_min < g_max <= {levels - 1}, got ({g_min}, {g_max})")


# --------------------------------------------------------------------- #
# clipped (contrast-limited) equalization
# --------------------------------------------------------------------- #
def clipped_equalization(source: Image | Histogram, g_min: int, g_max: int,
                         clip_limit: float = 3.0) -> GHEResult:
    """Histogram equalization with a clipped histogram (bounded slope).

    The histogram is clipped at ``clip_limit`` times the mean bin height and
    the excess mass is redistributed uniformly over all bins before the
    cumulative transform of Eq. (5) is built.  ``clip_limit`` of 1.0 yields a
    purely linear compression (every bin equal); very large limits recover
    plain GHE.

    Parameters
    ----------
    source:
        Image or histogram to equalize.
    g_min, g_max:
        Target range limits (as in :func:`repro.core.equalization.equalize_histogram`).
    clip_limit:
        Maximum bin height as a multiple of the uniform bin height.
    """
    if clip_limit < 1.0:
        raise ValueError("clip_limit must be at least 1.0")
    histogram = _as_histogram(source)
    _validate_range(histogram.levels, g_min, g_max)

    counts = histogram.counts.astype(np.float64)
    ceiling = clip_limit * counts.mean()
    clipped = np.minimum(counts, ceiling)
    excess = counts.sum() - clipped.sum()
    # Redistribute the clipped-off mass over the bins that still have
    # headroom, iterating so no bin ends up above the ceiling (the classic
    # contrast-limited redistribution).  Any residual after the iterations is
    # spread uniformly; it is tiny and only occurs for extreme clip limits.
    for _ in range(16):
        if excess <= 1e-9:
            break
        headroom = ceiling - clipped
        open_bins = headroom > 1e-12
        if not np.any(open_bins):
            break
        share = excess / open_bins.sum()
        addition = np.minimum(headroom[open_bins], share)
        clipped[open_bins] += addition
        excess -= addition.sum()
    if excess > 1e-9:
        clipped += excess / counts.size

    cumulative = np.cumsum(clipped)
    normalized = cumulative / cumulative[-1]
    outputs = g_min + (g_max - g_min) * normalized
    return _result_from_lut(histogram, outputs, g_min, g_max)


# --------------------------------------------------------------------- #
# brightness-preserving bi-histogram equalization (BBHE)
# --------------------------------------------------------------------- #
def bi_histogram_equalization(source: Image | Histogram, g_min: int,
                              g_max: int) -> GHEResult:
    """Bi-histogram equalization: equalize below and above the mean separately.

    The input histogram is split at its mean level; the lower part is
    equalized into ``[g_min, g_split]`` and the upper part into
    ``[g_split, g_max]``, where ``g_split`` divides the target range in the
    same proportion as the mean divides the source range.  The transformed
    image therefore keeps (approximately) the source's relative mean
    brightness — the property plain equalization sacrifices.
    """
    histogram = _as_histogram(source)
    _validate_range(histogram.levels, g_min, g_max)

    counts = histogram.counts.astype(np.float64)
    levels = histogram.levels
    mean_level = int(np.clip(round(histogram.mean()), 1, levels - 2))

    lower_counts = counts[:mean_level + 1]
    upper_counts = counts[mean_level + 1:]

    # split the target range proportionally to the source mean position
    split_fraction = mean_level / (levels - 1)
    g_split = int(round(g_min + (g_max - g_min) * split_fraction))
    g_split = int(np.clip(g_split, g_min, g_max - 1))

    outputs = np.empty(levels, dtype=np.float64)
    if lower_counts.sum() > 0:
        lower_cdf = np.cumsum(lower_counts) / lower_counts.sum()
        outputs[:mean_level + 1] = g_min + (g_split - g_min) * lower_cdf
    else:
        outputs[:mean_level + 1] = g_min
    if upper_counts.sum() > 0:
        upper_cdf = np.cumsum(upper_counts) / upper_counts.sum()
        outputs[mean_level + 1:] = g_split + (g_max - g_split) * upper_cdf
    else:
        outputs[mean_level + 1:] = g_split
    return _result_from_lut(histogram, outputs, g_min, g_max)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_EQUALIZERS: Dict[str, Equalizer] = {
    "ghe": equalize_histogram,
    "clipped": clipped_equalization,
    "bbhe": bi_histogram_equalization,
}


def available_equalizers() -> list[str]:
    """Names of the registered equalization methods."""
    return sorted(_EQUALIZERS)


def get_equalizer(name: str) -> Equalizer:
    """Look up an equalization method by name (``ghe``, ``clipped``, ``bbhe``)."""
    try:
        return _EQUALIZERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown equalization method {name!r}; available: "
            f"{available_equalizers()}") from None
