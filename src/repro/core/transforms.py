"""Pixel transformation functions — the family shown in the paper's Fig. 2.

Every backlight-scaling technique boils down to a monotone pixel
transformation ``Phi(x, beta)`` applied while the backlight is dimmed to
``beta`` (Eq. 1b).  The paper surveys four shapes (Fig. 2) and HEBS adds a
fifth, the general piecewise-linear curve realized by the hierarchical
reference driver:

==========================  ===========================================
class                        paper reference
==========================  ===========================================
:class:`IdentityTransform`          Fig. 2a — no compensation
:class:`GrayscaleShiftTransform`    Fig. 2b — brightness compensation, Eq. (2a)
:class:`GrayscaleSpreadTransform`   Fig. 2c — contrast enhancement, Eq. (2b)
:class:`SingleBandSpreadTransform`  Fig. 2d — single-band spreading, Eq. (3)
:class:`PiecewiseLinearTransform`   Fig. 3  — k-band spreading (HEBS / PLC)
:class:`LUTTransform`               exact GHE transformation, Eq. (7)
==========================  ===========================================

All transforms operate on *normalized* pixel values ``x`` in ``[0, 1]`` and
saturate their output at 1 (the ``min(1, .)`` of Eq. 2) and at 0.  They can
be applied to scalars, arrays, or :class:`~repro.imaging.image.Image`
instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image
from repro.imaging.ops import to_uint

__all__ = [
    "PixelTransform",
    "IdentityTransform",
    "GrayscaleShiftTransform",
    "GrayscaleSpreadTransform",
    "SingleBandSpreadTransform",
    "PiecewiseLinearTransform",
    "LUTTransform",
]


class PixelTransform:
    """Base class: a monotone map from normalized pixel values to same.

    Subclasses implement :meth:`evaluate` on float arrays in ``[0, 1]``; the
    base class provides clipping, image application and LUT export.
    """

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Raw transform of normalized values (before clipping)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Transformed value(s), clipped to ``[0, 1]``."""
        x_array = np.asarray(x, dtype=np.float64)
        result = np.clip(self.evaluate(np.clip(x_array, 0.0, 1.0)), 0.0, 1.0)
        return float(result) if np.isscalar(x) else result

    def apply(self, image: Image) -> Image:
        """Apply the transform to every pixel of ``image``.

        Evaluates the transform once per representable grayscale level and
        maps the pixels through the resulting look-up table.  Because every
        pixel value ``v`` equals ``grid[v]`` exactly, this is bit-identical
        to evaluating the transform per pixel while costing ``O(levels)``
        transform evaluations instead of ``O(H * W)``.
        """
        grid = np.arange(image.levels, dtype=np.float64) / image.max_level
        table = to_uint(np.asarray(self(grid)), image.bit_depth)
        return image.with_pixels(table[image.pixels])

    def lut(self, levels: int = 256) -> np.ndarray:
        """Integer look-up table with one output level per input level."""
        grid = np.linspace(0.0, 1.0, levels)
        return np.rint(np.asarray(self(grid)) * (levels - 1)).astype(np.int64)

    def is_monotone(self, levels: int = 256) -> bool:
        """Whether the transform is non-decreasing on the level grid."""
        grid = np.linspace(0.0, 1.0, levels)
        values = np.asarray(self(grid))
        return bool(np.all(np.diff(values) >= -1e-12))


@dataclass(frozen=True)
class IdentityTransform(PixelTransform):
    """``Phi(x) = x`` (Fig. 2a): display the image unmodified."""

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x.copy()


@dataclass(frozen=True)
class GrayscaleShiftTransform(PixelTransform):
    """Backlight dimming with brightness compensation (Fig. 2b, Eq. 2a).

    ``Phi(x, beta) = min(1, x + 1 - beta)``: every pixel is brightened by the
    luminance lost to dimming; bright pixels saturate.
    """

    beta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x + (1.0 - self.beta)


@dataclass(frozen=True)
class GrayscaleSpreadTransform(PixelTransform):
    """Backlight dimming with contrast enhancement (Fig. 2c, Eq. 2b).

    ``Phi(x, beta) = min(1, x / beta)``: pixel values are scaled up so that
    the emitted luminance ``beta * t(x / beta)`` matches the original for all
    non-saturating pixels.
    """

    beta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x / self.beta


@dataclass(frozen=True)
class SingleBandSpreadTransform(PixelTransform):
    """Single-band grayscale spreading (Fig. 2d, Eq. 3) — ref. [5].

    Pixel values below ``g_low`` map to 0, values above ``g_high`` map to 1,
    and the band ``[g_low, g_high]`` is stretched linearly onto ``[0, 1]``.
    This is the most general transfer function the conventional single-band
    reference driver can realize.
    """

    g_low: float
    g_high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.g_low < self.g_high <= 1.0:
            raise ValueError(
                f"need 0 <= g_low < g_high <= 1, got ({self.g_low}, {self.g_high})"
            )

    @classmethod
    def from_backlight_factor(cls, beta: float,
                              center: float = 0.5) -> "SingleBandSpreadTransform":
        """Band of width ``beta`` centred (as far as possible) on ``center``.

        Dimming to ``beta`` lets the driver stretch a band of normalized
        width ``beta`` onto the full range; this helper picks the band
        placement, defaulting to the middle of the grayscale range.
        """
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if beta == 1.0:
            return cls(0.0, 1.0)
        low = min(max(center - beta / 2.0, 0.0), 1.0 - beta)
        return cls(low, low + beta)

    @property
    def slope(self) -> float:
        """Slope of the linear region (``c`` in Eq. 3)."""
        return 1.0 / (self.g_high - self.g_low)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return (x - self.g_low) / (self.g_high - self.g_low)


@dataclass(frozen=True)
class PiecewiseLinearTransform(PixelTransform):
    """A monotone piecewise-linear transform given by its breakpoints.

    This is the k-band grayscale-spreading function of Fig. 3: the form HEBS
    programs into the hierarchical reference driver after PLC.  Breakpoints
    are normalized coordinates; inputs outside ``[x[0], x[-1]]`` extrapolate
    with the first/last y value (flat extension).
    """

    x_breaks: tuple[float, ...]
    y_breaks: tuple[float, ...]

    def __post_init__(self) -> None:
        x = np.asarray(self.x_breaks, dtype=np.float64)
        y = np.asarray(self.y_breaks, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1 or x.size != y.size or x.size < 2:
            raise ValueError("need matching 1-D breakpoint arrays with >= 2 points")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x breakpoints must be strictly increasing")
        if np.any(np.diff(y) < 0):
            raise ValueError("y breakpoints must be non-decreasing (monotone)")
        if x.min() < 0 or x.max() > 1 or y.min() < 0 or y.max() > 1:
            raise ValueError("breakpoints must lie in [0, 1]")
        object.__setattr__(self, "x_breaks", tuple(float(v) for v in x))
        object.__setattr__(self, "y_breaks", tuple(float(v) for v in y))

    @property
    def n_segments(self) -> int:
        """Number of linear segments."""
        return len(self.x_breaks) - 1

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.interp(x, self.x_breaks, self.y_breaks)

    def slopes(self) -> np.ndarray:
        """Slope of every linear segment."""
        x = np.asarray(self.x_breaks)
        y = np.asarray(self.y_breaks)
        return np.diff(y) / np.diff(x)


@dataclass(frozen=True)
class LUTTransform(PixelTransform):
    """A transform defined by an explicit per-level look-up table.

    The exact GHE transformation of Eq. (7) has one output value per input
    grayscale level; this class wraps such a table so it can be applied,
    compared against its piecewise-linear coarsening, and exported.
    ``table[i]`` holds the *normalized* output for input level ``i``.
    """

    table: tuple[float, ...]

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.float64)
        if table.ndim != 1 or table.size < 2:
            raise ValueError("LUT must be a 1-D array with >= 2 entries")
        if table.min() < 0 or table.max() > 1:
            raise ValueError("LUT entries must be normalized to [0, 1]")
        if np.any(np.diff(table) < -1e-12):
            raise ValueError("LUT must be non-decreasing (monotone transform)")
        object.__setattr__(self, "table", tuple(float(v) for v in table))

    @property
    def levels(self) -> int:
        """Number of input levels the table covers."""
        return len(self.table)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        grid = np.linspace(0.0, 1.0, self.levels)
        return np.interp(x, grid, np.asarray(self.table))
