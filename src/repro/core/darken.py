"""Content darkening: the paper's optimization inverted for emissive panels.

HEBS saves power by dimming a backlight and re-equalizing content *upward*
so the perceived image survives.  On an OLED there is no backlight; power
lives in the pixels, so the same machinery runs the other way: derive a
monotone tone-mapping LUT **from the histogram only** that moves pixel mass
toward black, subject to the same distortion budget, and pay the power bill
at the panel (:class:`~repro.display.oled.OLEDModel`).

The transform family reuses the paper's Eq.-(7) equalization engine.  Plain
equalization onto ``[0, R]`` is wrong on its own: a uniform target
*brightens* the dense dark regions (the classic HE washed-out-shadows
artifact), which on an emissive panel costs power.  The darkening family
clamps it against the identity:

    Phi_R(x) = min(x, ghe_R(x))        ghe_R = Eq. (7) onto [0, R]

which is monotone (the pointwise minimum of monotone maps), never brightens
any pixel (so emissive power can only fall), and is pointwise non-decreasing
in ``R`` (``ghe_R`` scales linearly with ``R``), so distortion is weakly
decreasing in ``R`` and the budget feasibility boundary can be found by
integer bisection — the exact search structure of
:meth:`repro.core.pipeline.HEBS.process_adaptive` and
:func:`repro.baselines.policy.find_minimum_backlight`, pointed at a range
instead of a backlight factor.

The solve/apply split mirrors HEBS (paper Fig. 4): :meth:`ContentDarkener.solve`
consumes only the histogram (a bare histogram is realized via
:meth:`Histogram.to_image <repro.core.histogram.Histogram.to_image>` for the
distortion probe), so solutions are cacheable by histogram signature and a
remote client can ship O(histogram) bytes; :meth:`ContentDarkener.apply_solution`
replays the LUT onto concrete pixels with power/distortion accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.equalization_variants import get_equalizer
from repro.core.histogram import Histogram
from repro.core.transforms import LUTTransform
from repro.display.oled import (
    OLEDDisplayPowerModel,
    OLEDModel,
    OLEDPowerBreakdown,
    QVGA_AMOLED,
)
from repro.imaging.image import Image
from repro.quality.distortion import get_measure

__all__ = [
    "DarkenSolution",
    "DarkenResult",
    "ContentDarkener",
    "darkening_transform",
    "DEFAULT_SAFETY_MARGINS",
]

#: Calibrated per-equalizer safety margins (see ``ContentDarkener``): the
#: histogram-realizing probe image is smoother than real textured content,
#: so windowed measures read lower on it.  These factors keep the measured
#: per-image distortion within budget across the benchmark suite; the
#: clipped equalizer redistributes mass and needs the larger guard band.
DEFAULT_SAFETY_MARGINS = {"ghe": 0.90, "clipped": 0.75}


def darkening_transform(histogram: Histogram, target_range: int,
                        equalization: str = "ghe") -> LUTTransform:
    """The darkening LUT ``Phi_R = min(identity, equalize-onto-[0, R])``.

    ``target_range`` is the top level ``R`` of the equalization target
    ``[0, R]``; the clamp against the identity guarantees no pixel ever
    brightens, so the transform can only reduce emissive power.
    """
    levels = histogram.levels
    if not 1 <= target_range <= levels - 1:
        raise ValueError(
            f"target_range must be in [1, {levels - 1}], got {target_range}")
    equalized = get_equalizer(equalization)(histogram, 0, target_range)
    table = np.asarray(equalized.transform.table, dtype=np.float64)
    identity = np.linspace(0.0, 1.0, levels)
    return LUTTransform(tuple(float(v)
                              for v in np.minimum(table, identity)))


@dataclass(frozen=True)
class DarkenSolution:
    """The image-independent outcome of one darkening solve.

    Attributes
    ----------
    transform:
        The per-level darkening LUT ``Phi_R``.
    target_range:
        The selected equalization top level ``R`` (``levels - 1`` when the
        budget forced the identity fallback).
    levels:
        Grayscale levels of the histogram the LUT was derived for.
    max_distortion:
        The budget the solve was asked to respect.
    identity:
        ``True`` when even the gentlest member of the family exceeded the
        budget and the solve fell back to the identity transform (zero
        distortion, zero saving) — the emissive analogue of
        :func:`~repro.baselines.policy.find_minimum_backlight` returning
        1.0.
    """

    transform: LUTTransform
    target_range: int
    levels: int
    max_distortion: float
    identity: bool = False


@dataclass(frozen=True)
class DarkenResult:
    """Full per-image outcome of replaying a darkening solution.

    The native record of the emissive workload, mirroring
    :class:`~repro.core.pipeline.HEBSResult` /
    :class:`~repro.baselines.policy.BaselineResult`; the registry adapter
    normalizes it to a :class:`~repro.api.types.CompensationResult`.
    """

    original: Image
    output: Image
    transform: LUTTransform
    target_range: int
    distortion: float
    power: OLEDPowerBreakdown
    reference_power: OLEDPowerBreakdown
    max_distortion: float

    @property
    def power_saving(self) -> float:
        """Fractional display-power saving versus the undarkened original."""
        return self.power.saving_versus(self.reference_power)

    @property
    def power_saving_percent(self) -> float:
        """Power saving in percent."""
        return 100.0 * self.power_saving


class ContentDarkener:
    """Histogram-driven content darkening under a distortion budget.

    Parameters
    ----------
    oled:
        The emissive power model billed for the output frames.
    measure:
        Distortion measure: a registered name (see
        :func:`repro.quality.distortion.get_measure`) or a callable
        ``(original, output) -> percent``.
    equalization:
        Equalization engine for the ``ghe_R`` half of the family (``"ghe"``
        or ``"clipped"``; ``"bbhe"`` splits around the mean and does not
        target ``[0, R]``'s darkening semantics, so it is rejected).
    min_range:
        Most aggressive ``R`` the bisection may select; guards the
        degenerate all-black LUT.
    safety_margin:
        Multiplier (``<= 1``) on the budget used *during* range selection.
        The solve probes distortion on the canonical histogram-realizing
        image, which is smoother than real textured content, so
        layout-sensitive measures read lower on it; the margin buys the
        slack back.  ``None`` (the default) selects the calibrated
        per-equalizer value from :data:`DEFAULT_SAFETY_MARGINS`.
    """

    def __init__(self, oled: OLEDModel | None = None, *,
                 measure: str | Callable[..., Any] = "effective",
                 equalization: str = "ghe", min_range: int = 16,
                 safety_margin: float | None = None) -> None:
        if equalization not in ("ghe", "clipped"):
            raise ValueError(
                f"equalization must be 'ghe' or 'clipped' for darkening, "
                f"got {equalization!r}")
        if min_range < 1:
            raise ValueError("min_range must be at least 1")
        if safety_margin is None:
            safety_margin = DEFAULT_SAFETY_MARGINS[equalization]
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety_margin must be in (0, 1]")
        self.oled = oled or QVGA_AMOLED
        self.display_model = OLEDDisplayPowerModel(oled=self.oled)
        if callable(measure):
            self.measure = measure
            self.measure_name = getattr(measure, "__name__", "custom")
        else:
            self.measure = get_measure(measure)
            self.measure_name = measure
        self.equalization = equalization
        self.min_range = int(min_range)
        self.safety_margin = float(safety_margin)

    # ------------------------------------------------------------------ #
    # the solve side (histogram-only, Fig. 4 discipline)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _histogram_of(source: Image | Histogram) -> Histogram:
        if isinstance(source, Histogram):
            return source
        return Histogram.of_image(source.to_grayscale())

    def darkening_transform(self, histogram: Histogram,
                            target_range: int) -> LUTTransform:
        """The family member ``Phi_R`` for this darkener's equalizer."""
        return darkening_transform(histogram, target_range,
                                   equalization=self.equalization)

    def solve_range(self, source: Image | Histogram, target_range: int,
                    max_distortion: float = float("nan")) -> DarkenSolution:
        """Solution at an explicitly chosen target range (no search)."""
        histogram = self._histogram_of(source)
        return DarkenSolution(
            transform=self.darkening_transform(histogram, target_range),
            target_range=int(target_range),
            levels=histogram.levels,
            max_distortion=float(max_distortion),
        )

    def select_range(self, source: Image | Histogram,
                     max_distortion: float) -> int | None:
        """Smallest feasible ``R`` for the budget, or ``None`` if none is.

        Distortion is probed on the canonical image realizing the
        histogram, so the selection — like the whole solve — is a pure
        function of (histogram, budget) and therefore cacheable.  The probe
        exploits that distortion is weakly decreasing in ``R`` (the family
        is pointwise non-decreasing in ``R``) to run an integer bisection,
        the HEBS ``process_adaptive`` search pointed at a range.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        histogram = self._histogram_of(source)
        realized = histogram.to_image()
        budget = max_distortion * self.safety_margin
        levels = histogram.levels

        def distortion_at(target_range: int) -> float:
            transform = self.darkening_transform(histogram, target_range)
            return float(self.measure(realized, transform.apply(realized)))

        gentlest = levels - 1
        if distortion_at(gentlest) > budget:
            return None                      # even R = L-1 overshoots
        lowest = min(self.min_range, gentlest)
        if distortion_at(lowest) <= budget:
            return lowest
        # invariant: distortion(low) > budget >= distortion(high)
        low, high = lowest, gentlest
        while high - low > 1:
            middle = (low + high) // 2
            if distortion_at(middle) <= budget:
                high = middle
            else:
                low = middle
        return high

    def solve(self, source: Image | Histogram,
              max_distortion: float) -> DarkenSolution:
        """Full histogram-only solve: select the range, build the LUT.

        Falls back to an explicit identity solution (zero distortion, zero
        saving) when no family member fits the budget, so a tiny budget
        degrades gracefully instead of overshooting it.
        """
        histogram = self._histogram_of(source)
        target_range = self.select_range(histogram, max_distortion)
        if target_range is None:
            levels = histogram.levels
            identity = LUTTransform(
                tuple(float(v) for v in np.linspace(0.0, 1.0, levels)))
            return DarkenSolution(
                transform=identity, target_range=levels - 1, levels=levels,
                max_distortion=float(max_distortion), identity=True)
        return self.solve_range(histogram, target_range,
                                max_distortion=max_distortion)

    # ------------------------------------------------------------------ #
    # the apply side (per-image replay)
    # ------------------------------------------------------------------ #
    def apply_solution(self, solution: DarkenSolution,
                       image: Image) -> DarkenResult:
        """Replay a (possibly cached) solution onto concrete pixels."""
        grayscale = image.to_grayscale()
        if grayscale.levels != solution.levels:
            raise ValueError(
                f"image has {grayscale.levels} levels but the solution was "
                f"derived for {solution.levels}")
        output = solution.transform.apply(grayscale)
        return DarkenResult(
            original=grayscale,
            output=output,
            transform=solution.transform,
            target_range=solution.target_range,
            distortion=float(self.measure(grayscale, output)),
            power=self.oled.breakdown(output),
            reference_power=self.oled.breakdown(grayscale),
            max_distortion=solution.max_distortion,
        )

    def process(self, image: Image, max_distortion: float) -> DarkenResult:
        """Solve for ``image``'s histogram and replay onto its pixels."""
        return self.apply_solution(self.solve(image, max_distortion), image)
