"""Piecewise Linear Coarsening (PLC) — paper Sec. 4.1, Eq. (8)-(9), Fig. 3.

The exact GHE transformation ``Phi`` has one breakpoint per grayscale level
(``O(|G|)`` segments), far too many for the reference-voltage driver.  The
PLC problem asks for the best approximation ``Lambda`` with a given number of
segments ``m``, where "best" means minimum mean squared error between the two
curves and the approximation's breakpoints must be a subset of the original
ones that keeps the first and last point (Eq. 8).

The paper solves PLC with the dynamic program of Eq. (9):

    E(n, m) = min_{j in 1..n-1} ( E(j, m-1) + e(j) )

where ``e(j)`` is the squared error of replacing all original segments
between breakpoint ``j`` and breakpoint ``n`` by the single chord from
``p_j`` to ``p_n``.  The complexity is ``O(m n^2)``; the chord errors are
precomputed in ``O(n^2)`` with prefix sums, so the whole solver is fast
enough to run per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.transforms import LUTTransform, PiecewiseLinearTransform

__all__ = [
    "PiecewiseLinearCurve",
    "segment_error",
    "chord_error_matrix",
    "coarsen_curve",
    "coarsen_transform",
    "kband_spreading_function",
]


@dataclass(frozen=True)
class PiecewiseLinearCurve:
    """A piecewise-linear curve defined by its breakpoints.

    Attributes
    ----------
    x, y:
        Breakpoint coordinates; ``x`` strictly increasing.
    mean_squared_error:
        Mean squared error of this curve against the curve it approximates
        (0 for an exact curve).
    breakpoint_indices:
        Indices into the original breakpoint set (Eq. 8's requirement that
        ``Q`` is a subset of ``P``); empty tuple for curves not produced by
        coarsening.
    """

    x: tuple[float, ...]
    y: tuple[float, ...]
    mean_squared_error: float = 0.0
    breakpoint_indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1 or x.size != y.size or x.size < 2:
            raise ValueError("need matching 1-D breakpoint arrays with >= 2 points")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x breakpoints must be strictly increasing")
        if self.mean_squared_error < 0:
            raise ValueError("mean squared error cannot be negative")
        object.__setattr__(self, "x", tuple(float(v) for v in x))
        object.__setattr__(self, "y", tuple(float(v) for v in y))

    @property
    def n_points(self) -> int:
        """Number of breakpoints."""
        return len(self.x)

    @property
    def n_segments(self) -> int:
        """Number of linear segments (``n_points - 1``)."""
        return len(self.x) - 1

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the curve by linear interpolation (flat extrapolation)."""
        result = np.interp(np.asarray(x, dtype=np.float64), self.x, self.y)
        return float(result) if np.isscalar(x) else result

    def slopes(self) -> np.ndarray:
        """Slope of every segment."""
        x = np.asarray(self.x)
        y = np.asarray(self.y)
        return np.diff(y) / np.diff(x)

    def is_monotone(self) -> bool:
        """Whether the curve is non-decreasing."""
        return bool(np.all(np.diff(np.asarray(self.y)) >= -1e-12))

    @classmethod
    def from_lut(cls, lut: LUTTransform, levels: int | None = None
                 ) -> "PiecewiseLinearCurve":
        """Exact curve of a per-level LUT: one breakpoint per grayscale level.

        ``x`` runs over the integer levels and ``y`` over the LUT outputs
        scaled to levels (the set ``P`` of Eq. 8).
        """
        n = lut.levels if levels is None else levels
        x = np.arange(n, dtype=np.float64)
        y = np.asarray(lut.table, dtype=np.float64) * (n - 1)
        return cls(tuple(x), tuple(y), 0.0, tuple(range(n)))


def segment_error(x: Sequence[float], y: Sequence[float], start: int,
                  end: int) -> float:
    """Squared error of replacing points ``start..end`` by a single chord.

    This is the paper's ``e(j)`` (with ``start = j`` and ``end = n``): the
    chord runs from ``(x[start], y[start])`` to ``(x[end], y[end])`` and the
    error is the sum of squared vertical deviations of the intermediate
    original points from the chord.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if not 0 <= start < end < x.size:
        raise ValueError(f"invalid chord indices ({start}, {end}) for {x.size} points")
    xs, ys = x[start:end + 1], y[start:end + 1]
    slope = (ys[-1] - ys[0]) / (xs[-1] - xs[0])
    predicted = ys[0] + slope * (xs - xs[0])
    return float(np.sum((ys - predicted) ** 2))


def chord_error_matrix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """All-pairs chord errors ``err[i, j]`` for ``i < j`` in ``O(n^2)``.

    Uses prefix sums of ``y``, ``y^2``, ``x``, ``x^2`` and ``x*y`` so each
    entry costs O(1): with ``a_k = y_k - y_i`` and ``b_k = x_k - x_i`` the
    chord error is ``sum a_k^2 - 2 s sum a_k b_k + s^2 sum b_k^2`` where
    ``s`` is the chord slope.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = x.size
    prefix = {
        "y": np.concatenate([[0.0], np.cumsum(y)]),
        "yy": np.concatenate([[0.0], np.cumsum(y * y)]),
        "x": np.concatenate([[0.0], np.cumsum(x)]),
        "xx": np.concatenate([[0.0], np.cumsum(x * x)]),
        "xy": np.concatenate([[0.0], np.cumsum(x * y)]),
    }

    def window_sum(table: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        # inclusive sum over indices i..j
        return table[j + 1] - table[i]

    i_index, j_index = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    valid = j_index > i_index
    i_flat = i_index[valid]
    j_flat = j_index[valid]

    count = (j_flat - i_flat + 1).astype(np.float64)
    sum_y = window_sum(prefix["y"], i_flat, j_flat)
    sum_yy = window_sum(prefix["yy"], i_flat, j_flat)
    sum_x = window_sum(prefix["x"], i_flat, j_flat)
    sum_xx = window_sum(prefix["xx"], i_flat, j_flat)
    sum_xy = window_sum(prefix["xy"], i_flat, j_flat)

    x_i, y_i = x[i_flat], y[i_flat]
    x_j, y_j = x[j_flat], y[j_flat]
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        slope = (y_j - y_i) / (x_j - x_i)

        sum_a2 = sum_yy - 2.0 * y_i * sum_y + count * y_i * y_i
        sum_b2 = sum_xx - 2.0 * x_i * sum_x + count * x_i * x_i
        sum_ab = sum_xy - x_i * sum_y - y_i * sum_x + count * x_i * y_i

        errors = sum_a2 - 2.0 * slope * sum_ab + slope * slope * sum_b2

    # Adjacent breakpoints form a chord with no interior points: the error is
    # exactly zero, but the formula above can produce 0 * inf = nan when two
    # x values are almost coincident (huge slope).  Force the exact value.
    errors = np.where(j_flat == i_flat + 1, 0.0, errors)
    # Any other non-finite entry (overflowing slope across a near-duplicate
    # abscissa) is treated as an unusable chord.
    errors = np.where(np.isfinite(errors), errors, np.inf)

    matrix = np.zeros((n, n), dtype=np.float64)
    matrix[valid] = np.maximum(errors, 0.0)  # clamp tiny negative round-off
    return matrix


def coarsen_curve(curve: PiecewiseLinearCurve, n_segments: int
                  ) -> PiecewiseLinearCurve:
    """Solve the PLC problem: best subset approximation with <= ``n_segments``.

    Implements the dynamic program of Eq. (9) with the endpoint constraints
    of Eq. (8): the result keeps the first and last breakpoint of ``curve``,
    selects its interior breakpoints from the original set, and minimizes the
    summed squared vertical error at the original breakpoints.  The reported
    error is the *mean* squared error over the original breakpoints (the
    paper's objective).

    One refinement over the paper's statement: the segment budget is treated
    as an upper bound ("at most m") rather than an exact count.  Because the
    approximation must pass through original breakpoints, forcing an extra
    breakpoint can occasionally *increase* the error; the hardware constraint
    (number of controllable voltage sources) is an upper bound anyway.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    x = np.asarray(curve.x, dtype=np.float64)
    y = np.asarray(curve.y, dtype=np.float64)
    n = x.size
    if n_segments >= n - 1:
        # The curve already has at most the requested number of segments.
        return PiecewiseLinearCurve(curve.x, curve.y, 0.0,
                                    tuple(range(n)))

    errors = chord_error_matrix(x, y)

    # cost[j, s]: minimal summed error covering breakpoints 0..j with exactly
    # s chords ending at breakpoint j.
    infinity = np.inf
    cost = np.full((n, n_segments + 1), infinity)
    parent = np.full((n, n_segments + 1), -1, dtype=np.int64)
    cost[0, 0] = 0.0
    for s in range(1, n_segments + 1):
        previous = cost[:, s - 1]
        # candidate[i, j] = cost of reaching i with s-1 chords + chord i->j
        candidate = previous[:, None] + errors
        candidate[np.tril_indices(n)] = infinity  # only i < j allowed
        best_parent = np.argmin(candidate, axis=0)
        best_cost = candidate[best_parent, np.arange(n)]
        cost[:, s] = best_cost
        parent[:, s] = best_parent

    # Use *at most* n_segments chords: because the approximation must
    # interpolate a subset of the original breakpoints (Eq. 8), adding a
    # breakpoint can occasionally increase the error, so the best segment
    # count may be smaller than the budget.  The hardware constraint is an
    # upper bound on the segment count, so picking fewer is always legal.
    final_costs = cost[n - 1, 1:n_segments + 1]
    if not np.any(np.isfinite(final_costs)):
        raise RuntimeError("PLC dynamic program failed to reach the last point")
    best_segments = int(np.argmin(final_costs)) + 1
    total_error = float(final_costs[best_segments - 1])

    # backtrack the chosen breakpoints
    indices = [n - 1]
    node, s = n - 1, best_segments
    while s > 0:
        node = int(parent[node, s])
        indices.append(node)
        s -= 1
    indices.reverse()

    selected_x = tuple(float(x[i]) for i in indices)
    selected_y = tuple(float(y[i]) for i in indices)
    return PiecewiseLinearCurve(
        selected_x,
        selected_y,
        mean_squared_error=float(total_error) / n,
        breakpoint_indices=tuple(indices),
    )


def coarsen_transform(transform: LUTTransform, n_segments: int
                      ) -> PiecewiseLinearCurve:
    """Coarsen an exact GHE LUT transform directly (convenience wrapper)."""
    return coarsen_curve(PiecewiseLinearCurve.from_lut(transform), n_segments)


def kband_spreading_function(curve: PiecewiseLinearCurve,
                             levels: int = 256) -> PiecewiseLinearTransform:
    """Convert a coarsened curve into a normalized k-band transform (Fig. 3).

    The curve's breakpoints (in grayscale levels) are normalized to ``[0, 1]``
    and wrapped in a :class:`PiecewiseLinearTransform` that can be applied to
    images or programmed into the hierarchical reference driver.
    """
    if not curve.is_monotone():
        raise ValueError("a grayscale-spreading function must be monotone")
    scale = float(levels - 1)
    x = np.clip(np.asarray(curve.x) / scale, 0.0, 1.0)
    y = np.clip(np.asarray(curve.y) / scale, 0.0, 1.0)
    # guard against duplicate normalized x after clipping
    x = np.maximum.accumulate(x)
    keep = np.concatenate([[True], np.diff(x) > 0])
    return PiecewiseLinearTransform(tuple(x[keep]), tuple(y[keep]))
