"""Global Histogram Equalization (GHE) — paper Sec. 4, Eq. (4)-(7).

The GHE problem: given the cumulative histogram ``H`` of the original image,
find a monotone transformation ``Phi`` that makes the transformed image's
cumulative histogram as close as possible to the *uniform* cumulative
histogram ``U`` over ``[g_min, g_max]`` (objective Eq. 4).  When the target
is uniform, the classical closed form solves it (Eq. 5):

    Phi(x) = U^{-1}(H(x)) = g_min + (g_max - g_min) * H(x) / N

whose discrete, histogram-based form is Eq. (7) — a running sum of the
marginal histogram scaled to the target range.

HEBS uses GHE in "compression" mode: the target range ``[g_min, g_max]`` is
*smaller* than the source range, producing an image whose dynamic range is at
most ``R = g_max - g_min`` while the grayscale levels that matter (the highly
populated ones) keep most of their resolution — the histogram analogue of
"discard the pixels corresponding to the grayscale levels with low
population" (Sec. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import CumulativeHistogram, Histogram, uniform_cumulative
from repro.core.transforms import LUTTransform
from repro.imaging.image import Image

__all__ = [
    "GHEResult",
    "equalization_transform",
    "equalize_histogram",
    "equalization_objective",
]


@dataclass(frozen=True)
class GHEResult:
    """Outcome of solving the GHE problem for one image/histogram.

    Attributes
    ----------
    transform:
        The monotone transformation ``Phi`` as a per-level LUT (normalized
        outputs), directly applicable to images.
    g_min, g_max:
        Target range limits used for the uniform target histogram.
    objective:
        Value of the (discretized) Eq. (4) objective for the transformed
        histogram: mean absolute difference between the transformed
        cumulative histogram and the uniform target, normalized to ``[0, 1]``.
    source_histogram:
        The histogram the transformation was derived from.
    """

    transform: LUTTransform
    g_min: int
    g_max: int
    objective: float
    source_histogram: Histogram

    @property
    def target_range(self) -> int:
        """The target dynamic range ``R = g_max - g_min``."""
        return self.g_max - self.g_min

    def lut_levels(self) -> np.ndarray:
        """The transformation as integer output levels per input level."""
        levels = self.source_histogram.levels
        return np.rint(np.asarray(self.transform.table) * (levels - 1)).astype(int)

    def apply(self, image: Image) -> Image:
        """Apply ``Phi`` to an image (must share the histogram's bit depth)."""
        if image.levels != self.source_histogram.levels:
            raise ValueError(
                f"image has {image.levels} levels but the transform was built "
                f"for {self.source_histogram.levels}"
            )
        return self.transform.apply(image)


def equalization_transform(histogram: Histogram, g_min: int,
                           g_max: int) -> LUTTransform:
    """The closed-form GHE transformation of Eq. (5)/(7).

    Parameters
    ----------
    histogram:
        Marginal histogram ``h(x)`` of the original image.
    g_min, g_max:
        Limits of the uniform target distribution.  ``g_max - g_min`` is the
        dynamic range ``R`` of the transformed image.

    Returns
    -------
    LUTTransform
        ``Phi`` as a per-level lookup table with normalized outputs.

    Notes
    -----
    The discrete running-sum form (Eq. 7) is evaluated with the convention
    that level ``x`` maps to ``g_min + R * H(x) / N`` where ``H`` is the
    *inclusive* cumulative histogram.  The result is monotone by
    construction because ``H`` is non-decreasing.
    """
    levels = histogram.levels
    if not 0 <= g_min < g_max <= levels - 1:
        raise ValueError(
            f"need 0 <= g_min < g_max <= {levels - 1}, got ({g_min}, {g_max})"
        )
    cumulative = np.cumsum(histogram.counts).astype(np.float64)
    n_pixels = cumulative[-1]
    mapped_levels = g_min + (g_max - g_min) * cumulative / n_pixels
    normalized = np.clip(mapped_levels / (levels - 1), 0.0, 1.0)
    return LUTTransform(tuple(float(v) for v in normalized))


def equalization_objective(transformed: CumulativeHistogram, g_min: int,
                           g_max: int) -> float:
    """Discretized Eq. (4): distance of a cumulative histogram from uniform.

    Measures ``mean_x |H'(x) - U(x)| / N`` where ``H'`` is the cumulative
    histogram of the transformed image and ``U`` the uniform target over
    ``[g_min, g_max]``.  0 means the transformed image is exactly uniform
    over the target range.
    """
    target = uniform_cumulative(transformed.levels, transformed.n_pixels,
                                g_min, g_max)
    return transformed.l1_distance(target)


def equalize_histogram(source: Image | Histogram, g_min: int,
                       g_max: int) -> GHEResult:
    """Solve the GHE problem for an image (or a bare histogram).

    Returns the transformation plus the achieved objective value.  The
    objective is evaluated on the *transformed histogram*: the source
    histogram pushed through ``Phi`` (integer-rounded), i.e. what the display
    would actually show.
    """
    histogram = source if isinstance(source, Histogram) else Histogram.of_image(source)
    transform = equalization_transform(histogram, g_min, g_max)

    # push the histogram through the integer-rounded transformation
    levels = histogram.levels
    lut = np.rint(np.asarray(transform.table) * (levels - 1)).astype(np.int64)
    transformed_counts = np.zeros(levels, dtype=np.int64)
    np.add.at(transformed_counts, lut, histogram.counts)
    transformed_cumulative = CumulativeHistogram(
        np.cumsum(transformed_counts).astype(np.float64))

    objective = equalization_objective(transformed_cumulative, g_min, g_max)
    return GHEResult(
        transform=transform,
        g_min=int(g_min),
        g_max=int(g_max),
        objective=objective,
        source_histogram=histogram,
    )
