"""The end-to-end HEBS pipeline — paper Fig. 4 and the 4-step algorithm of Sec. 1.

Given an original image ``F`` and a maximum tolerable distortion ``D_max``:

1. Look up the minimum admissible dynamic range ``R`` from the distortion
   characteristic curve, and derive the optimum backlight scaling factor
   ``beta`` from ``R`` and the panel transmissivity.
2. Solve GHE: a transformation ``Phi`` mapping the original histogram to a
   uniform histogram over ``[g_min, g_min + R]``.
3. Coarsen ``Phi`` into a piecewise-linear ``Lambda`` with at most ``m``
   segments (PLC) so the hierarchical reference driver can realize it.
4. Apply ``Lambda`` to the image, program the driver's reference voltages
   (Eq. 10) and dim the backlight to ``beta``.

:class:`HEBS` packages these steps; :class:`HEBSResult` carries everything an
experiment needs: the transformed image, the driver program, the achieved
distortion and the power accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.distortion_curve import DistortionCharacteristicCurve
from repro.core.equalization import GHEResult, equalize_histogram
from repro.core.histogram import Histogram
from repro.core.plc import (
    PiecewiseLinearCurve,
    coarsen_transform,
    kband_spreading_function,
)
from repro.core.transforms import PiecewiseLinearTransform
from repro.display.driver import DriverProgram, HierarchicalDriver
from repro.display.power import DisplayPowerModel, PowerBreakdown
from repro.imaging.image import Image
from repro.quality.distortion import DistortionMeasure, get_measure

__all__ = ["HEBSConfig", "HEBSResult", "HEBSSolution", "HEBS"]


@dataclass(frozen=True)
class HEBSConfig:
    """Tunable knobs of the HEBS pipeline.

    Parameters
    ----------
    n_segments:
        Number of linear segments of the coarsened transformation
        ``Lambda`` — bounded by the number of controllable sources of the
        hierarchical driver (Sec. 4.1).
    g_min:
        Lower limit of the equalization target range.  0 (the default)
        maximizes backlight dimming because the compensated image then uses
        the full voltage swing.
    worst_case_curve:
        Whether step 1 consults the worst-case fit (guaranteeing the budget
        for every characterized image) or the dataset-average fit.  The
        dataset fit is the default; the worst-case fit is markedly more
        conservative because it is dominated by the hardest benchmark
        (the synthetic test chart).
    distortion_measure:
        Name of the measure used to *report* the achieved distortion of a
        result (the characteristic curve has its own measure).
    driver_sources:
        Number of controllable voltage sources of the hierarchical driver.
    vdd:
        Driver supply voltage.
    equalization:
        Name of the equalization method used in step 2 (``"ghe"``,
        ``"clipped"`` or ``"bbhe"`` — see
        :mod:`repro.core.equalization_variants`).  All methods honour the
        same range-compression contract, so steps 3 and 4 are unchanged.
    """

    n_segments: int = 8
    g_min: int = 0
    worst_case_curve: bool = False
    distortion_measure: str = "effective"
    driver_sources: int = 8
    vdd: float = 3.3
    equalization: str = "ghe"

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ValueError("n_segments must be at least 1")
        if self.g_min < 0:
            raise ValueError("g_min must be non-negative")
        if self.driver_sources < self.n_segments:
            raise ValueError(
                "the driver needs at least as many sources as the requested "
                f"number of segments ({self.driver_sources} < {self.n_segments})"
            )
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")


@dataclass(frozen=True)
class HEBSResult:
    """Everything produced by one run of the HEBS pipeline on one image.

    Attributes
    ----------
    original:
        The (grayscale) input image ``F``.
    transformed:
        The image after applying the coarsened transformation ``Lambda``
        (this is what sits in front of the dimmed backlight).
    target_range:
        The dynamic range ``R`` selected in step 1.
    backlight_factor:
        The dimming factor ``beta`` of step 1/4.
    ghe:
        The exact GHE solution (step 2).
    coarse_curve:
        The PLC solution (step 3) in grayscale-level coordinates.
    transform:
        ``Lambda`` as a normalized piecewise-linear transform.
    driver_program:
        The programmed reference voltages (Eq. 10).
    distortion:
        Achieved distortion (percent) measured between ``original`` and
        ``transformed`` with the configured measure.
    power:
        Power breakdown of displaying ``transformed`` at ``beta``.
    reference_power:
        Power breakdown of displaying ``original`` at full backlight.
    """

    original: Image
    transformed: Image
    target_range: int
    backlight_factor: float
    ghe: GHEResult
    coarse_curve: PiecewiseLinearCurve
    transform: PiecewiseLinearTransform
    driver_program: DriverProgram
    distortion: float
    power: PowerBreakdown
    reference_power: PowerBreakdown
    max_distortion: float | None = field(default=None)

    @property
    def power_saving(self) -> float:
        """Fractional display-power saving versus the full-backlight original."""
        return self.power.saving_versus(self.reference_power)

    @property
    def power_saving_percent(self) -> float:
        """Power saving in percent (the Table-1 unit)."""
        return 100.0 * self.power_saving

    def summary(self) -> dict[str, float]:
        """Compact dictionary of the headline numbers (for reports/tests)."""
        return {
            "target_range": float(self.target_range),
            "backlight_factor": self.backlight_factor,
            "distortion_percent": self.distortion,
            "power_saving_percent": self.power_saving_percent,
            "plc_mse": self.coarse_curve.mean_squared_error,
            "n_segments": float(self.coarse_curve.n_segments),
        }


@dataclass(frozen=True)
class HEBSSolution:
    """The image-independent part of a HEBS run (the paper's Fig. 4 insight).

    Steps 1-3 of the pipeline — range selection, equalization and PLC — plus
    the driver programming depend only on the image *histogram* and the
    distortion budget, never on the pixel layout.  A solution can therefore
    be derived once per (histogram, budget) pair and replayed onto any image
    with a matching histogram by :meth:`HEBS.apply_solution`; this is what
    the :mod:`repro.api` engine caches.

    Attributes
    ----------
    target_range:
        The dynamic range ``R`` selected in step 1.
    backlight_factor:
        The dimming factor ``beta``.
    ghe:
        The exact equalization solution (step 2).
    coarse_curve:
        The PLC solution (step 3) in grayscale-level coordinates.
    transform:
        ``Lambda`` as a normalized piecewise-linear transform.
    driver_program:
        The programmed reference voltages (Eq. 10).
    max_distortion:
        The budget the solution was derived for (``None`` when the range was
        chosen explicitly).
    """

    target_range: int
    backlight_factor: float
    ghe: GHEResult
    coarse_curve: PiecewiseLinearCurve
    transform: PiecewiseLinearTransform
    driver_program: DriverProgram
    max_distortion: float | None = None

    @property
    def levels(self) -> int:
        """Number of grayscale levels the solution was derived for."""
        return self.ghe.source_histogram.levels


class HEBS:
    """Histogram Equalization for Backlight Scaling (the paper's algorithm).

    Parameters
    ----------
    curve:
        A fitted :class:`DistortionCharacteristicCurve` used to turn a
        distortion budget into a minimum admissible dynamic range.  Build one
        with :func:`repro.core.distortion_curve.build_distortion_curve` or
        grab the pre-characterized one from
        :func:`repro.bench.suite.default_curve`.
    config:
        Pipeline knobs; defaults follow the paper (8-segment PLC, g_min = 0,
        worst-case curve).
    power_model:
        Display power model used for the power accounting (defaults to the
        LP064V1 CCFL + panel).
    """

    def __init__(self, curve: DistortionCharacteristicCurve,
                 config: HEBSConfig | None = None,
                 power_model: DisplayPowerModel | None = None) -> None:
        self.curve = curve
        self.config = config or HEBSConfig()
        self.power_model = power_model or DisplayPowerModel()
        self.driver = HierarchicalDriver(
            n_sources=self.config.driver_sources,
            vdd=self.config.vdd,
            levels=curve.levels,
        )
        self._measure: DistortionMeasure = get_measure(
            self.config.distortion_measure)
        if self.config.equalization == "ghe":
            self._equalizer = equalize_histogram
        else:
            # deferred import: equalization_variants depends on core.equalization
            from repro.core.equalization_variants import get_equalizer
            self._equalizer = get_equalizer(self.config.equalization)

    # ------------------------------------------------------------------ #
    # step 1: distortion budget -> dynamic range -> backlight factor
    # ------------------------------------------------------------------ #
    def select_range(self, max_distortion: float) -> int:
        """Minimum admissible dynamic range for a distortion budget (step 1)."""
        return self.curve.min_range_for_distortion(
            max_distortion, worst_case=self.config.worst_case_curve)

    def backlight_factor_for_range(self, target_range: int) -> float:
        """Optimum backlight scaling factor for a target dynamic range.

        The transformed image occupies ``[g_min, g_min + R]``; after the
        Eq. (10) compensation the brightest programmed voltage corresponds to
        level ``(g_min + R) / beta``, which must stay representable, so the
        most aggressive dimming is ``beta = t(g_max) / t(max_level)``
        (``= g_max / max_level`` for the ideal linear transmissivity).
        """
        levels = self.curve.levels
        g_max = self.config.g_min + target_range
        if not 0 < g_max <= levels - 1:
            raise ValueError(
                f"target range {target_range} with g_min={self.config.g_min} "
                f"exceeds the display range"
            )
        transmissivity = self.power_model.panel.transmissivity
        beta = transmissivity.backlight_for_range(g_max, levels)
        return float(min(max(beta, 0.0), 1.0))

    # ------------------------------------------------------------------ #
    # steps 2-4
    # ------------------------------------------------------------------ #
    def solve_range(self, source: Image | Histogram, target_range: int,
                    max_distortion: float | None = None) -> HEBSSolution:
        """Derive the transformation and driver program for a dynamic range.

        Runs steps 2-3 plus the driver programming of step 4 — everything
        that depends only on the histogram, not on the pixel layout.  Accepts
        a bare :class:`~repro.core.histogram.Histogram`, which is all the
        real-time flow of Fig. 4 needs.
        """
        if isinstance(source, Histogram):
            histogram = source
        else:
            histogram = Histogram.of_image(source.to_grayscale())
        levels = histogram.levels
        if levels != self.curve.levels:
            raise ValueError(
                f"image has {levels} levels but the pipeline was characterized "
                f"for {self.curve.levels}"
            )
        if not 1 <= target_range <= levels - 1 - self.config.g_min:
            raise ValueError(
                f"target range must be in [1, {levels - 1 - self.config.g_min}], "
                f"got {target_range}"
            )

        beta = self.backlight_factor_for_range(target_range)
        g_min = self.config.g_min
        g_max = g_min + target_range

        # step 2: exact equalization transformation (GHE by default)
        ghe = self._equalizer(histogram, g_min, g_max)

        # step 3: piecewise linear coarsening
        coarse = coarsen_transform(ghe.transform, self.config.n_segments)
        transform = kband_spreading_function(coarse, levels=levels)

        # step 4 (driver half): program the reference voltages (Eq. 10)
        program = self.driver.program(
            np.asarray(coarse.x), np.asarray(coarse.y), beta)

        return HEBSSolution(
            target_range=int(target_range),
            backlight_factor=beta,
            ghe=ghe,
            coarse_curve=coarse,
            transform=transform,
            driver_program=program,
            max_distortion=max_distortion,
        )

    def apply_solution(self, solution: HEBSSolution, image: Image) -> HEBSResult:
        """Replay a solved transformation onto an image (step 4).

        Applies ``Lambda``, measures the achieved distortion and accounts the
        power — the only per-pixel work of the pipeline.  The solution may
        come fresh from :meth:`solve_range` or from a cache keyed on the
        image histogram (see :mod:`repro.api.cache`).
        """
        grayscale = image.to_grayscale()
        if grayscale.levels != solution.levels:
            raise ValueError(
                f"image has {grayscale.levels} levels but the solution was "
                f"derived for {solution.levels}"
            )
        transformed = solution.transform.apply(grayscale)
        distortion = float(self._measure(grayscale, transformed))
        power = self.power_model.breakdown(transformed,
                                           solution.backlight_factor)
        reference = self.power_model.reference(grayscale)
        return HEBSResult(
            original=grayscale,
            transformed=transformed,
            target_range=solution.target_range,
            backlight_factor=solution.backlight_factor,
            ghe=solution.ghe,
            coarse_curve=solution.coarse_curve,
            transform=solution.transform,
            driver_program=solution.driver_program,
            distortion=distortion,
            power=power,
            reference_power=reference,
            max_distortion=solution.max_distortion,
        )

    def process_with_range(self, image: Image, target_range: int,
                           max_distortion: float | None = None) -> HEBSResult:
        """Run steps 2-4 for an explicitly chosen dynamic range.

        Used directly by the Fig. 8 experiment (which fixes R to 220 and
        100) and internally by :meth:`process`.
        """
        grayscale = image.to_grayscale()
        solution = self.solve_range(grayscale, target_range,
                                    max_distortion=max_distortion)
        return self.apply_solution(solution, grayscale)

    def process(self, image: Image, max_distortion: float) -> HEBSResult:
        """Run the full HEBS flow for a distortion budget (steps 1-4).

        Step 1 consults the global distortion characteristic curve, exactly
        as in the paper's real-time flow (Fig. 4): the selected dynamic
        range depends only on the budget, not on the particular image.  Use
        :meth:`process_adaptive` to pick the range per image instead.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        target_range = self.select_range(max_distortion)
        return self.process_with_range(image, target_range,
                                       max_distortion=max_distortion)

    def process_adaptive(self, image: Image, max_distortion: float,
                         range_tolerance: int = 2) -> HEBSResult:
        """Run HEBS with per-image dynamic-range selection.

        Instead of consulting the global characteristic curve, the smallest
        dynamic range whose *measured* distortion (for this very image, with
        the coarsened transform actually applied) stays within the budget is
        found by bisection.  This is the offline/per-image variant implied by
        the per-image spread of the paper's Table 1, and it is what the
        Table-1 and comparison experiments use.

        Parameters
        ----------
        image:
            The image to transform.
        max_distortion:
            Distortion budget in percent.
        range_tolerance:
            Bisection stops when the feasible/infeasible bracket is this many
            grayscale levels wide.

        Returns
        -------
        HEBSResult
            The result at the selected dynamic range.  If even the full
            range exceeds the budget (pathological images under a very tight
            budget) the full-range result is returned — no compression and
            essentially no power saving, but never a budget violation that
            could have been avoided.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        if range_tolerance < 1:
            raise ValueError("range_tolerance must be at least 1")
        levels = self.curve.levels
        full_range = levels - 1 - self.config.g_min

        full_result = self.process_with_range(image, full_range,
                                              max_distortion=max_distortion)
        if full_result.distortion > max_distortion:
            return full_result

        low = 1                      # known (or assumed) infeasible
        high = full_range            # known feasible
        best = full_result
        while high - low > range_tolerance:
            middle = (low + high) // 2
            candidate = self.process_with_range(image, middle,
                                                max_distortion=max_distortion)
            if candidate.distortion <= max_distortion:
                high = middle
                best = candidate
            else:
                low = middle
        return best

    def with_config(self, **changes) -> "HEBS":
        """A copy of this pipeline with some configuration fields changed."""
        return HEBS(self.curve, replace(self.config, **changes),
                    self.power_model)
