"""The paper's primary contribution: Histogram Equalization for Backlight Scaling.

Modules
-------
* :mod:`~repro.core.histogram` — marginal and cumulative image histograms,
  uniform target histograms (Sec. 4 footnote 3), histogram statistics.
* :mod:`~repro.core.transforms` — the pixel-transformation-function family
  of Fig. 2 plus generic LUT / piecewise-linear transforms.
* :mod:`~repro.core.equalization` — the Global Histogram Equalization (GHE)
  solver, Eq. (4)-(7).
* :mod:`~repro.core.plc` — Piecewise Linear Coarsening via dynamic
  programming, Eq. (8)-(9), and the k-band grayscale-spreading function.
* :mod:`~repro.core.distortion_curve` — the distortion characteristic curve
  (Sec. 3 / 5.1c) that maps a distortion budget to a minimum admissible
  dynamic range.
* :mod:`~repro.core.pipeline` — the end-to-end HEBS flow of Fig. 4.
* :mod:`~repro.core.color` — applying the pipeline to RGB images (Sec. 2's
  colour-LCD discussion).
* :mod:`~repro.core.temporal` — flicker-free backlight control over frame
  streams (smoothing, rolling histograms, scene-change detection).
* :mod:`~repro.core.equalization_variants` — alternative equalization
  methods (clipped / bi-histogram), the paper's stated future work.
"""

from repro.core.histogram import Histogram, CumulativeHistogram, uniform_cumulative
from repro.core.transforms import (
    PixelTransform,
    IdentityTransform,
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    SingleBandSpreadTransform,
    PiecewiseLinearTransform,
    LUTTransform,
)
from repro.core.equalization import (
    GHEResult,
    equalize_histogram,
    equalization_transform,
    equalization_objective,
)
from repro.core.plc import (
    PiecewiseLinearCurve,
    coarsen_curve,
    segment_error,
    kband_spreading_function,
)
from repro.core.distortion_curve import (
    DistortionCharacteristicCurve,
    DistortionSample,
    build_distortion_curve,
)
from repro.core.pipeline import HEBS, HEBSConfig, HEBSResult
from repro.core.color import ColorHEBS, ColorHEBSResult
from repro.core.temporal import (
    BacklightSmoother,
    RollingHistogram,
    SceneChangeDetector,
    TemporalBacklightController,
    TemporalFrameResult,
)
from repro.core.equalization_variants import (
    clipped_equalization,
    bi_histogram_equalization,
    available_equalizers,
    get_equalizer,
)

__all__ = [
    "Histogram",
    "CumulativeHistogram",
    "uniform_cumulative",
    "PixelTransform",
    "IdentityTransform",
    "GrayscaleShiftTransform",
    "GrayscaleSpreadTransform",
    "SingleBandSpreadTransform",
    "PiecewiseLinearTransform",
    "LUTTransform",
    "GHEResult",
    "equalize_histogram",
    "equalization_transform",
    "equalization_objective",
    "PiecewiseLinearCurve",
    "coarsen_curve",
    "segment_error",
    "kband_spreading_function",
    "DistortionCharacteristicCurve",
    "DistortionSample",
    "build_distortion_curve",
    "HEBS",
    "HEBSConfig",
    "HEBSResult",
    "ColorHEBS",
    "ColorHEBSResult",
    "BacklightSmoother",
    "RollingHistogram",
    "SceneChangeDetector",
    "TemporalBacklightController",
    "TemporalFrameResult",
    "clipped_equalization",
    "bi_histogram_equalization",
    "available_equalizers",
    "get_equalizer",
]
