"""Command-line interface for the HEBS reproduction.

Installed as ``python -m repro``; four subcommands cover the common
workflows:

``process``
    Run HEBS on one image (a built-in benchmark name or a PGM/PPM/CSV file),
    print the selected dynamic range / backlight factor / power saving, and
    optionally write the transformed image.

``characterize``
    Build the distortion characteristic curve for a directory of images (or
    the built-in suite) and print the Fig. 7 style table plus the budget →
    range mapping.

``experiment``
    Re-run one of the paper experiments (``table1``, ``fig2`` ... ``fig8``,
    ``comparison``, ``abl-m``, ``abl-dist``) and print the reproduced rows.

``benchmarks``
    List the built-in synthetic benchmark images with their statistics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.reporting import Table
from repro.bench import experiments as paper_experiments
from repro.bench.suite import benchmark_images, default_pipeline
from repro.core.distortion_curve import build_distortion_curve
from repro.imaging.io import read_image, write_image
from repro.imaging.synthetic import benchmark_names
from repro.quality.distortion import available_measures

__all__ = ["main", "build_parser"]

#: Experiment ids accepted by ``repro experiment`` mapped to their callables.
_EXPERIMENTS = {
    "table1": paper_experiments.table1_power_saving,
    "fig2": paper_experiments.figure2_transform_functions,
    "fig3": paper_experiments.figure3_kband_function,
    "fig6a": paper_experiments.figure6a_ccfl_characterization,
    "fig6b": paper_experiments.figure6b_panel_characterization,
    "fig7": paper_experiments.figure7_distortion_curve,
    "fig8": paper_experiments.figure8_sample_transforms,
    "comparison": paper_experiments.comparison_vs_baselines,
    "abl-m": paper_experiments.ablation_plc_segments,
    "abl-dist": paper_experiments.ablation_distortion_measures,
    "abl-eq": paper_experiments.ablation_equalization_methods,
    "interface": paper_experiments.interface_encoding_study,
}


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def _load_image(source: str):
    if source.lower() in benchmark_names():
        return benchmark_images(names=(source,))[source.lower()]
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"error: {source!r} is neither a benchmark name nor an existing file")
    return read_image(path)


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_process(args: argparse.Namespace) -> int:
    image = _load_image(args.image).to_grayscale()
    pipeline = default_pipeline()
    if args.adaptive:
        result = pipeline.process_adaptive(image, args.budget)
    else:
        result = pipeline.process(image, args.budget)

    table = Table(
        title=f"HEBS on {args.image} (budget {args.budget:g}%)",
        columns=("quantity", "value"),
        precision=3,
    ).with_rows([
        {"quantity": "dynamic range", "value": result.target_range},
        {"quantity": "backlight factor", "value": result.backlight_factor},
        {"quantity": "achieved distortion %", "value": result.distortion},
        {"quantity": "power saving %", "value": result.power_saving_percent},
        {"quantity": "PLC segments", "value": result.coarse_curve.n_segments},
        {"quantity": "PLC mse", "value": result.coarse_curve.mean_squared_error},
    ])
    _print(table.render())
    _print("reference voltages (V): "
           + ", ".join(f"{float(v):.3f}"
                       for v in result.driver_program.reference_voltages))
    if args.output:
        write_image(result.transformed, args.output)
        _print(f"transformed image written to {args.output}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    if args.directory:
        root = Path(args.directory)
        paths = sorted(p for p in root.iterdir()
                       if p.suffix.lower() in (".pgm", ".ppm", ".pnm", ".csv"))
        if not paths:
            raise SystemExit(f"error: no supported images in {root}")
        images = {path.stem: read_image(path) for path in paths}
    else:
        images = benchmark_images()
    curve = build_distortion_curve(images, measure=args.measure)

    ranges = sorted({sample.target_range for sample in curve.samples})
    table = Table(
        title=f"Distortion characteristic curve ({args.measure})",
        columns=("dynamic range", "dataset fit %", "worst-case fit %"),
    ).with_rows(
        {
            "dynamic range": target,
            "dataset fit %": float(curve.predict(target)),
            "worst-case fit %": float(curve.predict(target, worst_case=True)),
        }
        for target in ranges
    )
    _print(table.render())

    budget_table = Table(
        title="Budget -> minimum admissible dynamic range",
        columns=("budget %", "range (dataset)", "range (worst case)"),
    ).with_rows(
        {
            "budget %": budget,
            "range (dataset)": curve.min_range_for_distortion(budget,
                                                              worst_case=False),
            "range (worst case)": curve.min_range_for_distortion(budget,
                                                                 worst_case=True),
        }
        for budget in (2.0, 5.0, 10.0, 20.0, 30.0)
    )
    _print("")
    _print(budget_table.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = _EXPERIMENTS[args.id]
    outcome = runner()
    if isinstance(outcome, Table):
        _print(outcome.render())
    elif isinstance(outcome, dict):
        for key, value in outcome.items():
            if hasattr(value, "shape"):
                _print(f"{key}: array{tuple(value.shape)}")
            elif isinstance(value, dict):
                _print(f"{key}: " + ", ".join(
                    f"{inner}={float(v):.4f}" for inner, v in value.items()))
            else:
                _print(f"{key}: {value}")
    else:   # pragma: no cover - defensive, all experiments return Table/dict
        _print(repr(outcome))
    return 0


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    del args
    table = Table(
        title="Built-in synthetic benchmark images (USC-SIPI stand-ins)",
        columns=("name", "size", "mean", "std", "dynamic range"),
        precision=1,
    ).with_rows(
        {
            "name": name,
            "size": f"{image.width}x{image.height}",
            "mean": image.mean(),
            "std": image.std(),
            "dynamic range": image.dynamic_range(),
        }
        for name, image in benchmark_images().items()
    )
    _print(table.render())
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HEBS: Histogram Equalization for Backlight Scaling "
                    "(DATE 2005) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    process = subparsers.add_parser(
        "process", help="run HEBS on one image")
    process.add_argument("image", help="benchmark name or image file path")
    process.add_argument("--budget", type=float, default=10.0,
                         help="maximum tolerable distortion in percent")
    process.add_argument("--adaptive", action="store_true",
                         help="select the dynamic range per image (bisection) "
                              "instead of using the characteristic curve")
    process.add_argument("--output", help="write the transformed image here")
    process.set_defaults(func=_cmd_process)

    characterize = subparsers.add_parser(
        "characterize", help="build a distortion characteristic curve")
    characterize.add_argument("--directory",
                              help="directory of .pgm/.ppm/.csv images "
                                   "(default: the built-in suite)")
    characterize.add_argument("--measure", default="effective",
                              choices=available_measures(),
                              help="distortion measure to characterize with")
    characterize.set_defaults(func=_cmd_characterize)

    experiment = subparsers.add_parser(
        "experiment", help="re-run one of the paper experiments")
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS),
                            help="experiment identifier (see DESIGN.md §4)")
    experiment.set_defaults(func=_cmd_experiment)

    benchmarks = subparsers.add_parser(
        "benchmarks", help="list the built-in benchmark images")
    benchmarks.set_defaults(func=_cmd_benchmarks)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
