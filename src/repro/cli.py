"""Command-line interface for the HEBS reproduction.

Installed as ``repro`` (console script) and ``python -m repro``; the
subcommands cover the common workflows:

``process``
    Run any registered algorithm on one image (a built-in benchmark name or
    a PGM/PPM/CSV file) through the unified :mod:`repro.api` engine, print
    the backlight factor / distortion / power saving, and optionally write
    the compensated image.

``batch``
    Run a whole set of images through :meth:`Engine.process_batch` and print
    per-image results plus the solution-cache statistics.

``algorithms``
    List the algorithms registered with :mod:`repro.api.registry`.

``characterize``
    Build the distortion characteristic curve for a directory of images (or
    the built-in suite) and print the Fig. 7 style table plus the budget →
    range mapping.

``experiment``
    Re-run one of the paper experiments (``table1``, ``fig2`` ... ``fig8``,
    ``comparison``, ``abl-m``, ``abl-dist``, ``throughput``) and print the
    reproduced rows.

``serve``
    Start the concurrent serving layer (:mod:`repro.serve`): warm up the
    solution cache on the benchmark corpus, run a request workload through
    the micro-batching worker pool, and print the live statistics snapshot.
    With ``--port`` (and optionally ``--host``) it serves over TCP instead:
    the asyncio :class:`~repro.serve.net.NetworkServer` speaks the wire
    protocol of :mod:`repro.serve.protocol` until interrupted, and
    :mod:`repro.client` (or ``repro loadtest --connect``) drives it from
    another process.

``loadtest``
    Hammer a server with N concurrent clients on a duplicate-heavy
    workload; print throughput / latency percentiles / cache efficiency,
    optionally against the serial per-request baseline, and optionally emit
    the report as JSON (the CI perf artifact).  ``--streams N`` switches to
    the video-client mode: N concurrent stream sessions each push a
    ``--frames``-frame clip through the server's session layer.
    ``--connect HOST:PORT`` drives a *remote* ``repro serve --port`` server
    instead of an in-process one: every client thread gets its own TCP
    connection through :class:`repro.client.RemoteServerAdapter`.

``benchmarks``
    List the built-in synthetic benchmark images with their statistics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.reporting import Table
from repro.api.registry import (
    algorithm_descriptions,
    algorithm_display_classes,
    available_algorithms,
)
from repro.bench import experiments as paper_experiments
from repro.bench.suite import benchmark_images, default_engine
from repro.bench.throughput import throughput_benchmark
from repro.core.darken import DarkenResult
from repro.core.distortion_curve import build_distortion_curve
from repro.core.pipeline import HEBSResult
from repro.imaging.io import read_image, write_image
from repro.imaging.synthetic import benchmark_names
from repro.quality.distortion import available_measures

__all__ = ["main", "build_parser"]

#: Experiment ids accepted by ``repro experiment`` mapped to their callables.
_EXPERIMENTS = {
    "table1": paper_experiments.table1_power_saving,
    "fig2": paper_experiments.figure2_transform_functions,
    "fig3": paper_experiments.figure3_kband_function,
    "fig6a": paper_experiments.figure6a_ccfl_characterization,
    "fig6b": paper_experiments.figure6b_panel_characterization,
    "fig7": paper_experiments.figure7_distortion_curve,
    "fig8": paper_experiments.figure8_sample_transforms,
    "comparison": paper_experiments.comparison_vs_baselines,
    "abl-m": paper_experiments.ablation_plc_segments,
    "abl-dist": paper_experiments.ablation_distortion_measures,
    "abl-eq": paper_experiments.ablation_equalization_methods,
    "interface": paper_experiments.interface_encoding_study,
    "throughput": throughput_benchmark,
}


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def _load_image(source: str):
    if source.lower() in benchmark_names():
        return benchmark_images(names=(source,))[source.lower()]
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"error: {source!r} is neither a benchmark name nor an existing file")
    return read_image(path)


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _resolve_algorithm(args: argparse.Namespace) -> str:
    """The registry name implied by ``--algorithm`` / legacy ``--adaptive``."""
    algorithm = args.algorithm
    if getattr(args, "adaptive", False):
        if algorithm not in ("hebs", "hebs-adaptive"):
            raise SystemExit(
                f"error: --adaptive is HEBS-specific and cannot be combined "
                f"with --algorithm {algorithm}")
        algorithm = "hebs-adaptive"
    return algorithm


def _parse_algorithms(value, *, allow_multiple: bool = False) -> list[str]:
    """Validate an ``--algorithm`` value against the registry.

    The serving commands share one flag; ``loadtest`` additionally accepts
    a comma-separated list (the mixed display-class workload), which the
    single-algorithm commands reject with a clean error.
    """
    names = [name.strip() for name in str(value).split(",") if name.strip()]
    if not names:
        raise SystemExit("error: --algorithm must name an algorithm")
    available = available_algorithms()
    for name in names:
        if name not in available:
            raise SystemExit(
                f"error: unknown algorithm {name!r}; available: "
                f"{', '.join(available)}")
    if len(names) > 1 and not allow_multiple:
        raise SystemExit(
            "error: this command takes a single algorithm "
            "(a comma-separated mix is a loadtest feature)")
    return names


def _policy_budget(args: argparse.Namespace) -> float | None:
    """The budget derived from operating-condition flags, or ``None`` when
    no sensor flag was given (the explicit ``--budget`` stands)."""
    if (args.ambient_lux is None and args.battery is None
            and not args.charging):
        return None
    # deferred import: the policy layer is only needed when flags are used
    from repro.api.budget import BudgetPolicy, OperatingConditions

    conditions = OperatingConditions(
        ambient_lux=250.0 if args.ambient_lux is None else args.ambient_lux,
        battery_level=1.0 if args.battery is None else args.battery,
        charging=bool(args.charging))
    budget = BudgetPolicy().budget_for(conditions)
    _print(f"budget policy: {conditions.ambient_lux:g} lux, "
           f"battery {100.0 * conditions.battery_level:g}%"
           f"{' (charging)' if conditions.charging else ''} "
           f"-> {budget:g}% distortion budget")
    return budget


def _cmd_process(args: argparse.Namespace) -> int:
    image = _load_image(args.image).to_grayscale()
    algorithm = _resolve_algorithm(args)
    engine = default_engine(algorithm=algorithm)
    budget = args.budget
    policy_budget = _policy_budget(args)
    if policy_budget is not None:
        budget = policy_budget
    result = engine.process(image, budget)

    rows = [
        {"quantity": "algorithm", "value": result.algorithm},
        {"quantity": "backlight factor", "value": result.backlight_factor},
        {"quantity": "achieved distortion %", "value": result.distortion},
        {"quantity": "power saving %", "value": result.power_saving_percent},
    ]
    if isinstance(result.details, HEBSResult):
        rows[1:1] = [{"quantity": "dynamic range",
                      "value": result.details.target_range}]
        rows.extend([
            {"quantity": "PLC segments",
             "value": result.details.coarse_curve.n_segments},
            {"quantity": "PLC mse",
             "value": result.details.coarse_curve.mean_squared_error},
        ])
    elif isinstance(result.details, DarkenResult):
        rows[1:1] = [{"quantity": "darkening range",
                      "value": result.details.target_range}]
        rows.extend([
            {"quantity": "emissive power",
             "value": result.details.power.emissive},
            {"quantity": "driver overhead",
             "value": result.details.power.overhead},
        ])
    table = Table(
        title=f"{result.algorithm} on {args.image} (budget {budget:g}%)",
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(rows)
    _print(table.render())
    if result.driver_program is not None:
        _print("reference voltages (V): "
               + ", ".join(f"{float(v):.3f}"
                           for v in result.driver_program.reference_voltages))
    if args.output:
        write_image(result.output, args.output)
        _print(f"transformed image written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.images:
        images = [_load_image(source).to_grayscale()
                  for source in args.images]
        labels = list(args.images)
    else:
        suite = benchmark_images()
        images = list(suite.values())
        labels = list(suite)
    images = images * max(args.repeat, 1)
    labels = labels * max(args.repeat, 1)

    engine = default_engine(algorithm=args.algorithm)
    results = engine.process_batch(images, args.budget,
                                   algorithm=args.algorithm)

    table = Table(
        title=(f"{args.algorithm} batch: {len(images)} images at a "
               f"{args.budget:g}% budget"),
        columns=("image", "backlight", "distortion%", "saving%", "cached"),
        precision=3,
    ).with_rows(
        {
            "image": label,
            "backlight": result.backlight_factor,
            "distortion%": result.distortion,
            "saving%": result.power_saving_percent,
            "cached": ("replay" if result.replayed
                       else "yes" if result.from_cache else "no"),
        }
        for label, result in zip(labels, results)
    )
    _print(table.render())
    stats = engine.cache_stats
    _print(f"solution cache: {stats.hits} hits / {stats.misses} misses / "
           f"{stats.replays} replays (hit rate {100.0 * stats.hit_rate:.1f}%, "
           f"reuse rate {100.0 * stats.reuse_rate:.1f}%, size {stats.size})")
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    del args
    display_classes = algorithm_display_classes()
    table = Table(
        title="Registered compensation algorithms (repro.api.registry)",
        columns=("name", "display", "description"),
    ).with_rows(
        {"name": name, "display": display_classes[name],
         "description": description}
        for name, description in algorithm_descriptions().items()
    )
    _print(table.render())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    if args.directory:
        root = Path(args.directory)
        paths = sorted(p for p in root.iterdir()
                       if p.suffix.lower() in (".pgm", ".ppm", ".pnm", ".csv"))
        if not paths:
            raise SystemExit(f"error: no supported images in {root}")
        images = {path.stem: read_image(path) for path in paths}
    else:
        images = benchmark_images()
    curve = build_distortion_curve(images, measure=args.measure)

    ranges = sorted({sample.target_range for sample in curve.samples})
    table = Table(
        title=f"Distortion characteristic curve ({args.measure})",
        columns=("dynamic range", "dataset fit %", "worst-case fit %"),
    ).with_rows(
        {
            "dynamic range": target,
            "dataset fit %": float(curve.predict(target)),
            "worst-case fit %": float(curve.predict(target, worst_case=True)),
        }
        for target in ranges
    )
    _print(table.render())

    budget_table = Table(
        title="Budget -> minimum admissible dynamic range",
        columns=("budget %", "range (dataset)", "range (worst case)"),
    ).with_rows(
        {
            "budget %": budget,
            "range (dataset)": curve.min_range_for_distortion(budget,
                                                              worst_case=False),
            "range (worst case)": curve.min_range_for_distortion(budget,
                                                                 worst_case=True),
        }
        for budget in (2.0, 5.0, 10.0, 20.0, 30.0)
    )
    _print("")
    _print(budget_table.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = _EXPERIMENTS[args.id]
    outcome = runner()
    if isinstance(outcome, Table):
        _print(outcome.render())
    elif isinstance(outcome, dict):
        for key, value in outcome.items():
            if hasattr(value, "shape"):
                _print(f"{key}: array{tuple(value.shape)}")
            elif isinstance(value, dict):
                _print(f"{key}: " + ", ".join(
                    f"{inner}={float(v):.4f}" for inner, v in value.items()))
            else:
                _print(f"{key}: {value}")
    else:   # pragma: no cover - defensive, all experiments return Table/dict
        _print(repr(outcome))
    return 0


def _serving_workload(count: int) -> list:
    """``count`` images cycling through the benchmark suite (duplicate-heavy
    once ``count`` exceeds the suite size — the serving sweet spot)."""
    suite = list(benchmark_images().values())
    return [suite[index % len(suite)] for index in range(count)]


def _build_server(args: argparse.Namespace, algorithm: str | None = None):
    # deferred import: keep `repro --help` fast and serve-free paths lean
    from repro.serve import Server

    engine = default_engine(algorithm=algorithm or args.algorithm)
    return Server(engine=engine, workers=args.workers,
                  max_batch=args.max_batch, max_delay=args.max_delay / 1e3,
                  max_pending=args.max_pending,
                  max_sessions=args.max_sessions,
                  session_ttl=args.session_ttl)


def _print_server_stats(stats) -> None:
    table = Table(
        title="Server statistics snapshot",
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(
        {"quantity": key, "value": value}
        for key, value in stats.as_dict().items()
    )
    _print(table.render())


def _cmd_serve(args: argparse.Namespace) -> int:
    algorithm = _parse_algorithms(args.algorithm)[0]
    if args.port is not None:
        return _cmd_serve_network(args)
    server = _build_server(args, algorithm)
    with server:
        if args.warmup:
            primed = server.warmup(budgets=(args.budget,),
                                   algorithm=algorithm)
            _print(f"warm-up: {primed} solutions pre-solved into the cache")
        workload = _serving_workload(args.requests)
        results = server.process_many(workload, args.budget,
                                      algorithm=algorithm)
        reused = sum(result.from_cache or result.replayed
                     for result in results)
        _print(f"served {len(results)} requests "
               f"({reused} reused a cached/shared solution)")
        _print_server_stats(server.stats())
    return 0


def _cmd_serve_network(args: argparse.Namespace) -> int:
    """The ``repro serve --port`` mode: serve the wire protocol over TCP
    until interrupted, then print the statistics snapshot."""
    # deferred import: keep `repro --help` fast and serve-free paths lean
    from repro.serve.net import NetworkServer

    algorithm = _parse_algorithms(args.algorithm)[0]
    server = _build_server(args, algorithm)
    if args.warmup:
        primed = server.warmup(budgets=(args.budget,),
                               algorithm=algorithm)
        _print(f"warm-up: {primed} solutions pre-solved into the cache")
    net = NetworkServer(server, host=args.host, port=args.port)

    def ready() -> None:
        host, port = net.address
        # a parseable, flushed readiness line: scripts (and the CI smoke
        # test) wait for it before connecting
        _print(f"serving on {host}:{port} (protocol v1+v2); Ctrl-C to stop")
        sys.stdout.flush()

    try:
        net.run(ready=ready)
    except KeyboardInterrupt:
        _print("interrupted; draining and shutting down")
    finally:
        net.close(wait=True)
    _print_server_stats(server.stats())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """The ``repro cluster`` mode: route the wire protocol across running
    ``repro serve --port`` shards until interrupted."""
    # deferred import: the cluster layer is only needed here
    from repro.cluster import ClusterRouter

    shards = [address.strip()
              for address in str(args.shards).split(",") if address.strip()]
    router = ClusterRouter(shards, host=args.host, port=args.port,
                           replicas=args.replicas,
                           health_interval=args.health_interval,
                           markdown_after=args.markdown_after)

    def ready() -> None:
        host, port = router.address
        # same parseable, flushed readiness contract as `repro serve --port`
        _print(f"cluster serving on {host}:{port} over {len(shards)} "
               f"shard{'s' if len(shards) != 1 else ''} (protocol v1+v2); "
               f"Ctrl-C to stop")
        sys.stdout.flush()

    try:
        router.run(ready=ready)
    except KeyboardInterrupt:
        _print("interrupted; shutting down")
    finally:
        router.close(wait=True)
    table = Table(
        title="Cluster routing snapshot",
        columns=("quantity", "value"),
        precision=3,
    ).with_rows(
        {"quantity": key, "value": value}
        for key, value in router.cluster_info().items()
    )
    _print(table.render())
    return 0


def _stream_workload(streams: int, frames: int) -> list:
    """``streams`` clips of ``frames`` frames each, cycling the benchmark
    suite with a per-stream phase offset — consecutive frames repeat
    content (the video sweet spot) while different streams still overlap
    enough for cross-session coalescing."""
    suite = list(benchmark_images().values())
    return [[suite[(offset + index // 3) % len(suite)]
             for index in range(frames)]
            for offset in range(streams)]


def _cmd_loadtest(args: argparse.Namespace) -> int:
    # deferred import: keep `repro --help` fast and serve-free paths lean
    from repro.serve import (
        report_table,
        run_load,
        run_stream_load,
        stream_report_table,
        time_serial_baseline,
        time_serial_stream_baseline,
    )

    names = _parse_algorithms(args.algorithm, allow_multiple=True)
    # a single algorithm stays a scalar (shared by every request); a list
    # is cycled by workload index — the mixed display-class scenario
    algorithm = names[0] if len(names) == 1 else names
    stream_mode = args.streams > 0
    serial_seconds = None
    if stream_mode:
        workload = _stream_workload(args.streams, args.frames)
    else:
        workload = _serving_workload(args.requests)
    if args.baseline:
        baseline_engine = default_engine(algorithm=names[0],
                                         cache_size=0)
        time_baseline = (time_serial_stream_baseline if stream_mode
                         else time_serial_baseline)
        serial_seconds, _ = time_baseline(baseline_engine, workload,
                                          args.budget,
                                          algorithm=algorithm)
    def hammer(server_like):
        if stream_mode:
            report = run_stream_load(server_like, workload, args.budget,
                                     algorithm=algorithm)
            return report, stream_report_table(report,
                                               serial_seconds=serial_seconds)
        report = run_load(server_like, workload, args.budget,
                          clients=args.clients, algorithm=algorithm)
        return report, report_table(report, serial_seconds=serial_seconds)

    if args.connect:
        # deferred import: the client SDK is only needed for remote runs
        from repro.client import RemoteServerAdapter

        if args.warmup:
            _print("note: --connect targets a remote server; warm-up is the "
                   "server's own (see `repro serve --port`)")
        with RemoteServerAdapter(args.connect) as remote:
            report, table = hammer(remote)
    else:
        server = _build_server(args, names[0])
        with server:
            if args.warmup:
                for name in names:
                    server.warmup(budgets=(args.budget,), algorithm=name)
            report, table = hammer(server)
    _print(table.render())
    if args.json:
        import json

        payload = dict(report.as_dict())
        if serial_seconds is not None:
            payload["serial_seconds"] = round(serial_seconds, 6)
            payload["speedup_vs_serial"] = round(
                serial_seconds / report.elapsed_seconds, 3)
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        _print(f"report written to {args.json}")
    return 0


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    del args
    table = Table(
        title="Built-in synthetic benchmark images (USC-SIPI stand-ins)",
        columns=("name", "size", "mean", "std", "dynamic range"),
        precision=1,
    ).with_rows(
        {
            "name": name,
            "size": f"{image.width}x{image.height}",
            "mean": image.mean(),
            "std": image.std(),
            "dynamic range": image.dynamic_range(),
        }
        for name, image in benchmark_images().items()
    )
    _print(table.render())
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HEBS: Histogram Equalization for Backlight Scaling "
                    "(DATE 2005) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    process = subparsers.add_parser(
        "process", help="run a compensation algorithm on one image")
    process.add_argument("image", help="benchmark name or image file path")
    process.add_argument("--budget", type=float, default=10.0,
                         help="maximum tolerable distortion in percent")
    process.add_argument("--algorithm", default="hebs",
                         choices=available_algorithms(),
                         help="registered algorithm to run (default: hebs)")
    process.add_argument("--adaptive", action="store_true",
                         help="shorthand for --algorithm hebs-adaptive "
                              "(per-image range bisection)")
    process.add_argument("--ambient-lux", type=float, default=None,
                         help="ambient illuminance (lux): derive the budget "
                              "from the dynamic-budget policy instead of "
                              "--budget")
    process.add_argument("--battery", type=float, default=None,
                         help="remaining battery fraction in [0, 1] for the "
                              "dynamic-budget policy")
    process.add_argument("--charging", action="store_true",
                         help="device is on external power (disables the "
                              "policy's battery term)")
    process.add_argument("--output", help="write the transformed image here")
    process.set_defaults(func=_cmd_process)

    batch = subparsers.add_parser(
        "batch", help="run a batch of images through the engine")
    batch.add_argument("images", nargs="*",
                       help="benchmark names or image file paths "
                            "(default: the whole built-in suite)")
    batch.add_argument("--budget", type=float, default=10.0,
                       help="maximum tolerable distortion in percent")
    batch.add_argument("--algorithm", default="hebs",
                       choices=available_algorithms(),
                       help="registered algorithm to run (default: hebs)")
    batch.add_argument("--repeat", type=int, default=1,
                       help="process the set this many times (exercises the "
                            "solution cache)")
    batch.set_defaults(func=_cmd_batch)

    algorithms = subparsers.add_parser(
        "algorithms", help="list the registered compensation algorithms")
    algorithms.set_defaults(func=_cmd_algorithms)

    characterize = subparsers.add_parser(
        "characterize", help="build a distortion characteristic curve")
    characterize.add_argument("--directory",
                              help="directory of .pgm/.ppm/.csv images "
                                   "(default: the built-in suite)")
    characterize.add_argument("--measure", default="effective",
                              choices=available_measures(),
                              help="distortion measure to characterize with")
    characterize.set_defaults(func=_cmd_characterize)

    experiment = subparsers.add_parser(
        "experiment", help="re-run one of the paper experiments")
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS),
                            help="experiment identifier (see DESIGN.md §4)")
    experiment.set_defaults(func=_cmd_experiment)

    serving_options = argparse.ArgumentParser(add_help=False)
    serving_options.add_argument("--budget", type=float, default=10.0,
                                 help="maximum tolerable distortion in percent")
    serving_options.add_argument("--algorithm", default="hebs",
                                 help="registered algorithm to serve "
                                      "(default: hebs); loadtest also "
                                      "accepts a comma-separated list for "
                                      "a mixed display-class workload, "
                                      "e.g. hebs,oled-darken")
    serving_options.add_argument("--workers", type=int, default=4,
                                 help="worker threads executing micro-batches")
    serving_options.add_argument("--max-batch", type=int, default=32,
                                 help="largest coalesced micro-batch")
    serving_options.add_argument("--max-delay", type=float, default=2.0,
                                 help="micro-batching window in milliseconds")
    serving_options.add_argument("--max-pending", type=int, default=1024,
                                 help="request queue bound (backpressure past "
                                      "it)")
    serving_options.add_argument("--requests", type=int, default=64,
                                 help="number of requests to serve (cycling "
                                      "the benchmark suite)")
    serving_options.add_argument("--no-warmup", dest="warmup",
                                 action="store_false",
                                 help="skip pre-solving the corpus into the "
                                      "cache")
    serving_options.add_argument("--max-sessions", type=int, default=64,
                                 help="cap on concurrently open stream "
                                      "sessions")
    serving_options.add_argument("--session-ttl", type=float, default=300.0,
                                 help="seconds of inactivity before an idle "
                                      "stream session is evicted")

    serve = subparsers.add_parser(
        "serve", parents=[serving_options],
        help="run the concurrent serving layer over a request workload, "
             "or over TCP with --port")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port mode "
                            "(default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="serve the wire protocol on this TCP port "
                            "(0 picks a free one) until interrupted, "
                            "instead of running the in-process demo "
                            "workload")
    serve.set_defaults(func=_cmd_serve)

    cluster = subparsers.add_parser(
        "cluster",
        help="route the wire protocol across running `repro serve --port` "
             "shards by content (consistent-hash cache affinity)")
    cluster.add_argument("--shards", required=True, metavar="HOST:PORT,...",
                         help="comma-separated backend shard addresses")
    cluster.add_argument("--host", default="127.0.0.1",
                         help="bind address of the router "
                              "(default: 127.0.0.1)")
    cluster.add_argument("--port", type=int, default=0,
                         help="router TCP port (default: 0 picks a free one; "
                              "the conventional port is 7096)")
    cluster.add_argument("--replicas", type=int, default=64,
                         help="virtual nodes per shard on the hash ring")
    cluster.add_argument("--health-interval", type=float, default=1.0,
                         help="seconds between shard health probes")
    cluster.add_argument("--markdown-after", type=int, default=2,
                         help="consecutive probe failures before a shard is "
                              "marked down")
    cluster.set_defaults(func=_cmd_cluster)

    loadtest = subparsers.add_parser(
        "loadtest", parents=[serving_options],
        help="hammer the server with concurrent clients and report "
             "throughput/latency")
    loadtest.add_argument("--clients", type=int, default=8,
                          help="concurrent client threads (one-shot mode)")
    loadtest.add_argument("--streams", type=int, default=0,
                          help="video-client mode: this many concurrent "
                               "stream sessions instead of one-shot clients")
    loadtest.add_argument("--frames", type=int, default=24,
                          help="frames per stream in --streams mode")
    loadtest.add_argument("--baseline", action="store_true",
                          help="also time the serial baseline (per-request "
                               "loop, or session-per-clip in --streams "
                               "mode) and report the speedup")
    loadtest.add_argument("--json",
                          help="write the report to this JSON file (the CI "
                               "perf artifact format)")
    loadtest.add_argument("--connect", metavar="HOST:PORT",
                          help="drive a remote `repro serve --port` server "
                               "over TCP instead of an in-process one "
                               "(one connection per client thread)")
    loadtest.set_defaults(func=_cmd_loadtest)

    benchmarks = subparsers.add_parser(
        "benchmarks", help="list the built-in benchmark images")
    benchmarks.set_defaults(func=_cmd_benchmarks)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except ValueError as exc:
        # invalid operating points (negative budget, out-of-range factors)
        # become a clean error instead of a traceback
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
