"""Cold Cathode Fluorescent Lamp (CCFL) backlight model — paper Eq. (11).

The CCFL dominates the LCD-subsystem power.  The paper models its power
consumption as a two-piece linear function of the backlight factor ``beta``
(the normalized illuminance), accounting for the saturation of the lamp's
optical efficiency above roughly 80% of full drive:

    P(beta) = A_lin * beta + C_lin      for 0    <= beta <= C_s
    P(beta) = A_sat * beta + C_sat      for C_s  <= beta <= 1

with the LG-Philips LP064V1 coefficients reported in Sec. 5.1a:
``C_s = 0.8234``, ``A_lin = 1.9600``, ``C_lin = -0.2372``,
``A_sat = 6.9440`` and ``|C_sat| = 4.3240``.

The paper prints ``C_sat = 4.3240`` without a sign; the two branches only
meet at ``beta = C_s`` when the intercept is negative (-4.3240 gives a
2 per-mil mismatch, the exact continuous value is -4.3412), so this model
stores the *continuity-corrected* negative intercept by default.  See
``DESIGN.md`` §5 and the regression test in ``tests/display/test_ccfl.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CCFLModel", "LP064V1_CCFL", "simulate_ccfl_measurements"]


@dataclass(frozen=True)
class CCFLModel:
    """Two-piece linear CCFL power model (Eq. 11).

    Parameters
    ----------
    saturation_knee:
        ``C_s``: backlight factor at which the lamp efficiency saturates.
    linear_slope, linear_intercept:
        ``A_lin`` and ``C_lin`` of the efficient (linear) region.
    saturated_slope:
        ``A_sat`` of the saturated region.  The saturated intercept is
        derived from continuity at the knee unless given explicitly.
    saturated_intercept:
        ``C_sat``; pass ``None`` (default) to derive it from continuity.
    min_factor:
        Smallest backlight factor the DC-AC converter can sustain; driving
        requests below it are clamped.  A CCFL cannot be dimmed arbitrarily
        far: below roughly 15% drive the arc becomes unstable and the
        two-piece model of Eq. (11) would predict non-positive power, so the
        default floor is 0.15.
    """

    saturation_knee: float = 0.8234
    linear_slope: float = 1.9600
    linear_intercept: float = -0.2372
    saturated_slope: float = 6.9440
    saturated_intercept: float | None = None
    min_factor: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation_knee <= 1.0:
            raise ValueError("saturation_knee must be in (0, 1]")
        if self.linear_slope <= 0 or self.saturated_slope <= 0:
            raise ValueError("power must increase with the backlight factor")
        if not 0.0 <= self.min_factor < self.saturation_knee:
            raise ValueError("min_factor must be in [0, saturation_knee)")
        if self.saturated_intercept is None:
            # continuity at the knee: A_lin*Cs + C_lin = A_sat*Cs + C_sat
            derived = (
                self.linear_slope * self.saturation_knee
                + self.linear_intercept
                - self.saturated_slope * self.saturation_knee
            )
            object.__setattr__(self, "saturated_intercept", float(derived))

    # ------------------------------------------------------------------ #
    def clamp_factor(self, beta: float) -> float:
        """Clamp a requested backlight factor to the realizable range."""
        return float(np.clip(beta, self.min_factor, 1.0))

    def power(self, beta: float | np.ndarray) -> float | np.ndarray:
        """CCFL driver power (normalized units) at backlight factor ``beta``.

        Scalars map to scalars and arrays map to arrays.  Requested factors
        are clamped to ``[min_factor, 1]`` before evaluation.
        """
        beta_array = np.clip(np.asarray(beta, dtype=np.float64),
                             self.min_factor, 1.0)
        linear = self.linear_slope * beta_array + self.linear_intercept
        saturated = self.saturated_slope * beta_array + self.saturated_intercept
        power = np.where(beta_array <= self.saturation_knee, linear, saturated)
        # Power can never be negative even for tiny factors.
        power = np.maximum(power, 0.0)
        if np.isscalar(beta):
            return float(power)
        return power

    def full_power(self) -> float:
        """Power at full backlight (``beta = 1``), the Table-1 reference."""
        return float(self.power(1.0))

    def illuminance(self, power: float | np.ndarray) -> float | np.ndarray:
        """Inverse model: backlight factor produced by a given driver power.

        This is the quantity plotted on the y-axis of Fig. 6a (illuminance
        versus driver power).  Powers outside the model's range are clamped.
        """
        power_array = np.asarray(power, dtype=np.float64)
        knee_power = self.linear_slope * self.saturation_knee + self.linear_intercept
        linear = (power_array - self.linear_intercept) / self.linear_slope
        saturated = (power_array - self.saturated_intercept) / self.saturated_slope
        beta = np.where(power_array <= knee_power, linear, saturated)
        beta = np.clip(beta, 0.0, 1.0)
        if np.isscalar(power):
            return float(beta)
        return beta

    def power_saving(self, beta: float) -> float:
        """Fractional CCFL power saving of dimming to ``beta`` versus full."""
        full = self.full_power()
        if full <= 0:
            return 0.0
        return float(1.0 - self.power(beta) / full)


#: Coefficients of the LG-Philips LP064V1 panel's CCFL (paper Sec. 5.1a),
#: with the continuity-corrected saturated-region intercept.
LP064V1_CCFL = CCFLModel()


def simulate_ccfl_measurements(
    model: CCFLModel = LP064V1_CCFL,
    n_points: int = 25,
    noise: float = 0.015,
    seed: int = 2005,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate the lab measurement behind Fig. 6a.

    The paper measured illuminance versus driver power on the LP064V1 and
    then fitted Eq. (11).  We invert the process: sample the analytic model
    on ``n_points`` power levels, add a small reproducible relative noise
    (lamp aging / temperature effects, Sec. 5.1a), and return
    ``(power, illuminance)`` pairs.  The Fig. 6a experiment re-fits the
    two-piece model to these pseudo-measurements and checks that the fitted
    knee and slopes recover the ground truth.
    """
    if n_points < 4:
        raise ValueError("need at least 4 measurement points")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    beta_grid = np.linspace(model.min_factor, 1.0, n_points)
    power = np.asarray(model.power(beta_grid), dtype=np.float64)
    illuminance = beta_grid * (1.0 + noise * rng.standard_normal(n_points))
    return power, np.clip(illuminance, 0.0, 1.05)
