"""Video-interface (bus) power model — the paper's "first class of techniques".

Sec. 1 splits LCD power work into two classes: techniques that reduce the
switching activity of the digital interface between the graphics controller
and the LCD controller (refs. [2][3]: chromatic encoding, limited intra-word
transition codes) and techniques that dim the backlight (DLS, CBCS, HEBS).
HEBS belongs to the second class, but a complete display-subsystem model
needs the first as well: the frame data still has to cross the bus every
refresh, and its energy is proportional to the number of signal transitions.

This module provides a behavioural bus model:

* transition counting for a frame transmitted as a raster scan of 8-bit
  words over an ``n_lanes``-wide bus,
* three encoders — plain binary, Gray code, and a bus-invert code (a
  representative "limited transition" code in the spirit of refs. [2][3]) —
  so the relative savings of smarter encodings can be reproduced,
* an energy model ``E = C_eff * V_dd^2 * transitions`` with a default
  effective capacitance chosen so the bus energy is a realistic few percent
  of the display-subsystem energy.

The ``interface`` ablation benchmark uses it to show that backlight scaling
and bus encoding compose: HEBS does not change the bus energy appreciably,
and the encodings save the same fraction with or without HEBS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "binary_encode",
    "gray_encode",
    "bus_invert_encode",
    "count_transitions",
    "VideoBusModel",
    "available_encodings",
]

_ENCODINGS = ("binary", "gray", "bus-invert")


def available_encodings() -> tuple[str, ...]:
    """Names of the supported bus encodings."""
    return _ENCODINGS


# --------------------------------------------------------------------- #
# encoders: pixel words -> words actually driven on the bus
# --------------------------------------------------------------------- #
def binary_encode(words: np.ndarray) -> np.ndarray:
    """Plain binary transmission (the baseline protocol of refs. [2][3])."""
    return np.asarray(words, dtype=np.uint16)


def gray_encode(words: np.ndarray) -> np.ndarray:
    """Gray-code the words: consecutive values differ in a single bit.

    Effective for smoothly varying data (the "spatial locality of the video
    data" that ref. [2] exploits).
    """
    words = np.asarray(words, dtype=np.uint16)
    return words ^ (words >> 1)


def bus_invert_encode(words: np.ndarray, width: int = 8) -> np.ndarray:
    """Bus-invert coding: send the complement when it toggles fewer wires.

    A representative limited-transition code (refs. [2][3] use more elaborate
    variants): before driving a word, compare it with the previous bus state;
    if more than half the wires would toggle, drive the bitwise complement
    instead (the real bus carries one extra polarity wire, accounted for by
    the caller through ``extra_lanes``).
    """
    words = np.asarray(words, dtype=np.uint16)
    mask = (1 << width) - 1
    encoded = np.empty_like(words)
    previous = 0
    for index, word in enumerate(words):
        plain_toggles = int(bin((int(word) ^ previous) & mask).count("1"))
        if plain_toggles > width // 2:
            driven = (~int(word)) & mask
        else:
            driven = int(word) & mask
        encoded[index] = driven
        previous = driven
    return encoded


def count_transitions(words: np.ndarray, width: int = 8) -> int:
    """Total number of wire toggles when ``words`` are driven sequentially."""
    words = np.asarray(words, dtype=np.uint16)
    if words.size < 2:
        return 0
    toggles = words[1:] ^ words[:-1]
    mask = (1 << width) - 1
    toggles = toggles & mask
    # popcount via the classic byte lookup
    lookup = np.array([bin(value).count("1") for value in range(256)],
                      dtype=np.uint8)
    low = lookup[toggles & 0xFF]
    high = lookup[(toggles >> 8) & 0xFF]
    return int(low.sum() + high.sum())


@dataclass(frozen=True)
class VideoBusModel:
    """Energy model of the graphics-controller -> LCD-controller interface.

    Parameters
    ----------
    encoding:
        ``"binary"``, ``"gray"`` or ``"bus-invert"``.
    width:
        Word width in bits (8 for the grayscale panels modelled here).
    energy_per_transition:
        Normalized energy of one wire toggle, scaled so transmitting a
        128x128 frame of busy content at 60 Hz costs a few percent of the
        display power in the same normalized units as
        :mod:`repro.display.power` (the relative magnitude refs. [2][3]
        report for the DVI interface).
    refresh_hz:
        Frame refresh rate; the frame energy is multiplied by it to obtain
        bus power.
    """

    encoding: str = "binary"
    width: int = 8
    energy_per_transition: float = 3.0e-8
    refresh_hz: float = 60.0

    def __post_init__(self) -> None:
        if self.encoding not in _ENCODINGS:
            raise ValueError(
                f"unknown encoding {self.encoding!r}; expected one of {_ENCODINGS}")
        if not 1 <= self.width <= 16:
            raise ValueError("width must be in [1, 16]")
        if self.energy_per_transition <= 0:
            raise ValueError("energy_per_transition must be positive")
        if self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")

    # ------------------------------------------------------------------ #
    def encode(self, words: np.ndarray) -> np.ndarray:
        """Apply the configured encoding to a word stream."""
        if self.encoding == "binary":
            return binary_encode(words)
        if self.encoding == "gray":
            return gray_encode(words)
        return bus_invert_encode(words, width=self.width)

    def frame_words(self, image: Image) -> np.ndarray:
        """The raster-scan word stream of a frame (grayscale levels)."""
        return image.to_grayscale().pixels.reshape(-1).astype(np.uint16)

    def frame_transitions(self, image: Image) -> int:
        """Wire toggles needed to transmit one frame."""
        return count_transitions(self.encode(self.frame_words(image)),
                                 width=self.width)

    def frame_energy(self, image: Image) -> float:
        """Energy (normalized units) of transmitting one frame."""
        return self.frame_transitions(image) * self.energy_per_transition

    def power(self, image: Image) -> float:
        """Bus power while refreshing ``image`` at the configured rate."""
        return self.frame_energy(image) * self.refresh_hz

    def saving_versus(self, image: Image, baseline: "VideoBusModel") -> float:
        """Fractional transition saving of this encoding versus ``baseline``."""
        reference = baseline.frame_transitions(image)
        if reference == 0:
            return 0.0
        return 1.0 - self.frame_transitions(image) / reference
