"""LCD controller and frame buffer simulation — paper Sec. 2, Fig. 1.

The digital LCD subsystem has two halves (Fig. 1a): the video controller
writes frames into a frame buffer, and the LCD controller reads them out,
converts pixel values to grayscale voltages through the source driver, and
drives the panel row by row while the CCFL provides the backlight.

This module provides a *behavioural* simulation of that datapath so the
reproduction can display an image end to end:

``FrameBuffer``  holds frames pushed by the "video controller" (the caller).
``LCDController`` pops a frame, runs every pixel through the programmed
reference-voltage driver (or the identity program), applies the panel
transmissivity model and the current backlight factor, and returns a
:class:`DisplayedFrame` carrying the displayed pixel values, the per-pixel
luminance actually emitted, and the power drawn by the CCFL and the panel
during that frame.

The controller is where HEBS "meets the hardware": the pipeline in
:mod:`repro.core.pipeline` produces a driver program and a backlight factor,
and this controller verifies what an observer would actually see.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.display.ccfl import CCFLModel, LP064V1_CCFL
from repro.display.driver import DriverProgram
from repro.display.panel import LP064V1_PANEL, PanelModel
from repro.imaging.image import Image

__all__ = ["FrameBuffer", "DisplayedFrame", "LCDController"]


class FrameBuffer:
    """A bounded FIFO of frames between the video and LCD controllers.

    Parameters
    ----------
    capacity:
        Maximum number of frames held; pushing into a full buffer drops the
        oldest frame (real double-buffered controllers overwrite the back
        buffer rather than stalling the video source).
    """

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise ValueError("frame buffer capacity must be at least 1")
        self.capacity = int(capacity)
        self._frames: deque[Image] = deque()
        self.dropped_frames = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def is_empty(self) -> bool:
        """Whether there is no frame waiting to be displayed."""
        return not self._frames

    def push(self, frame: Image) -> None:
        """Write a frame (video-controller side)."""
        if len(self._frames) >= self.capacity:
            self._frames.popleft()
            self.dropped_frames += 1
        self._frames.append(frame)

    def pop(self) -> Image:
        """Read the oldest frame (LCD-controller side)."""
        if not self._frames:
            raise IndexError("frame buffer is empty")
        return self._frames.popleft()

    def peek(self) -> Image:
        """Look at the oldest frame without consuming it."""
        if not self._frames:
            raise IndexError("frame buffer is empty")
        return self._frames[0]


@dataclass(frozen=True)
class DisplayedFrame:
    """Everything the panel produced while displaying one frame.

    Attributes
    ----------
    source:
        The frame read from the frame buffer (original pixel values).
    displayed:
        The image actually shown: source pixels passed through the
        programmed grayscale-voltage transfer function.
    luminance:
        Per-pixel emitted luminance ``I = beta * t(displayed)`` in ``[0, 1]``.
    backlight_factor:
        The CCFL dimming factor in force for the frame.
    ccfl_power:
        CCFL power during the frame (normalized units).
    panel_power:
        Panel power during the frame (normalized units).
    """

    source: Image
    displayed: Image
    luminance: np.ndarray
    backlight_factor: float
    ccfl_power: float
    panel_power: float

    @property
    def total_power(self) -> float:
        """CCFL plus panel power (the display-subsystem power of Table 1)."""
        return self.ccfl_power + self.panel_power

    def mean_luminance(self) -> float:
        """Average emitted luminance over the frame."""
        return float(np.mean(self.luminance))


class LCDController:
    """Behavioural model of the LCD controller + source driver + backlight.

    Parameters
    ----------
    ccfl:
        Backlight power model (defaults to the LP064V1 CCFL).
    panel:
        Panel transmissivity/power model (defaults to the LP064V1 panel).
    """

    def __init__(self, ccfl: CCFLModel = LP064V1_CCFL,
                 panel: PanelModel = LP064V1_PANEL) -> None:
        self.ccfl = ccfl
        self.panel = panel
        self._backlight_factor = 1.0
        self._program: DriverProgram | None = None

    # ------------------------------------------------------------------ #
    # configuration (what the HEBS pipeline programs)
    # ------------------------------------------------------------------ #
    @property
    def backlight_factor(self) -> float:
        """Currently programmed CCFL dimming factor."""
        return self._backlight_factor

    def set_backlight(self, beta: float) -> float:
        """Dim the CCFL to factor ``beta``; returns the clamped factor."""
        self._backlight_factor = self.ccfl.clamp_factor(beta)
        return self._backlight_factor

    def load_program(self, program: DriverProgram | None) -> None:
        """Program the source-driver reference voltages (``None`` = identity)."""
        self._program = program
        if program is not None:
            self.set_backlight(program.backlight_factor)

    def reset(self) -> None:
        """Return to full backlight and the identity transfer function."""
        self._backlight_factor = 1.0
        self._program = None

    # ------------------------------------------------------------------ #
    # frame path
    # ------------------------------------------------------------------ #
    def _apply_transfer_function(self, frame: Image) -> Image:
        """Run every pixel through the programmed grayscale-voltage LUT."""
        if self._program is None:
            return frame
        lut = self._program.lut()
        if lut.size != frame.levels:
            raise ValueError(
                f"driver programmed for {lut.size} levels but frame has "
                f"{frame.levels}"
            )
        mapped = np.rint(lut)[frame.pixels]
        return frame.with_pixels(mapped)

    def display(self, frame: Image) -> DisplayedFrame:
        """Display a single frame and account for its power.

        The displayed image is the frame passed through the programmed
        transfer function; the emitted luminance applies the panel
        transmissivity and the dimmed backlight (Eq. 1b).
        """
        grayscale = frame.to_grayscale()
        displayed = self._apply_transfer_function(grayscale)
        transmittance = self.panel.transmissivity.transmittance(
            displayed.as_float())
        luminance = self._backlight_factor * np.asarray(transmittance)
        return DisplayedFrame(
            source=grayscale,
            displayed=displayed,
            luminance=luminance,
            backlight_factor=self._backlight_factor,
            ccfl_power=float(self.ccfl.power(self._backlight_factor)),
            panel_power=self.panel.frame_power(displayed),
        )

    def drain(self, buffer: FrameBuffer) -> list[DisplayedFrame]:
        """Display every frame currently waiting in ``buffer``."""
        frames = []
        while not buffer.is_empty:
            frames.append(self.display(buffer.pop()))
        return frames
