"""Emissive (OLED/AMOLED) display power model — the per-pixel-power workload.

A transmissive LCD spends its power in the backlight, so the paper's
optimization dims the lamp and *brightens* content to compensate.  An
emissive panel inverts the economics: there is no backlight, every pixel is
its own light source, and panel power is a function of the pixel values
themselves.  The standard model (Dong & Zhong's OLED power studies, and the
measurements behind every OLED display-power paper since) is linear in the
emitted luminance per color primary:

    P_frame = beta / N * sum_pixels [ k_r L(r) + k_g L(g) + k_b L(b) ] + P_0

where ``L`` is the sRGB electro-optical transfer function (the panel emits
*luminance*, and luminance is not linear in the stored pixel code), ``k_c``
is the per-primary efficiency coefficient (blue emitters are the least
efficient, so ``k_b`` dominates), ``beta`` is an optional global dimming
factor, and ``P_0`` is the static overhead of the driver electronics that
burns regardless of content.

This module mirrors the surfaces of :mod:`repro.display.ccfl` and
:mod:`repro.display.power` so the rest of the package — the controller, the
power accounting in :class:`~repro.api.types.CompensationResult`, the
serving stack — accepts either display class:

* :class:`OLEDModel` — the per-pixel physics (the :class:`CCFLModel`
  analogue: ``clamp_factor`` / ``power``-style evaluation, a ``full_power``
  reference).
* :class:`OLEDDisplayPowerModel` — frame-level accounting with the exact
  :class:`~repro.display.power.DisplayPowerModel` method surface
  (``breakdown`` / ``total`` / ``reference`` / ``saving`` /
  ``saving_percent``).  It reports the standard
  :class:`~repro.display.power.PowerBreakdown` with ``ccfl=0.0`` — an
  emissive panel has no lamp — so results flow through the wire protocol
  and result equality unchanged.
* :class:`OLEDSupplyModel` / :class:`OLEDPanelAdapter` — drop-ins for the
  two slots of :class:`~repro.display.controller.LCDController`, so the
  frame-buffer simulation drives an emissive panel with no controller
  changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.display.panel import TransmissivityModel
from repro.display.power import PowerBreakdown
from repro.imaging.image import Image

__all__ = [
    "srgb_to_linear",
    "linear_to_srgb",
    "EmissionModel",
    "OLEDPowerBreakdown",
    "OLEDModel",
    "OLEDDisplayPowerModel",
    "OLEDSupplyModel",
    "OLEDPanelAdapter",
    "QVGA_AMOLED",
    "oled_power_saving",
]


def srgb_to_linear(x: float | np.ndarray) -> float | np.ndarray:
    """The sRGB electro-optical transfer function (IEC 61966-2-1).

    Maps a normalized pixel code in ``[0, 1]`` to relative emitted
    luminance: linear below the 0.04045 toe, a 2.4 power law above it.
    Emissive power is proportional to emitted luminance, so this is the
    curve that turns stored pixel values into watts.
    """
    x_array = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
    result = np.where(x_array <= 0.04045,
                      x_array / 12.92,
                      ((x_array + 0.055) / 1.055) ** 2.4)
    return float(result) if np.isscalar(x) else result


def linear_to_srgb(y: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`srgb_to_linear`: luminance back to pixel code."""
    y_array = np.clip(np.asarray(y, dtype=np.float64), 0.0, 1.0)
    result = np.where(y_array <= 0.04045 / 12.92,
                      y_array * 12.92,
                      1.055 * y_array ** (1.0 / 2.4) - 0.055)
    return float(result) if np.isscalar(y) else result


@dataclass(frozen=True)
class EmissionModel(TransmissivityModel):
    """Pixel-code → relative-luminance map of an emissive panel.

    The :class:`~repro.display.panel.TransmissivityModel` surface
    (``transmittance`` / ``pixel_value`` / ``luminance``) with the sRGB
    transfer in place of the LCD's linear cell map, so everything written
    against the transmissivity contract — the controller, perceived-image
    accounting — drives an OLED unchanged.  ``t_off`` models the residual
    leakage of a nominally black pixel (0 for an ideal emitter: true blacks
    are the point of OLED).
    """

    def transmittance(self, x: float | np.ndarray) -> float | np.ndarray:
        x_array = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        linear = np.asarray(srgb_to_linear(x_array))
        result = self.t_off + (self.t_on - self.t_off) * linear
        return float(result) if np.isscalar(x) else result

    def pixel_value(self, transmittance: float | np.ndarray
                    ) -> float | np.ndarray:
        t_array = np.clip(np.asarray(transmittance, dtype=np.float64),
                          self.t_off, self.t_on)
        linear = (t_array - self.t_off) / (self.t_on - self.t_off)
        result = np.asarray(linear_to_srgb(linear))
        return float(result) if np.isscalar(transmittance) else result


@dataclass(frozen=True)
class OLEDPowerBreakdown:
    """Per-component power of one frame on an emissive panel.

    The OLED-native analogue of
    :class:`~repro.display.power.PowerBreakdown`: the content-dependent
    emissive term and the content-independent driver overhead.  Use
    :meth:`as_power_breakdown` to cross into the display-agnostic result
    records (``ccfl=0`` — there is no lamp; the whole panel figure is
    emissive + overhead).
    """

    emissive: float
    overhead: float

    @property
    def total(self) -> float:
        """Emissive plus overhead power."""
        return self.emissive + self.overhead

    def saving_versus(self, reference: "OLEDPowerBreakdown") -> float:
        """Fractional saving of this breakdown relative to ``reference``."""
        if reference.total <= 0:
            return 0.0
        return 1.0 - self.total / reference.total

    def as_power_breakdown(self) -> PowerBreakdown:
        """The display-agnostic record the unified API carries.

        A plain :class:`~repro.display.power.PowerBreakdown` (not a
        subclass): dataclass equality is class-exact, and results must
        compare equal across the wire, where the receiving side
        reconstructs the generic record.
        """
        return PowerBreakdown(ccfl=0.0, panel=self.total)


@dataclass(frozen=True)
class OLEDModel:
    """Per-pixel emissive power model of an OLED/AMOLED panel.

    Parameters
    ----------
    red_gain, green_gain, blue_gain:
        Per-primary efficiency coefficients ``k_c`` (power per unit of
        relative luminance).  The defaults are normalized so a full-white
        frame costs 1.0 emissive power unit, with the usual ordering of
        organic emitter efficiencies: blue is the hungriest primary, green
        the cheapest.
    static_power:
        Content-independent driver/electronics overhead ``P_0`` per frame
        (same normalized units).
    emission:
        Pixel-code → luminance transfer (the sRGB curve by default).
    min_factor:
        Smallest global dimming factor the driver sustains.  Unlike a CCFL
        arc, an emissive panel dims continuously to black, so the default
        floor is 0.
    """

    red_gain: float = 0.30
    green_gain: float = 0.22
    blue_gain: float = 0.48
    static_power: float = 0.12
    emission: EmissionModel = field(default_factory=EmissionModel)
    min_factor: float = 0.0

    def __post_init__(self) -> None:
        if min(self.red_gain, self.green_gain, self.blue_gain) <= 0:
            raise ValueError("per-primary gains must be positive")
        if self.static_power < 0:
            raise ValueError("static_power must be non-negative")
        if not 0.0 <= self.min_factor < 1.0:
            raise ValueError("min_factor must be in [0, 1)")

    # ------------------------------------------------------------------ #
    @property
    def white_gain(self) -> float:
        """Emissive power of a full-white pixel (all primaries driven)."""
        return self.red_gain + self.green_gain + self.blue_gain

    def clamp_factor(self, beta: float) -> float:
        """Clamp a requested dimming factor to the realizable range."""
        return float(np.clip(beta, self.min_factor, 1.0))

    def pixel_power(self, x: float | np.ndarray,
                    beta: float = 1.0) -> float | np.ndarray:
        """Emissive power of grayscale pixel value(s) ``x`` in ``[0, 1]``.

        A grayscale value drives all three primaries equally, so the cost
        is the summed gains times the emitted luminance.  Scalars map to
        scalars and arrays to arrays, like :meth:`CCFLModel.power
        <repro.display.ccfl.CCFLModel.power>`.
        """
        beta = self.clamp_factor(beta)
        result = (self.white_gain * beta
                  * np.asarray(self.emission.transmittance(x)))
        return float(result) if np.isscalar(x) else result

    def rgb_pixel_power(self, red: float | np.ndarray,
                        green: float | np.ndarray,
                        blue: float | np.ndarray,
                        beta: float = 1.0) -> float | np.ndarray:
        """Emissive power of per-channel drive values (normalized codes)."""
        beta = self.clamp_factor(beta)
        result = beta * (
            self.red_gain * np.asarray(self.emission.transmittance(red))
            + self.green_gain * np.asarray(self.emission.transmittance(green))
            + self.blue_gain * np.asarray(self.emission.transmittance(blue)))
        if np.isscalar(red) and np.isscalar(green) and np.isscalar(blue):
            return float(result)
        return result

    def frame_power(self, image: Image, beta: float = 1.0) -> float:
        """Mean per-pixel emissive power of a whole frame (no overhead).

        The :meth:`PanelModel.frame_power
        <repro.display.panel.PanelModel.frame_power>` analogue.  The
        package's working currency is grayscale, so the frame is converted
        first; color content enters through :meth:`rgb_pixel_power`.
        """
        values = image.to_grayscale().as_float()
        return float(np.mean(self.pixel_power(values, beta)))

    def breakdown(self, image: Image,
                  beta: float = 1.0) -> OLEDPowerBreakdown:
        """Emissive/overhead split of displaying one frame."""
        return OLEDPowerBreakdown(emissive=self.frame_power(image, beta),
                                  overhead=self.static_power)

    def full_power(self) -> float:
        """Power of a full-white frame at full drive (the reference scale)."""
        return (self.white_gain
                * float(self.emission.transmittance(1.0))
                + self.static_power)


#: A stand-in 2.2-inch QVGA AMOLED module with normalized coefficients:
#: full white costs 1.0 emissive unit, the driver overhead is 12% of that.
QVGA_AMOLED = OLEDModel()


@dataclass(frozen=True)
class OLEDDisplayPowerModel:
    """Frame-level power accounting for an emissive panel.

    The exact :class:`~repro.display.power.DisplayPowerModel` method
    surface — ``breakdown`` / ``total`` / ``reference`` / ``saving`` /
    ``saving_percent`` — so algorithm adapters and experiments can hold
    either display class behind one variable.  ``backlight_factor`` slots
    in as the global dimming factor (1.0 for content-only optimization:
    darkening happens in the pixels, not a lamp).
    """

    oled: OLEDModel = QVGA_AMOLED

    def breakdown(self, image: Image,
                  backlight_factor: float) -> PowerBreakdown:
        """Power of displaying ``image`` dimmed globally to ``beta``."""
        beta = self.oled.clamp_factor(backlight_factor)
        return self.oled.breakdown(image, beta).as_power_breakdown()

    def total(self, image: Image, backlight_factor: float) -> float:
        """Total display power of a frame (normalized units)."""
        return self.breakdown(image, backlight_factor).total

    def reference(self, image: Image) -> PowerBreakdown:
        """Power of displaying the original image at full drive."""
        return self.breakdown(image, 1.0)

    def saving(self, original: Image, transformed: Image,
               backlight_factor: float) -> float:
        """Fractional display-power saving of showing ``transformed``."""
        return self.breakdown(transformed, backlight_factor).saving_versus(
            self.reference(original))

    def saving_percent(self, original: Image, transformed: Image,
                       backlight_factor: float) -> float:
        """Power saving expressed in percent (the Table-1 unit)."""
        return 100.0 * self.saving(original, transformed, backlight_factor)


@dataclass(frozen=True)
class OLEDSupplyModel:
    """Drop-in for the ``ccfl`` slot of
    :class:`~repro.display.controller.LCDController`.

    An emissive panel has no lamp; what the lamp slot models here is the
    content-independent driver overhead, constant in the dimming factor.
    """

    overhead: float = QVGA_AMOLED.static_power
    min_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ValueError("overhead must be non-negative")
        if not 0.0 <= self.min_factor < 1.0:
            raise ValueError("min_factor must be in [0, 1)")

    def clamp_factor(self, beta: float) -> float:
        """Clamp a requested dimming factor to the realizable range."""
        return float(np.clip(beta, self.min_factor, 1.0))

    def power(self, beta: float | np.ndarray) -> float | np.ndarray:
        """Driver overhead — burns regardless of drive level."""
        if np.isscalar(beta):
            return float(self.overhead)
        return np.full_like(np.asarray(beta, dtype=np.float64),
                            self.overhead)

    def full_power(self) -> float:
        """Overhead at full drive (it is constant)."""
        return float(self.overhead)

    def power_saving(self, beta: float) -> float:
        """Dimming the panel saves nothing in the *overhead* term."""
        return 0.0


@dataclass(frozen=True)
class OLEDPanelAdapter:
    """Drop-in for the ``panel`` slot of
    :class:`~repro.display.controller.LCDController`.

    ``frame_power`` is the emissive term and ``transmissivity`` the sRGB
    emission curve, so the controller's per-frame luminance and power
    accounting work on an emissive panel without modification.
    """

    oled: OLEDModel = QVGA_AMOLED

    @property
    def transmissivity(self) -> EmissionModel:
        """The pixel-code → luminance transfer of the panel."""
        return self.oled.emission

    def pixel_power(self, x: float | np.ndarray) -> float | np.ndarray:
        """Per-pixel emissive power at full drive."""
        return self.oled.pixel_power(x)

    def frame_power(self, image: Image) -> float:
        """Mean per-pixel emissive power of a frame at full drive."""
        return self.oled.frame_power(image)


def oled_power_saving(original: Image, transformed: Image,
                      backlight_factor: float = 1.0,
                      model: OLEDDisplayPowerModel | None = None) -> float:
    """Percent emissive-display power saving (the Table-1 convention)."""
    return (model or OLEDDisplayPowerModel()).saving_percent(
        original, transformed, backlight_factor)
