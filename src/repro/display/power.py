"""Display-subsystem power accounting — the basis of Table 1 and Fig. 8.

The paper reports *power saving* percentages for the whole LCD subsystem:
the CCFL backlight (dominant, Eq. 11) plus the TFT panel (small, Eq. 12).
Savings are quoted against displaying the original image at full backlight:

    saving = 1 - P_display(beta, F') / P_display(1, F)

where ``F'`` is the transformed (range-compressed) image.  This module packs
the CCFL and panel models into a single :class:`DisplayPowerModel` and
provides :func:`power_saving` used by every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.display.ccfl import CCFLModel, LP064V1_CCFL
from repro.display.panel import LP064V1_PANEL, PanelModel
from repro.imaging.image import Image

__all__ = ["PowerBreakdown", "DisplayPowerModel", "power_saving"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of displaying one frame (normalized units)."""

    ccfl: float
    panel: float

    @property
    def total(self) -> float:
        """CCFL plus panel power."""
        return self.ccfl + self.panel

    def saving_versus(self, reference: "PowerBreakdown") -> float:
        """Fractional saving of this breakdown relative to ``reference``."""
        if reference.total <= 0:
            return 0.0
        return 1.0 - self.total / reference.total


@dataclass(frozen=True)
class DisplayPowerModel:
    """Total display power model: CCFL (Eq. 11) + panel (Eq. 12).

    The default instances model the LG-Philips LP064V1 used in the paper's
    characterization (Sec. 5.1).
    """

    ccfl: CCFLModel = LP064V1_CCFL
    panel: PanelModel = LP064V1_PANEL

    def breakdown(self, image: Image, backlight_factor: float) -> PowerBreakdown:
        """Power of displaying ``image`` with the CCFL dimmed to ``beta``."""
        beta = self.ccfl.clamp_factor(backlight_factor)
        return PowerBreakdown(
            ccfl=float(self.ccfl.power(beta)),
            panel=self.panel.frame_power(image),
        )

    def total(self, image: Image, backlight_factor: float) -> float:
        """Total display power of a frame (normalized units)."""
        return self.breakdown(image, backlight_factor).total

    def reference(self, image: Image) -> PowerBreakdown:
        """Power of displaying the original image at full backlight."""
        return self.breakdown(image, 1.0)

    def saving(self, original: Image, transformed: Image,
               backlight_factor: float) -> float:
        """Fractional display-power saving of the backlight-scaled display.

        ``original`` is displayed at full backlight (the reference);
        ``transformed`` at ``backlight_factor``.
        """
        return self.breakdown(transformed, backlight_factor).saving_versus(
            self.reference(original))

    def saving_percent(self, original: Image, transformed: Image,
                       backlight_factor: float) -> float:
        """Power saving expressed in percent (the Table-1 unit)."""
        return 100.0 * self.saving(original, transformed, backlight_factor)


def power_saving(original: Image, transformed: Image, backlight_factor: float,
                 model: DisplayPowerModel | None = None) -> float:
    """Convenience wrapper: percent display-power saving with LP064V1 models."""
    return (model or DisplayPowerModel()).saving_percent(
        original, transformed, backlight_factor)
