"""TFT-LCD panel model: transmissivity and panel power — paper Eq. (1), (12).

Two pieces of physics matter for backlight scaling:

* **Transmissivity.**  For a pixel driven to value ``X`` the emitted
  luminance is ``I(X) = b * t(X)`` (Eq. 1a) where ``b`` is the backlight
  factor and ``t`` the cell transmissivity.  Ideally ``t`` is a linear map
  from the pixel-value domain to ``[t_off, t_on]`` — Sec. 2 calls it "a
  linear mapping from [0,255] domain to [0,1] range".  The class
  :class:`TransmissivityModel` captures that map plus the small leakage
  ``t_off`` of a real cell, and provides the inverse used to compute
  compensation factors.

* **Panel power.**  The a-Si:H TFT panel power is a quadratic function of
  the (normalized) pixel value (Eq. 12): ``P(x) = a x^2 + b x + c`` with the
  LP064V1 coefficients ``a = 0.02449``, ``b = 0.04984`` (negative for the
  normally-white panel where power *decreases* with transmittance, see
  Fig. 6b) and ``c = 0.993``.  The paper notes the dependence is tiny
  compared to the CCFL; we keep it anyway because Table-1/Fig-8 savings are
  quoted against the *total* display power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "TransmissivityModel",
    "PanelModel",
    "LP064V1_PANEL",
    "simulate_panel_measurements",
]


@dataclass(frozen=True)
class TransmissivityModel:
    """Linear pixel-value -> cell-transmittance map.

    Parameters
    ----------
    t_off:
        Transmittance of a fully 'off' (black) cell.  Real panels leak a
        little light; 0 gives the idealized model used in the paper's
        derivations.
    t_on:
        Transmittance of a fully 'on' (white) cell.
    """

    t_off: float = 0.0
    t_on: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.t_off < self.t_on <= 1.0:
            raise ValueError(
                f"need 0 <= t_off < t_on <= 1, got ({self.t_off}, {self.t_on})"
            )

    def transmittance(self, x: float | np.ndarray) -> float | np.ndarray:
        """Cell transmittance for normalized pixel value ``x`` in ``[0, 1]``."""
        x_array = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        result = self.t_off + (self.t_on - self.t_off) * x_array
        return float(result) if np.isscalar(x) else result

    def pixel_value(self, transmittance: float | np.ndarray) -> float | np.ndarray:
        """Inverse map: normalized pixel value producing ``transmittance``."""
        t_array = np.clip(np.asarray(transmittance, dtype=np.float64),
                          self.t_off, self.t_on)
        result = (t_array - self.t_off) / (self.t_on - self.t_off)
        return float(result) if np.isscalar(transmittance) else result

    def luminance(self, x: float | np.ndarray,
                  backlight: float) -> float | np.ndarray:
        """Perceived luminance ``I = b * t(x)`` (Eq. 1a)."""
        if not 0.0 <= backlight <= 1.0:
            raise ValueError(f"backlight factor must be in [0, 1], got {backlight}")
        result = backlight * np.asarray(self.transmittance(x))
        return float(result) if np.isscalar(x) else result

    def backlight_for_range(self, dynamic_range: int, levels: int = 256) -> float:
        """Maximum dimming factor for an image confined to ``[0, R]``.

        If every pixel of the transformed image lies in ``[0, R]`` the
        compensated pixel values ``Lambda(x)/beta`` stay representable as
        long as ``beta >= t(R/(levels-1)) / t(1)``; the most aggressive
        admissible dimming is therefore that ratio (paper step 1 & 2: the
        minimum dynamic range "also produces the optimum backlight scaling
        factor").  With the idealized ``t_off = 0`` model this reduces to
        ``beta = R / (levels - 1)``.
        """
        if not 0 <= dynamic_range <= levels - 1:
            raise ValueError(
                f"dynamic range must be in [0, {levels - 1}], got {dynamic_range}"
            )
        top = float(self.transmittance(dynamic_range / (levels - 1)))
        full = float(self.transmittance(1.0))
        return max(top / full, 1.0 / (levels - 1))


@dataclass(frozen=True)
class PanelModel:
    """Quadratic a-Si:H TFT panel power model (Eq. 12).

    ``P(x) = a x^2 + b x + c`` per pixel in normalized power units, with
    ``x`` the normalized pixel value.  ``normally_white = True`` means power
    decreases slightly as global transmittance increases (the LP064V1 case,
    Fig. 6b); the normally-black variant flips the sign of the linear and
    quadratic terms.
    """

    quadratic: float = 0.02449
    linear: float = 0.04984
    constant: float = 0.993
    normally_white: bool = True
    transmissivity: TransmissivityModel = TransmissivityModel()

    def __post_init__(self) -> None:
        if self.constant < 0:
            raise ValueError("constant power term must be non-negative")

    def _signed_coefficients(self) -> tuple[float, float]:
        """Quadratic/linear coefficients with the panel-polarity sign applied.

        For the normally-white LP064V1 the fitted curve of Fig. 6b decreases
        from ``c`` at zero transmittance to ``c - b + a`` at full
        transmittance (``P(x) = a x^2 - b x + c``); the normally-black
        variant mirrors the linear term so power grows with transmittance.
        """
        if self.normally_white:
            return abs(self.quadratic), -abs(self.linear)
        return abs(self.quadratic), abs(self.linear)

    def pixel_power(self, x: float | np.ndarray) -> float | np.ndarray:
        """Per-pixel panel power for normalized pixel value ``x``."""
        a, b = self._signed_coefficients()
        x_array = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        result = a * x_array**2 + b * x_array + self.constant
        return float(result) if np.isscalar(x) else result

    def frame_power(self, image: Image) -> float:
        """Average per-pixel panel power for a whole frame.

        The source drivers refresh every pixel each frame, so the panel
        power of a frame is the mean of the per-pixel powers (normalized
        per-pixel units, same scale as the CCFL model).
        """
        return float(np.mean(self.pixel_power(image.to_grayscale().as_float())))

    def power_vs_transmittance(self, transmittance: float | np.ndarray
                               ) -> float | np.ndarray:
        """Panel power as a function of global transmittance (Fig. 6b x-axis)."""
        x = self.transmissivity.pixel_value(transmittance)
        return self.pixel_power(x)


#: LG-Philips LP064V1 panel coefficients (paper Sec. 5.1b, Fig. 6b).
LP064V1_PANEL = PanelModel()


def simulate_panel_measurements(
    model: PanelModel = LP064V1_PANEL,
    n_points: int = 20,
    noise: float = 0.0015,
    seed: int = 1996,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate the current/power measurement behind Fig. 6b.

    Returns ``(transmittance, power)`` pairs: the analytic quadratic model
    sampled on a transmittance grid with a small reproducible additive noise
    (the paper's plotted measurements scatter by well under 1%).  The Fig. 6b
    experiment re-fits a quadratic to these pseudo-measurements and compares
    the recovered coefficients against Eq. (12).
    """
    if n_points < 4:
        raise ValueError("need at least 4 measurement points")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    transmittance = np.linspace(0.05, 1.0, n_points)
    power = np.asarray(model.power_vs_transmittance(transmittance),
                       dtype=np.float64)
    power = power + noise * rng.standard_normal(n_points)
    return transmittance, power
