"""Programmable LCD Reference Driver (PLRD) models — paper Sec. 4.1, Fig. 5.

The source driver of a TFT-LCD converts pixel values into grayscale voltages
by mixing a small set of *reference voltages* produced by a resistive
divider.  Backlight-scaling techniques piggy-back on this structure: instead
of rewriting every pixel in the frame buffer, they re-program the reference
voltages so the *grayscale-voltage transfer function* itself realizes the
pixel transformation.

Two driver architectures are modelled:

* :class:`ConventionalDriver` — the single-band architecture of ref. [5]
  (Fig. 5a): switches at both ends of a single voltage divider clamp the low
  and high grayscale levels, so the transfer function is restricted to the
  single-band grayscale-spreading form of Fig. 2d (one linear region with
  one slope, flat bands only at the two ends).

* :class:`HierarchicalDriver` — the paper's proposal (Fig. 5b): ``k``
  independently controllable sources ``V_i`` feed a hierarchy of dividers,
  so the transfer function can be any monotone piecewise-linear curve with
  at most ``k`` segments, including flat bands in the *middle* of the
  grayscale range.  Given an approximated transformation ``Lambda`` and a
  backlight factor ``beta``, the source voltages are programmed as
  ``V_i = V_dd * Y_qi / beta`` (Eq. 10), the division by ``beta``
  compensating for the dimmed backlight.

Both drivers expose the same interface: ``program()`` accepts a
:class:`~repro.core.plc.PiecewiseLinearCurve` (or breakpoint arrays) plus a
backlight factor, validates that the hardware can realize it, and returns a
:class:`DriverProgram` whose :meth:`DriverProgram.lut` gives the effective
pixel-value mapping actually applied by the hardware (including voltage
clamping at ``V_dd``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "DriverProgram",
    "ReferenceVoltageDriver",
    "ConventionalDriver",
    "HierarchicalDriver",
]


@dataclass(frozen=True)
class DriverProgram:
    """The result of programming a reference-voltage driver.

    Attributes
    ----------
    breakpoint_levels:
        Input grayscale levels (``x`` components ``X_qi``) of the programmed
        piecewise-linear transfer function, in increasing order.
    reference_voltages:
        Programmed node voltages, one per breakpoint, in volts.  These are
        the ``V_i = V_dd * Y_qi / beta`` of Eq. (10), clamped to
        ``[0, V_dd]`` because a resistive divider cannot exceed the supply.
    backlight_factor:
        The backlight factor ``beta`` the program compensates for.
    vdd:
        Supply voltage of the driver.
    levels:
        Number of representable grayscale levels (256 for 8-bit panels).
    """

    breakpoint_levels: np.ndarray
    reference_voltages: np.ndarray
    backlight_factor: float
    vdd: float
    levels: int = 256

    def __post_init__(self) -> None:
        levels = np.asarray(self.breakpoint_levels, dtype=np.float64)
        volts = np.asarray(self.reference_voltages, dtype=np.float64)
        if levels.ndim != 1 or volts.ndim != 1 or levels.size != volts.size:
            raise ValueError("breakpoints and voltages must be 1-D and equal length")
        if levels.size < 2:
            raise ValueError("a driver program needs at least two breakpoints")
        if np.any(np.diff(levels) <= 0):
            raise ValueError("breakpoint levels must be strictly increasing")
        if np.any(np.diff(volts) < 0):
            raise ValueError("reference voltages must be non-decreasing")
        if volts.min() < -1e-9 or volts.max() > self.vdd + 1e-9:
            raise ValueError("reference voltages must lie within [0, Vdd]")
        object.__setattr__(self, "breakpoint_levels", levels)
        object.__setattr__(self, "reference_voltages", volts)

    @property
    def n_segments(self) -> int:
        """Number of linear segments of the programmed transfer function."""
        return int(self.breakpoint_levels.size - 1)

    def grayscale_voltage(self, level: float | np.ndarray) -> np.ndarray:
        """Grayscale voltage produced for input level(s) ``level``.

        The source driver interpolates linearly between the programmed
        reference voltages (Sec. 2: "the source driver mixes different
        reference voltages to obtain the desired grayscale voltages").
        """
        level_array = np.clip(np.asarray(level, dtype=np.float64),
                              0, self.levels - 1)
        return np.interp(level_array, self.breakpoint_levels,
                         self.reference_voltages)

    def displayed_value(self, level: float | np.ndarray) -> np.ndarray:
        """Effective displayed pixel value (0..levels-1) for input level(s).

        The displayed value is the grayscale voltage normalized by ``V_dd``;
        voltages at the rail saturate at the maximum level, which is exactly
        the clipping behaviour of Fig. 2's ``min(1, .)`` terms.
        """
        voltage = self.grayscale_voltage(level)
        return np.clip(voltage / self.vdd, 0.0, 1.0) * (self.levels - 1)

    def lut(self) -> np.ndarray:
        """Full look-up table: displayed value for every input level."""
        return self.displayed_value(np.arange(self.levels))


class ReferenceVoltageDriver:
    """Common behaviour of the PLRD models.

    Parameters
    ----------
    vdd:
        Supply voltage available to the divider network.
    levels:
        Number of grayscale levels the panel accepts (256 for 8 bits).
    """

    def __init__(self, vdd: float = 3.3, levels: int = 256) -> None:
        if vdd <= 0:
            raise ValueError("Vdd must be positive")
        if levels < 2:
            raise ValueError("need at least two grayscale levels")
        self.vdd = float(vdd)
        self.levels = int(levels)

    # -- interface ------------------------------------------------------ #
    def max_segments(self) -> int:
        """Largest number of linear segments the driver can realize."""
        raise NotImplementedError

    def can_realize(self, x_breaks: Sequence[float],
                    y_breaks: Sequence[float]) -> bool:
        """Whether the transfer function with these breakpoints is realizable."""
        raise NotImplementedError

    def program(self, x_breaks: Sequence[float], y_breaks: Sequence[float],
                backlight_factor: float) -> DriverProgram:
        """Program the driver for a piecewise-linear transfer function.

        ``x_breaks``/``y_breaks`` describe the *compressed-image* transfer
        function ``Lambda`` in grayscale levels (both in ``[0, levels-1]``).
        ``backlight_factor`` is ``beta``; the programmed voltages divide the
        ``y`` values by ``beta`` (Eq. 10) to compensate for dimming and clamp
        at ``V_dd``.
        """
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------- #
    def _validate_breakpoints(self, x_breaks: Sequence[float],
                              y_breaks: Sequence[float]
                              ) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x_breaks, dtype=np.float64)
        y = np.asarray(y_breaks, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1 or x.size != y.size:
            raise ValueError("x and y breakpoints must be 1-D and equal length")
        if x.size < 2:
            raise ValueError("need at least two breakpoints")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x breakpoints must be strictly increasing")
        if np.any(np.diff(y) < 0):
            raise ValueError(
                "y breakpoints must be non-decreasing (monotone transfer "
                "function, GHE guarantees this)"
            )
        if x[0] < 0 or x[-1] > self.levels - 1:
            raise ValueError("x breakpoints outside the grayscale level range")
        if y.min() < 0 or y.max() > self.levels - 1:
            raise ValueError("y breakpoints outside the grayscale level range")
        return x, y

    def _voltages_for(self, y_breaks: np.ndarray,
                      backlight_factor: float) -> np.ndarray:
        """Apply Eq. (10): ``V_i = V_dd * Y_qi / beta`` with rail clamping."""
        if not 0.0 < backlight_factor <= 1.0:
            raise ValueError(
                f"backlight factor must be in (0, 1], got {backlight_factor}"
            )
        normalized = y_breaks / float(self.levels - 1)
        volts = self.vdd * normalized / backlight_factor
        return np.clip(volts, 0.0, self.vdd)


class ConventionalDriver(ReferenceVoltageDriver):
    """Single-band PLRD of ref. [5] (Fig. 5a).

    The divider has clamping switches only at the two ends, so the
    realizable transfer functions are exactly the single-band
    grayscale-spreading curves of Fig. 2d: at most three segments, where the
    first and last segments (if present) must be flat (slope 0) and the
    middle segment has a single free slope.
    """

    def __init__(self, vdd: float = 3.3, levels: int = 256,
                 n_taps: int = 10) -> None:
        super().__init__(vdd=vdd, levels=levels)
        if n_taps < 2:
            raise ValueError("the voltage divider needs at least two taps")
        #: Number of divider taps (ref. [11] uses a 10-way divider); only
        #: affects the voltage quantization, not the band structure.
        self.n_taps = int(n_taps)

    def max_segments(self) -> int:
        return 3

    def can_realize(self, x_breaks: Sequence[float],
                    y_breaks: Sequence[float]) -> bool:
        x, y = self._validate_breakpoints(x_breaks, y_breaks)
        slopes = np.diff(y) / np.diff(x)
        non_flat = np.where(slopes > 1e-9)[0]
        if non_flat.size == 0:
            return True  # completely flat function: trivially realizable
        # all non-flat segments must be contiguous and share one slope
        if non_flat[-1] - non_flat[0] + 1 != non_flat.size:
            return False
        unique_slopes = slopes[non_flat]
        if not np.allclose(unique_slopes, unique_slopes[0], rtol=1e-6, atol=1e-9):
            return False
        # flat regions may only exist before and after the linear band
        return True

    def program(self, x_breaks: Sequence[float], y_breaks: Sequence[float],
                backlight_factor: float) -> DriverProgram:
        x, y = self._validate_breakpoints(x_breaks, y_breaks)
        if not self.can_realize(x, y):
            raise ValueError(
                "the conventional single-band driver cannot realize a "
                "multi-slope transfer function; use HierarchicalDriver"
            )
        volts = self._voltages_for(y, backlight_factor)
        return DriverProgram(x, volts, backlight_factor, self.vdd, self.levels)


class HierarchicalDriver(ReferenceVoltageDriver):
    """The paper's hierarchical k-source PLRD (Fig. 5b).

    ``k`` controllable voltage sources feed a hierarchical divider, so any
    monotone piecewise-linear transfer function with at most ``k`` segments
    is realizable — including flat bands in the middle of the grayscale
    range (Sec. 4.1).  At reset the sources sit at ``V_i = i * V_dd / k``,
    which realizes the identity (slope-one) transfer function.
    """

    def __init__(self, n_sources: int = 8, vdd: float = 3.3,
                 levels: int = 256) -> None:
        super().__init__(vdd=vdd, levels=levels)
        if n_sources < 2:
            raise ValueError("the hierarchical driver needs at least two sources")
        self.n_sources = int(n_sources)

    def max_segments(self) -> int:
        return self.n_sources

    def default_voltages(self) -> np.ndarray:
        """Reset voltages ``V_i = i * V_dd / k`` (identity transfer function)."""
        return np.arange(1, self.n_sources + 1) * self.vdd / self.n_sources

    def can_realize(self, x_breaks: Sequence[float],
                    y_breaks: Sequence[float]) -> bool:
        x, _ = self._validate_breakpoints(x_breaks, y_breaks)
        return x.size - 1 <= self.max_segments()

    def program(self, x_breaks: Sequence[float], y_breaks: Sequence[float],
                backlight_factor: float) -> DriverProgram:
        x, y = self._validate_breakpoints(x_breaks, y_breaks)
        if not self.can_realize(x, y):
            raise ValueError(
                f"transfer function has {x.size - 1} segments but the driver "
                f"only has {self.n_sources} controllable sources"
            )
        volts = self._voltages_for(y, backlight_factor)
        return DriverProgram(x, volts, backlight_factor, self.vdd, self.levels)
