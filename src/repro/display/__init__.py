"""Behavioural models of the transmissive TFT-LCD display subsystem.

This package is the hardware substrate of the reproduction (paper Sec. 2 and
Sec. 5.1): the CCFL backlight, the a-Si:H TFT panel, the source-driver
reference-voltage network (conventional and the paper's hierarchical
variant), a simple LCD controller + frame buffer, and the power accounting
used by every experiment.

* :mod:`~repro.display.ccfl` — CCFL illuminance and power model (Eq. 11)
  with the LG-Philips LP064V1 coefficients, plus a measurement simulator
  used to regenerate Fig. 6a.
* :mod:`~repro.display.panel` — TFT panel transmissivity and power model
  (Eq. 12), normally-white and normally-black variants, Fig. 6b simulator.
* :mod:`~repro.display.driver` — Programmable LCD Reference Driver models:
  the conventional single-band divider of ref. [5] and the hierarchical
  k-source divider proposed by the paper (Fig. 5), including Eq. (10)
  voltage programming and realizability checks.
* :mod:`~repro.display.controller` — LCD controller / frame buffer
  simulation that turns pixel values into grayscale voltages, transmittances
  and luminances for a whole frame.
* :mod:`~repro.display.power` — total display power and power-saving
  accounting used by Table 1 and Fig. 8.
* :mod:`~repro.display.oled` — the emissive (OLED/AMOLED) display class:
  per-primary pixel-power model with sRGB luminance weighting and static
  overhead, mirroring the CCFL/panel surfaces so the controller and the
  unified API drive either panel class.
"""

from repro.display.ccfl import CCFLModel, LP064V1_CCFL, simulate_ccfl_measurements
from repro.display.panel import (
    PanelModel,
    LP064V1_PANEL,
    TransmissivityModel,
    simulate_panel_measurements,
)
from repro.display.driver import (
    ReferenceVoltageDriver,
    ConventionalDriver,
    HierarchicalDriver,
    DriverProgram,
)
from repro.display.controller import LCDController, FrameBuffer, DisplayedFrame
from repro.display.power import DisplayPowerModel, PowerBreakdown, power_saving
from repro.display.oled import (
    EmissionModel,
    OLEDDisplayPowerModel,
    OLEDModel,
    OLEDPanelAdapter,
    OLEDPowerBreakdown,
    OLEDSupplyModel,
    QVGA_AMOLED,
    linear_to_srgb,
    oled_power_saving,
    srgb_to_linear,
)
from repro.display.interface import (
    VideoBusModel,
    available_encodings,
    binary_encode,
    gray_encode,
    bus_invert_encode,
    count_transitions,
)

__all__ = [
    "CCFLModel",
    "LP064V1_CCFL",
    "simulate_ccfl_measurements",
    "PanelModel",
    "LP064V1_PANEL",
    "TransmissivityModel",
    "simulate_panel_measurements",
    "ReferenceVoltageDriver",
    "ConventionalDriver",
    "HierarchicalDriver",
    "DriverProgram",
    "LCDController",
    "FrameBuffer",
    "DisplayedFrame",
    "DisplayPowerModel",
    "PowerBreakdown",
    "power_saving",
    "EmissionModel",
    "OLEDModel",
    "OLEDPowerBreakdown",
    "OLEDDisplayPowerModel",
    "OLEDSupplyModel",
    "OLEDPanelAdapter",
    "QVGA_AMOLED",
    "srgb_to_linear",
    "linear_to_srgb",
    "oled_power_saving",
    "VideoBusModel",
    "available_encodings",
    "binary_encode",
    "gray_encode",
    "bus_invert_encode",
    "count_transitions",
]
