"""HEBS: Histogram Equalization for Backlight Scaling — full reproduction.

This package reproduces Iranli, Fatemi & Pedram, *"HEBS: Histogram
Equalization for Backlight Scaling"*, DATE 2005: a technique that dims the
CCFL backlight of a transmissive TFT-LCD and compensates with a
histogram-equalizing pixel transformation realized by the LCD
reference-voltage driver, subject to a user-specified distortion budget.

Sub-packages
------------
``repro.core``
    The HEBS algorithm: histograms, global histogram equalization, piecewise
    linear coarsening, the distortion characteristic curve and the end-to-end
    pipeline.
``repro.imaging``
    Image containers, pixel operations, PGM/PPM/CSV I/O and the synthetic
    benchmark suite standing in for USC-SIPI.
``repro.quality``
    Distortion measures: UQI, SSIM, RMSE/PSNR, saturation percentage,
    contrast fidelity, and the paper's HVS-weighted effective distortion.
``repro.display``
    Behavioural hardware models: CCFL backlight, TFT panel, reference-voltage
    drivers (conventional and hierarchical), LCD controller, power accounting.
``repro.baselines``
    The prior techniques HEBS is compared with: DLS (brightness / contrast
    compensation) and CBCS (single-band grayscale spreading).
``repro.analysis``
    Regression fits, parameter sweeps and table/series rendering.
``repro.bench``
    The experiment harness: one callable per paper table / figure.
``repro.api``
    The unified serving surface: the thread-safe
    :class:`~repro.api.engine.Engine` facade, the algorithm registry and the
    histogram-keyed solution cache.  This is the canonical entry point; the
    per-technique classes remain the implementation layer underneath.
``repro.serve``
    The concurrent serving layer: the micro-batching request coalescer, the
    worker-pool :class:`~repro.serve.server.Server` with warm-up and
    backpressure, live statistics and the load generator.

Quickstart
----------
>>> from repro import Engine, imaging
>>> engine = Engine()                       # default algorithm: "hebs"
>>> image = imaging.load_benchmark("lena")
>>> result = engine.process(image, max_distortion=10.0)
>>> 0.0 < result.backlight_factor <= 1.0
True
"""

from repro import analysis, api, baselines, bench, core, display, imaging, quality
from repro.api.engine import Engine
from repro.api.types import CompensationResult
from repro.core.pipeline import HEBS, HEBSConfig, HEBSResult

__version__ = "1.2.0"


def __getattr__(name: str):
    # PEP 562 lazy exports: the serving layer loads on first use, so plain
    # `import repro` (and the CLI's serve-free paths) stay lean
    if name == "serve":
        import repro.serve as serve
        return serve
    if name == "Server":
        from repro.serve.server import Server
        return Server
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "analysis",
    "api",
    "baselines",
    "bench",
    "core",
    "display",
    "imaging",
    "quality",
    "serve",
    "Engine",
    "Server",
    "CompensationResult",
    "HEBS",
    "HEBSConfig",
    "HEBSResult",
    "__version__",
]
