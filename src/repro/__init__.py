"""HEBS: Histogram Equalization for Backlight Scaling — full reproduction.

This package reproduces Iranli, Fatemi & Pedram, *"HEBS: Histogram
Equalization for Backlight Scaling"*, DATE 2005: a technique that dims the
CCFL backlight of a transmissive TFT-LCD and compensates with a
histogram-equalizing pixel transformation realized by the LCD
reference-voltage driver, subject to a user-specified distortion budget.

Sub-packages
------------
``repro.core``
    The HEBS algorithm: histograms, global histogram equalization, piecewise
    linear coarsening, the distortion characteristic curve and the end-to-end
    pipeline.
``repro.imaging``
    Image containers, pixel operations, PGM/PPM/CSV I/O and the synthetic
    benchmark suite standing in for USC-SIPI.
``repro.quality``
    Distortion measures: UQI, SSIM, RMSE/PSNR, saturation percentage,
    contrast fidelity, and the paper's HVS-weighted effective distortion.
``repro.display``
    Behavioural hardware models: CCFL backlight, TFT panel, reference-voltage
    drivers (conventional and hierarchical), LCD controller, power accounting.
``repro.baselines``
    The prior techniques HEBS is compared with: DLS (brightness / contrast
    compensation) and CBCS (single-band grayscale spreading).
``repro.analysis``
    Regression fits, parameter sweeps and table/series rendering.
``repro.bench``
    The experiment harness: one callable per paper table / figure.

Quickstart
----------
>>> from repro import bench, imaging
>>> pipeline = bench.default_pipeline()
>>> image = imaging.load_benchmark("lena")
>>> result = pipeline.process(image, max_distortion=10.0)
>>> round(result.backlight_factor, 2) <= 1.0
True
"""

from repro import analysis, baselines, bench, core, display, imaging, quality
from repro.core.pipeline import HEBS, HEBSConfig, HEBSResult

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "bench",
    "core",
    "display",
    "imaging",
    "quality",
    "HEBS",
    "HEBSConfig",
    "HEBSResult",
    "__version__",
]
