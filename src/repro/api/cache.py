"""Histogram-keyed LRU cache for compensation solutions.

The paper's real-time flow (Fig. 4) rests on one observation: the HEBS
transformation depends only on the image *histogram* and the distortion
budget, never on the pixel layout.  Two frames with (approximately) the same
histogram therefore share the same solved transformation, backlight factor
and driver program — everything in a
:class:`~repro.api.types.CompensationSolution`.  The prior techniques share
the property: the DLS policy search and the CBCS band placement are
histogram statistics too.

:func:`histogram_signature` turns a histogram into a compact byte key.  By
default (``bins=256``, matching the engine's ``signature_bins``) the key is
the exact 8-bit histogram at fixed-point probability resolution, so only
genuinely identical distributions share an entry (the same photo at a
different resolution still collapses — probabilities are size-invariant).
Passing a smaller ``bins`` coarsens the level axis so near-identical frames
(e.g. consecutive video frames) collapse too, trading exactness for more
cross-content reuse.  :class:`SolutionCache` is a thread-safe LRU dictionary
over such keys with hit / miss / replay counters, surfaced by the engine as
:class:`CacheStats`.

A cache *hit* replays the stored solution onto the new image; distortion and
power are always re-measured on the actual pixels, so for a genuinely
identical image the hit result is bitwise-identical to a cold run.  For
merely similar images the reuse is the approximation the paper's real-time
flow already makes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.histogram import Histogram

__all__ = ["histogram_signature", "CacheStats", "SolutionCache"]

#: Fixed-point resolution of the probability quantization: probabilities are
#: rounded to multiples of 1/4096 (12 bits), so histograms differing by less
#: than ~0.025% of the pixel mass in every bucket share a signature.
_PROBABILITY_STEPS = 4096


def histogram_signature(histogram: Histogram, bins: int = 256) -> bytes:
    """A compact, quantized byte signature of a histogram.

    Parameters
    ----------
    histogram:
        The marginal pixel-value distribution to fingerprint.
    bins:
        Number of coarse buckets on the grayscale axis.  ``bins`` equal to
        (or above) the level count keeps full level resolution; smaller
        values make the signature — and therefore the cache — more tolerant
        of small content changes.  The default (``256``) keys on the exact
        8-bit histogram, matching the engine's ``signature_bins`` default.
    """
    if bins < 1:
        raise ValueError("bins must be at least 1")
    probabilities = histogram.probabilities()
    if bins < histogram.levels:
        edges = np.linspace(0, histogram.levels, bins + 1).astype(np.int64)
        probabilities = np.add.reduceat(probabilities, edges[:-1])
    quantized = np.rint(probabilities * _PROBABILITY_STEPS).astype(np.uint16)
    return quantized.tobytes()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/replay counters of a :class:`SolutionCache` at one point in
    time.

    ``hits`` and ``misses`` count genuine cache probes; ``replays`` counts
    solution reuses that never probed the cache (members of a
    :meth:`~repro.api.engine.Engine.process_batch` group past the first, who
    share the group's single probe/solve).  Keeping the two apart keeps
    :attr:`hit_rate` an honest probe statistic while :attr:`reuse_rate`
    reports the fraction of images that skipped a solve.
    """

    hits: int
    misses: int
    size: int
    max_size: int
    evictions: int
    replays: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes (replays excluded)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def reuse_rate(self) -> float:
        """Fraction of served images that reused a solution (hit or replay)
        instead of paying a fresh solve (0 when unused)."""
        total = self.lookups + self.replays
        return (self.hits + self.replays) / total if total else 0.0


class SolutionCache:
    """A bounded least-recently-used mapping from cache keys to solutions.

    Keys are opaque hashables (the engine combines the algorithm name, the
    quantized histogram signature and the budget); values are
    :class:`~repro.api.types.CompensationSolution` instances.  All public
    methods are thread safe: a single internal lock guards the entry map and
    the counters, so the cache can be shared by every worker of a
    :class:`~repro.serve.Server` without external synchronization.
    """

    def __init__(self, max_size: int = 256) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = int(max_size)
        self._lock = threading.RLock()
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._replays = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: object):
        """The cached solution for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: object, touch: bool = True):
        """The cached solution for ``key`` without hit/miss accounting.

        Used by the engine's double-checked solve path: after losing a solve
        race the winner's entry is already present, and the re-check must not
        count a second probe.  ``touch`` refreshes the entry's LRU recency
        (the reuse is real even if the probe is not counted).
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None and touch:
                self._entries.move_to_end(key)
            return value

    def put(self, key: object, value: object) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def note_hit(self, count: int = 1) -> None:
        """Record ``count`` cache hits that bypassed :meth:`get` (e.g. a
        double-checked :meth:`peek` that found the entry)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            self._hits += count

    def note_replays(self, count: int = 1) -> None:
        """Record ``count`` solution replays that never probed the cache
        (batch-group members sharing one probe/solve)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            self._replays += count

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._replays = 0

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the hit/miss/eviction/replay counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                max_size=self.max_size,
                evictions=self._evictions,
                replays=self._replays,
            )
