"""Histogram-keyed LRU cache for compensation solutions.

The paper's real-time flow (Fig. 4) rests on one observation: the HEBS
transformation depends only on the image *histogram* and the distortion
budget, never on the pixel layout.  Two frames with (approximately) the same
histogram therefore share the same solved transformation, backlight factor
and driver program — everything in a
:class:`~repro.api.types.CompensationSolution`.  The prior techniques share
the property: the DLS policy search and the CBCS band placement are
histogram statistics too.

:func:`histogram_signature` quantizes a histogram into a compact byte key —
coarse on the level axis (``bins`` buckets) and on the count axis (fixed-
point probabilities) so near-identical frames (consecutive video frames, the
same photo at a different resolution) collapse onto one entry.
:class:`SolutionCache` is a plain LRU dictionary over such keys with hit /
miss counters, surfaced by the engine as :class:`CacheStats`.

A cache *hit* replays the stored solution onto the new image; distortion and
power are always re-measured on the actual pixels, so for a genuinely
identical image the hit result is bitwise-identical to a cold run.  For
merely similar images the reuse is the approximation the paper's real-time
flow already makes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.histogram import Histogram

__all__ = ["histogram_signature", "CacheStats", "SolutionCache"]

#: Fixed-point resolution of the probability quantization: probabilities are
#: rounded to multiples of 1/4096 (12 bits), so histograms differing by less
#: than ~0.025% of the pixel mass in every bucket share a signature.
_PROBABILITY_STEPS = 4096


def histogram_signature(histogram: Histogram, bins: int = 64) -> bytes:
    """A compact, quantized byte signature of a histogram.

    Parameters
    ----------
    histogram:
        The marginal pixel-value distribution to fingerprint.
    bins:
        Number of coarse buckets on the grayscale axis.  ``bins`` equal to
        (or above) the level count keeps full level resolution; smaller
        values make the signature — and therefore the cache — more tolerant
        of small content changes.
    """
    if bins < 1:
        raise ValueError("bins must be at least 1")
    probabilities = histogram.probabilities()
    if bins < histogram.levels:
        edges = np.linspace(0, histogram.levels, bins + 1).astype(np.int64)
        probabilities = np.add.reduceat(probabilities, edges[:-1])
    quantized = np.rint(probabilities * _PROBABILITY_STEPS).astype(np.uint16)
    return quantized.tobytes()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`SolutionCache` at one point in time."""

    hits: int
    misses: int
    size: int
    max_size: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class SolutionCache:
    """A bounded least-recently-used mapping from cache keys to solutions.

    Keys are opaque hashables (the engine combines the algorithm name, the
    quantized histogram signature and the budget); values are
    :class:`~repro.api.types.CompensationSolution` instances.  Not thread
    safe — wrap access in a lock if the engine is shared across threads.
    """

    def __init__(self, max_size: int = 256) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = int(max_size)
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: object):
        """The cached solution for ``key``, or ``None`` (counts hit/miss)."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: object, value: object) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._entries),
            max_size=self.max_size,
            evictions=self._evictions,
        )
