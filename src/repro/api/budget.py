"""Dynamic distortion-budget policy: operating conditions → budget.

The paper treats the distortion budget as a free parameter ("the maximum
tolerable distortion").  In a deployed system the budget is not free — it is
a *policy* over the operating conditions of the device: under bright ambient
light the eye's contrast sensitivity drops and masking hides larger
distortions; on a draining battery the user trades quality for runtime; on a
charger there is nothing to trade.  This module grows that policy out of the
:mod:`repro.baselines.policy` seam: where ``find_minimum_backlight`` turns a
*budget* into an operating point, :class:`BudgetPolicy` turns *conditions*
into the budget, so the two compose into a closed loop:

    conditions --BudgetPolicy--> budget --Engine/Server--> operating point

Budgets are quantized to a configurable step.  This is not cosmetic: the
engine's solution cache keys on the exact budget
(:meth:`repro.api.engine.Engine._cache_key` participates the float
verbatim), so a continuous policy output would make every ambient-light
sensor wiggle a cache miss.  Quantization pools nearby conditions onto one
cached solution per histogram.

Both records have exact wire forms (plain JSON scalars), so a client can
evaluate the policy locally and ship only the resulting budget, or ship the
conditions and let the server evaluate — either way the budget that reaches
the cache is identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["OperatingConditions", "BudgetPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class OperatingConditions:
    """Device state a budget policy consumes.

    Attributes
    ----------
    ambient_lux:
        Ambient illuminance at the display (lux): ~10 is a dark room,
        ~250 an office, ~10000 outdoor shade, ~100000 direct sun.
    battery_level:
        Remaining battery as a fraction in ``[0, 1]``.
    charging:
        Whether the device is on external power.
    """

    ambient_lux: float = 250.0
    battery_level: float = 1.0
    charging: bool = False

    def __post_init__(self) -> None:
        if self.ambient_lux < 0:
            raise ValueError("ambient_lux must be non-negative")
        if not 0.0 <= self.battery_level <= 1.0:
            raise ValueError("battery_level must be in [0, 1]")

    def to_wire(self) -> Mapping[str, Any]:
        """Exact JSON-ready form."""
        return {"ambient_lux": float(self.ambient_lux),
                "battery_level": float(self.battery_level),
                "charging": bool(self.charging)}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "OperatingConditions":
        """Reconstruct from :meth:`to_wire` output."""
        return cls(ambient_lux=float(payload.get("ambient_lux", 250.0)),
                   battery_level=float(payload.get("battery_level", 1.0)),
                   charging=bool(payload.get("charging", False)))


@dataclass(frozen=True)
class BudgetPolicy:
    """Map operating conditions to a per-request/per-session budget.

    The budget is assembled additively and then quantized and clamped:

        budget = base + ambient_gain * max(0, log10(lux / reference))
                      + battery_gain * max(0, (threshold - level)/threshold)

    * The **ambient** term follows the decade structure of brightness
      perception (Weber–Fechner): each decade of illuminance above the dim
      reference buys ``ambient_gain`` percentage points of budget, because
      ambient masking hides that much more distortion.
    * The **battery** term ramps linearly from 0 at the threshold to
      ``battery_gain`` points at an empty battery, and is dropped entirely
      while charging.

    Parameters
    ----------
    base_budget:
        Budget (percent distortion) under reference conditions.
    min_budget, max_budget:
        Clamp range of the final budget.
    ambient_reference_lux:
        Illuminance at/below which the ambient term contributes nothing.
    ambient_gain:
        Budget points added per decade of ambient above the reference.
    low_battery_threshold:
        Battery fraction below which the battery term starts ramping.
    low_battery_gain:
        Budget points added at a fully drained battery.
    quantize_step:
        Grid the final budget snaps to.  Coarser steps pool more operating
        conditions onto shared cache entries (see the module docstring);
        ``0`` disables quantization.
    """

    base_budget: float = 5.0
    min_budget: float = 1.0
    max_budget: float = 25.0
    ambient_reference_lux: float = 50.0
    ambient_gain: float = 3.0
    low_battery_threshold: float = 0.30
    low_battery_gain: float = 15.0
    quantize_step: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.min_budget <= self.base_budget <= self.max_budget:
            raise ValueError(
                "need 0 < min_budget <= base_budget <= max_budget")
        if self.ambient_reference_lux <= 0:
            raise ValueError("ambient_reference_lux must be positive")
        if self.ambient_gain < 0 or self.low_battery_gain < 0:
            raise ValueError("gains must be non-negative")
        if not 0.0 < self.low_battery_threshold <= 1.0:
            raise ValueError("low_battery_threshold must be in (0, 1]")
        if self.quantize_step < 0:
            raise ValueError("quantize_step must be non-negative")

    # ------------------------------------------------------------------ #
    def ambient_term(self, ambient_lux: float) -> float:
        """Budget points contributed by ambient masking."""
        if ambient_lux <= self.ambient_reference_lux:
            return 0.0
        return self.ambient_gain * math.log10(
            ambient_lux / self.ambient_reference_lux)

    def battery_term(self, battery_level: float, charging: bool) -> float:
        """Budget points contributed by battery pressure."""
        if charging or battery_level >= self.low_battery_threshold:
            return 0.0
        deficit = ((self.low_battery_threshold - battery_level)
                   / self.low_battery_threshold)
        return self.low_battery_gain * deficit

    def budget_for(self, conditions: OperatingConditions) -> float:
        """The quantized, clamped budget for one set of conditions."""
        raw = (self.base_budget
               + self.ambient_term(conditions.ambient_lux)
               + self.battery_term(conditions.battery_level,
                                   conditions.charging))
        if self.quantize_step > 0:
            raw = round(raw / self.quantize_step) * self.quantize_step
        return float(min(max(raw, self.min_budget), self.max_budget))

    # ------------------------------------------------------------------ #
    def to_wire(self) -> Mapping[str, Any]:
        """Exact JSON-ready form (plain floats round-trip bit-exactly)."""
        return {"base_budget": float(self.base_budget),
                "min_budget": float(self.min_budget),
                "max_budget": float(self.max_budget),
                "ambient_reference_lux": float(self.ambient_reference_lux),
                "ambient_gain": float(self.ambient_gain),
                "low_battery_threshold": float(self.low_battery_threshold),
                "low_battery_gain": float(self.low_battery_gain),
                "quantize_step": float(self.quantize_step)}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BudgetPolicy":
        """Reconstruct from :meth:`to_wire` output."""
        defaults = cls()
        return cls(**{name: type(getattr(defaults, name))(
            payload.get(name, getattr(defaults, name)))
            for name in ("base_budget", "min_budget", "max_budget",
                         "ambient_reference_lux", "ambient_gain",
                         "low_battery_threshold", "low_battery_gain",
                         "quantize_step")})


#: The stock policy: 5% at the desk, up to 25% in the sun on a dying battery.
DEFAULT_POLICY = BudgetPolicy()
