"""Normalized request/result records of the unified compensation API.

Every backlight-scaling technique in this package — HEBS and the prior
techniques it is compared against — solves the same problem: pick a pixel
transformation ``Phi`` and a backlight factor ``beta`` that minimize display
power subject to a distortion budget (the paper's Sec. 3 formulation).  The
algorithms historically exposed different calling conventions and result
records (:class:`~repro.core.pipeline.HEBSResult`,
:class:`~repro.baselines.policy.BaselineResult`); this module defines the
single contract they are all normalized to:

* :class:`CompensationSolution` — the *image-independent* outcome of a
  technique: the transformation, the backlight factor and the driver
  program.  Per the paper's real-time flow (Fig. 4) this depends only on the
  image histogram and the budget, which is what makes it cacheable
  (:mod:`repro.api.cache`).
* :class:`CompensationResult` — the full per-image outcome: the solution
  replayed onto a concrete image, with the achieved distortion and the
  power accounting.
* :class:`StreamFrameResult` — a result wrapped with the temporal-filter
  bookkeeping of :meth:`repro.api.engine.Engine.process_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.transforms import PixelTransform
from repro.display.driver import DriverProgram
from repro.display.power import PowerBreakdown
from repro.imaging.image import Image

__all__ = [
    "CompensationSolution",
    "CompensationResult",
    "StreamFrameResult",
]


@dataclass(frozen=True)
class CompensationSolution:
    """The image-independent part of one technique's answer.

    Attributes
    ----------
    algorithm:
        Registry name of the technique that produced the solution.
    transform:
        The pixel transformation ``Phi`` to apply while the backlight is
        dimmed.
    backlight_factor:
        The dimming factor ``beta`` in ``(0, 1]``.
    driver_program:
        Programmed reference voltages, when the technique targets the
        hierarchical driver (``None`` for the prior techniques, whose
        transforms fit the conventional driver).
    details:
        Technique-specific payload (e.g. the full
        :class:`~repro.core.pipeline.HEBSSolution`), excluded from equality.
    """

    algorithm: str
    transform: PixelTransform
    backlight_factor: float
    driver_program: DriverProgram | None = None
    details: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.backlight_factor <= 1.0:
            raise ValueError(
                f"backlight_factor must be in (0, 1], got {self.backlight_factor}")


@dataclass(frozen=True)
class CompensationResult:
    """Uniform per-image outcome of any registered technique.

    Attributes
    ----------
    algorithm:
        Registry name of the technique.
    original:
        The grayscale input image.
    output:
        The compensated image written to the panel while the backlight is
        dimmed to ``backlight_factor``.
    backlight_factor:
        The dimming factor ``beta``.
    transform:
        The pixel transformation that produced ``output``.
    distortion:
        Achieved distortion in percent (measured with the technique's
        configured measure).
    power, reference_power:
        Display power with the technique applied / at full backlight with no
        transformation.
    max_distortion:
        The distortion budget the technique was asked to respect (``None``
        when the operating point was fixed explicitly).
    driver_program:
        Reference-voltage program, when applicable.
    details:
        The technique's native result record
        (:class:`~repro.core.pipeline.HEBSResult` or
        :class:`~repro.baselines.policy.BaselineResult`), excluded from
        equality.
    from_cache:
        Whether the underlying solution was replayed from the engine's
        histogram-keyed cache rather than solved from scratch.
    replayed:
        Whether the underlying solution was shared from an earlier image of
        the *same* :meth:`~repro.api.engine.Engine.process_batch` call (the
        image belonged to a histogram group past its first member).  Unlike
        ``from_cache`` this also happens with caching disabled — grouping is
        independent of the cache.  When a cache exists the replays are
        tallied in :attr:`repro.api.cache.CacheStats.replays` rather than
        as cache probes; with ``cache_size=0`` there are no cache stats and
        this flag is the only record.
    """

    algorithm: str
    original: Image
    output: Image
    backlight_factor: float
    transform: PixelTransform
    distortion: float
    power: PowerBreakdown
    reference_power: PowerBreakdown
    max_distortion: float | None = None
    # excluded from equality: DriverProgram wraps raw arrays, and equality
    # of results should mean "same images, operating point and outcome"
    driver_program: DriverProgram | None = field(default=None, compare=False)
    details: Any = field(default=None, compare=False)
    from_cache: bool = field(default=False, compare=False)
    replayed: bool = field(default=False, compare=False)

    @property
    def power_saving(self) -> float:
        """Fractional display-power saving versus the full-backlight original."""
        return self.power.saving_versus(self.reference_power)

    @property
    def power_saving_percent(self) -> float:
        """Power saving in percent (the Table-1 unit)."""
        return 100.0 * self.power_saving

    def summary(self) -> Mapping[str, float | str]:
        """Compact dictionary of the headline numbers (for reports/tests)."""
        return {
            "algorithm": self.algorithm,
            "backlight_factor": self.backlight_factor,
            "distortion_percent": self.distortion,
            "power_saving_percent": self.power_saving_percent,
        }


@dataclass(frozen=True)
class StreamFrameResult:
    """One frame's outcome from a :class:`~repro.api.session.StreamSession`
    (and therefore from :meth:`repro.api.engine.Engine.process_stream`,
    which wraps one).

    Attributes
    ----------
    result:
        The compensation actually applied to the frame (re-derived at the
        smoothed backlight factor when smoothing changed it).
    requested_backlight:
        The factor the per-frame policy asked for before temporal smoothing.
    applied_backlight:
        The smoothed, slew-limited factor actually programmed.  A quantized
        re-derivation is only accepted when its factor stays within the
        smoother's ``max_step`` of the previous frame's applied factor (and
        then ``result.backlight_factor == applied_backlight``); otherwise
        the raw result rides at the smoothed factor, exactly like
        algorithms without ``at_backlight``.  When the session snaps on a
        scene cut (``snap_on_scene_change``), the factor jumps with the cut
        instead.
    scene_change:
        Whether the frame was flagged as a scene change by the detector.
    reused:
        Whether the frame rode the session's steady-scene fast path
        (``scene_gated_solve``): the raw result replayed the session's held
        solution instead of running the per-frame policy.  Always ``False``
        outside the fast path.
    """

    result: CompensationResult
    requested_backlight: float
    applied_backlight: float
    scene_change: bool
    reused: bool = field(default=False, compare=False)
