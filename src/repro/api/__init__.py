"""Unified serving API: one pluggable, batched, cache-accelerated surface.

This package is the canonical way to *use* the reproduction.  Every
backlight-scaling technique — HEBS and all the baselines it is compared
against — sits behind one contract and one facade:

>>> from repro.api import Engine
>>> engine = Engine()                          # default algorithm: "hebs"
>>> result = engine.process(image, max_distortion=10.0)
>>> result.backlight_factor, result.power_saving_percent    # doctest: +SKIP

Modules
-------
:mod:`repro.api.types`
    The normalized :class:`CompensationResult` / :class:`CompensationSolution`
    records all techniques produce.
:mod:`repro.api.registry`
    The :class:`CompensationAlgorithm` contract, the adapters wrapping HEBS
    (curve-driven, adaptive, and the equalization variants), DLS and CBCS,
    and the name registry (:func:`register` / :func:`create` /
    :func:`available_algorithms`).
:mod:`repro.api.cache`
    The histogram-keyed LRU solution cache exploiting the paper's Fig. 4
    observation that the transform depends only on histogram and budget.
:mod:`repro.api.engine`
    The thread-safe :class:`Engine` facade: ``process`` / ``process_batch``
    / ``process_stream`` with cache statistics.  :mod:`repro.serve` builds
    the concurrent serving front end (micro-batching, worker pool,
    backpressure) on top of it.
"""

from repro.api.cache import CacheStats, SolutionCache, histogram_signature
from repro.api.engine import Engine
from repro.api.registry import (
    BaselineAlgorithm,
    CompensationAlgorithm,
    HEBSAlgorithm,
    algorithm_descriptions,
    available_algorithms,
    create,
    register,
)
from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)

__all__ = [
    "Engine",
    "CompensationAlgorithm",
    "HEBSAlgorithm",
    "BaselineAlgorithm",
    "CompensationResult",
    "CompensationSolution",
    "StreamFrameResult",
    "CacheStats",
    "SolutionCache",
    "histogram_signature",
    "register",
    "create",
    "available_algorithms",
    "algorithm_descriptions",
]
