"""Unified serving API: one pluggable, batched, cache-accelerated surface.

This package is the canonical way to *use* the reproduction.  Every
backlight-scaling technique — HEBS and all the baselines it is compared
against — sits behind one contract and one facade:

>>> from repro.api import Engine
>>> engine = Engine()                          # default algorithm: "hebs"
>>> result = engine.process(image, max_distortion=10.0)
>>> result.backlight_factor, result.power_saving_percent    # doctest: +SKIP

Modules
-------
:mod:`repro.api.types`
    The normalized :class:`CompensationResult` / :class:`CompensationSolution`
    records all techniques produce.
:mod:`repro.api.registry`
    The :class:`CompensationAlgorithm` contract, the adapters wrapping HEBS
    (curve-driven, adaptive, and the equalization variants), DLS and CBCS,
    and the name registry (:func:`register` / :func:`create` /
    :func:`available_algorithms`).
:mod:`repro.api.cache`
    The histogram-keyed LRU solution cache exploiting the paper's Fig. 4
    observation that the transform depends only on histogram and budget.
:mod:`repro.api.engine`
    The thread-safe :class:`Engine` facade: ``process`` / ``process_batch``
    / ``open_session`` / ``process_stream`` with cache statistics.
    :mod:`repro.serve` builds the concurrent serving front end
    (micro-batching, worker pool, backpressure, multi-stream sessions) on
    top of it.
:mod:`repro.api.session`
    The push-based :class:`StreamSession`: long-lived per-stream temporal
    state over the shared solution cache (``session.submit(frame)``), with
    the steady-scene fast path and the split-phase surface the serving
    layer batches across sessions.
"""

from repro.api.budget import BudgetPolicy, DEFAULT_POLICY, OperatingConditions
from repro.api.cache import CacheStats, SolutionCache, histogram_signature
from repro.api.engine import Engine
from repro.api.session import (
    SessionClosedError,
    StreamFramePlan,
    StreamSession,
    StreamSessionStats,
)
from repro.api.registry import (
    BaselineAlgorithm,
    CompensationAlgorithm,
    HEBSAlgorithm,
    OLEDDarkenAlgorithm,
    algorithm_descriptions,
    algorithm_display_classes,
    available_algorithms,
    create,
    register,
)
from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)

__all__ = [
    "Engine",
    "StreamSession",
    "StreamSessionStats",
    "StreamFramePlan",
    "SessionClosedError",
    "CompensationAlgorithm",
    "HEBSAlgorithm",
    "BaselineAlgorithm",
    "OLEDDarkenAlgorithm",
    "BudgetPolicy",
    "OperatingConditions",
    "DEFAULT_POLICY",
    "CompensationResult",
    "CompensationSolution",
    "StreamFrameResult",
    "CacheStats",
    "SolutionCache",
    "histogram_signature",
    "register",
    "create",
    "available_algorithms",
    "algorithm_descriptions",
    "algorithm_display_classes",
]
