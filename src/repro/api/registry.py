"""Algorithm protocol and registry: every technique behind one contract.

The unified API rests on a small contract
(:class:`CompensationAlgorithm`): a technique must be able to

* ``solve(image, max_distortion)`` — derive the image-independent
  :class:`~repro.api.types.CompensationSolution` (transformation, backlight
  factor, driver program) for a distortion budget, and
* ``apply_solution(solution, image, ...)`` — replay a solution onto a
  concrete image, producing a normalized
  :class:`~repro.api.types.CompensationResult`.

``compensate()`` composes the two; the engine inserts its histogram-keyed
cache between them.  Techniques that can run at an externally imposed
backlight factor (needed by the temporal filter of ``process_stream``)
additionally implement ``at_backlight()``.

The module registry maps public names to factories.  The built-in entries
cover the whole package: HEBS with the characteristic-curve range selection
(``hebs``), HEBS with per-image bisection (``hebs-adaptive``), HEBS with the
alternative equalization methods (``hebs-clipped``, ``hebs-bbhe``), the two
DLS variants of ref. [4], CBCS of ref. [5], and the emissive-panel
inversions (``oled-darken``, ``oled-darken-clipped``) that darken content
instead of dimming a backlight.  Every entry carries a *display class*
(``"backlit"`` or ``"emissive"``) so tooling can tell which panel a
technique drives.  Third-party techniques can join via :func:`register`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Mapping

import numpy as np

from repro.api.types import CompensationResult, CompensationSolution
from repro.baselines.cbcs import CBCS
from repro.baselines.dls import DLSBrightness, DLSContrast
from repro.baselines.policy import BaselineResult, build_result
from repro.core.darken import ContentDarkener, DarkenResult, DarkenSolution
from repro.core.pipeline import HEBS, HEBSConfig, HEBSResult, HEBSSolution
from repro.imaging.image import Image

__all__ = [
    "CompensationAlgorithm",
    "HEBSAlgorithm",
    "BaselineAlgorithm",
    "OLEDDarkenAlgorithm",
    "register",
    "create",
    "available_algorithms",
    "algorithm_descriptions",
    "algorithm_display_classes",
]


class CompensationAlgorithm:
    """Base class of the unified compensation contract.

    Subclasses set :attr:`name`, :attr:`description` and implement
    :meth:`solve` plus :meth:`apply_solution`; :meth:`compensate` and the
    optional :meth:`at_backlight` complete the surface the engine relies on.
    """

    #: Registry name of the technique (overridden per instance).
    name: str = "abstract"
    #: One-line summary shown by ``repro algorithms``.
    description: str = ""
    #: Display class the technique drives: ``"backlit"`` (power lives in a
    #: lamp, content is brightened to compensate dimming) or ``"emissive"``
    #: (power lives in the pixels, content is darkened).
    display_class: str = "backlit"

    def solve(self, image: Image,
              max_distortion: float) -> CompensationSolution:
        """Derive the image-independent solution for a distortion budget."""
        raise NotImplementedError

    def apply_solution(self, solution: CompensationSolution, image: Image,
                       max_distortion: float | None = None,
                       ) -> CompensationResult:
        """Replay a (possibly cached) solution onto a concrete image."""
        raise NotImplementedError

    def compensate(self, image: Image,
                   max_distortion: float) -> CompensationResult:
        """Solve for ``image`` under the budget and apply the solution."""
        solution = self.solve(image, max_distortion)
        return self.apply_solution(solution, image,
                                   max_distortion=max_distortion)

    def at_backlight(self, image: Image, backlight_factor: float,
                     max_distortion: float | None = None,
                     ) -> CompensationResult:
        """Run the technique at an externally imposed backlight factor.

        Optional; required only for algorithms used with the temporal filter
        of :meth:`repro.api.engine.Engine.process_stream`.
        """
        raise NotImplementedError(
            f"{self.name!r} cannot run at a fixed backlight factor")


# --------------------------------------------------------------------- #
# adapters
# --------------------------------------------------------------------- #
def _wrap_hebs(result: HEBSResult, name: str) -> CompensationResult:
    """Normalize a native HEBS result record."""
    return CompensationResult(
        algorithm=name,
        original=result.original,
        output=result.transformed,
        backlight_factor=result.backlight_factor,
        transform=result.transform,
        distortion=result.distortion,
        power=result.power,
        reference_power=result.reference_power,
        max_distortion=result.max_distortion,
        driver_program=result.driver_program,
        details=result,
    )


def _wrap_baseline(result: BaselineResult, name: str,
                   transform) -> CompensationResult:
    """Normalize a native baseline result record."""
    budget = result.max_distortion
    return CompensationResult(
        algorithm=name,
        original=result.original,
        output=result.displayed,
        backlight_factor=result.backlight_factor,
        transform=transform,
        distortion=result.distortion,
        power=result.power,
        reference_power=result.reference_power,
        max_distortion=None if math.isnan(budget) else budget,
        driver_program=None,
        details=result,
    )


class HEBSAlgorithm(CompensationAlgorithm):
    """Adapter exposing the HEBS pipeline through the unified contract.

    Parameters
    ----------
    pipeline:
        A configured :class:`~repro.core.pipeline.HEBS` instance; defaults
        to :func:`repro.bench.suite.default_pipeline` (characterized on the
        built-in suite).
    adaptive:
        ``False`` selects the dynamic range from the global characteristic
        curve (the paper's real-time flow, purely histogram-driven);
        ``True`` bisects on the measured per-image distortion (the offline
        Table-1 selection).
    equalization:
        Equalization method for step 2 (``"ghe"``, ``"clipped"``,
        ``"bbhe"``); only consulted when ``pipeline`` is not given.
    measure:
        Distortion measure used to characterize the default pipeline; only
        consulted when ``pipeline`` is not given.
    name:
        Registry name to report in results (defaults per configuration).
    """

    def __init__(self, pipeline: HEBS | None = None, *,
                 adaptive: bool = False, equalization: str = "ghe",
                 measure: str = "effective", name: str | None = None) -> None:
        if pipeline is None:
            # deferred import: bench.suite must stay importable without api
            from repro.bench.suite import default_pipeline
            config = HEBSConfig(equalization=equalization)
            pipeline = default_pipeline(measure=measure, config=config)
        self.pipeline = pipeline
        self.adaptive = bool(adaptive)
        if name is None:
            name = "hebs-adaptive" if adaptive else "hebs"
            if pipeline.config.equalization != "ghe":
                name = f"hebs-{pipeline.config.equalization}"
        self.name = name
        self.description = (
            "HEBS with per-image bisection on the measured distortion"
            if self.adaptive else
            "HEBS via the global distortion characteristic curve (Fig. 4)")
        if pipeline.config.equalization != "ghe":
            self.description = (
                f"HEBS with {pipeline.config.equalization} equalization "
                f"in place of GHE")

    def _solution_from_result(self, result: HEBSResult,
                              max_distortion: float) -> CompensationSolution:
        native = HEBSSolution(
            target_range=result.target_range,
            backlight_factor=result.backlight_factor,
            ghe=result.ghe,
            coarse_curve=result.coarse_curve,
            transform=result.transform,
            driver_program=result.driver_program,
            max_distortion=max_distortion,
        )
        return CompensationSolution(
            algorithm=self.name,
            transform=native.transform,
            backlight_factor=native.backlight_factor,
            driver_program=native.driver_program,
            details=native,
        )

    def solve(self, image: Image,
              max_distortion: float) -> CompensationSolution:
        if self.adaptive:
            # the bisection needs per-image distortion, so a cold adaptive
            # solve pays one extra LUT apply when the engine replays the
            # solution — small next to the ~8 applies of the search, and it
            # keeps the cached solution free of per-image state
            result = self.pipeline.process_adaptive(image, max_distortion)
            return self._solution_from_result(result, max_distortion)
        target_range = self.pipeline.select_range(max_distortion)
        native = self.pipeline.solve_range(image, target_range,
                                           max_distortion=max_distortion)
        return CompensationSolution(
            algorithm=self.name,
            transform=native.transform,
            backlight_factor=native.backlight_factor,
            driver_program=native.driver_program,
            details=native,
        )

    def apply_solution(self, solution: CompensationSolution, image: Image,
                       max_distortion: float | None = None,
                       ) -> CompensationResult:
        native = solution.details
        if not isinstance(native, HEBSSolution):
            raise TypeError("solution was not produced by a HEBS algorithm")
        return _wrap_hebs(self.pipeline.apply_solution(native, image),
                          self.name)

    def at_backlight(self, image: Image, backlight_factor: float,
                     max_distortion: float | None = None,
                     ) -> CompensationResult:
        if not 0.0 < backlight_factor <= 1.0:
            raise ValueError(
                f"backlight_factor must be in (0, 1], got {backlight_factor}")
        # invert backlight_factor_for_range: beta = t(g_max/(L-1)) / t(1),
        # so g_max = t^-1(beta * t(1)) — honours g_min and a leaky t_off
        transmissivity = self.pipeline.power_model.panel.transmissivity
        levels = self.pipeline.curve.levels
        g_max = round(float(transmissivity.pixel_value(
            backlight_factor * transmissivity.transmittance(1.0)))
            * (levels - 1))
        target_range = int(np.clip(g_max - self.pipeline.config.g_min,
                                   1, levels - 1 - self.pipeline.config.g_min))
        result = self.pipeline.process_with_range(
            image, target_range, max_distortion=max_distortion)
        return _wrap_hebs(result, self.name)


class BaselineAlgorithm(CompensationAlgorithm):
    """Adapter exposing a DLS/CBCS-style technique through the contract.

    Wraps any object with the baseline surface: ``method_name``, ``measure``,
    ``power_model``, ``solve(image, budget) -> (transform, beta)`` and
    ``apply(image, beta) -> BaselineResult``.
    """

    def __init__(self, method, name: str | None = None,
                 description: str = "") -> None:
        self.method = method
        self.name = name or method.method_name
        self.description = description

    def solve(self, image: Image,
              max_distortion: float) -> CompensationSolution:
        transform, beta = self.method.solve(image, max_distortion)
        return CompensationSolution(
            algorithm=self.name,
            transform=transform,
            backlight_factor=beta,
        )

    def apply_solution(self, solution: CompensationSolution, image: Image,
                       max_distortion: float | None = None,
                       ) -> CompensationResult:
        budget = float("nan") if max_distortion is None else max_distortion
        native = build_result(
            self.method.method_name, image, solution.transform,
            solution.backlight_factor, self.method.measure, budget,
            self.method.power_model)
        return _wrap_baseline(native, self.name, solution.transform)

    def _transform_at(self, image: Image, backlight_factor: float):
        if hasattr(self.method, "transform_for"):        # the DLS family
            return self.method.transform_for(backlight_factor)
        return self.method.band_for(image, backlight_factor)   # CBCS

    def at_backlight(self, image: Image, backlight_factor: float,
                     max_distortion: float | None = None,
                     ) -> CompensationResult:
        transform = self._transform_at(image, backlight_factor)
        budget = float("nan") if max_distortion is None else max_distortion
        native = build_result(
            self.method.method_name, image, transform, backlight_factor,
            self.method.measure, budget, self.method.power_model)
        return _wrap_baseline(native, self.name, transform)


class OLEDDarkenAlgorithm(CompensationAlgorithm):
    """Adapter exposing emissive-panel content darkening through the contract.

    The inverted optimization: no backlight to dim (``backlight_factor``
    stays 1.0), so the solution is a histogram-derived darkening LUT and the
    power figures come from the :class:`~repro.display.oled.OLEDModel`
    instead of the CCFL+panel pair.  Results carry the display-agnostic
    :class:`~repro.display.power.PowerBreakdown` with ``ccfl = 0`` — an
    emissive panel has no lamp — so they flow through the cache, the wire
    protocol and result equality unchanged; the native emissive/overhead
    split rides in ``details``.

    Parameters
    ----------
    darkener:
        A configured :class:`~repro.core.darken.ContentDarkener`; built
        from the keyword options when not given.
    equalization:
        Engine for the darkening family (``"ghe"`` or ``"clipped"``); only
        consulted when ``darkener`` is not given.
    measure, oled, min_range, safety_margin:
        Forwarded to the :class:`~repro.core.darken.ContentDarkener`
        constructor; only consulted when ``darkener`` is not given.
    name:
        Registry name to report in results (defaults per configuration).
    """

    display_class = "emissive"

    def __init__(self, darkener: ContentDarkener | None = None, *,
                 equalization: str = "ghe", measure: str = "effective",
                 oled=None, min_range: int = 16,
                 safety_margin: float | None = None,
                 name: str | None = None) -> None:
        if darkener is None:
            darkener = ContentDarkener(
                oled=oled, measure=measure, equalization=equalization,
                min_range=min_range, safety_margin=safety_margin)
        self.darkener = darkener
        if name is None:
            name = "oled-darken"
            if darkener.equalization != "ghe":
                name = f"oled-darken-{darkener.equalization}"
        self.name = name
        self.description = (
            "OLED content darkening via histogram equalization onto [0, R]")
        if darkener.equalization != "ghe":
            self.description = (
                f"OLED content darkening with {darkener.equalization} "
                f"equalization in the family")

    def _wrap(self, result: DarkenResult,
              max_distortion: float | None) -> CompensationResult:
        budget = result.max_distortion
        if max_distortion is not None:
            budget = max_distortion
        return CompensationResult(
            algorithm=self.name,
            original=result.original,
            output=result.output,
            backlight_factor=1.0,
            transform=result.transform,
            distortion=result.distortion,
            power=result.power.as_power_breakdown(),
            reference_power=result.reference_power.as_power_breakdown(),
            max_distortion=None if math.isnan(budget) else budget,
            driver_program=None,
            details=result,
        )

    def solve(self, image: Image,
              max_distortion: float) -> CompensationSolution:
        native = self.darkener.solve(image, max_distortion)
        return CompensationSolution(
            algorithm=self.name,
            transform=native.transform,
            backlight_factor=1.0,
            driver_program=None,
            details=native,
        )

    def apply_solution(self, solution: CompensationSolution, image: Image,
                       max_distortion: float | None = None,
                       ) -> CompensationResult:
        native = solution.details
        if not isinstance(native, DarkenSolution):
            raise TypeError(
                "solution was not produced by an OLED darkening algorithm")
        return self._wrap(self.darkener.apply_solution(native, image),
                          max_distortion)

    def at_backlight(self, image: Image, backlight_factor: float,
                     max_distortion: float | None = None,
                     ) -> CompensationResult:
        """Run at an externally imposed *target range* fraction.

        The emissive analogue of a fixed backlight factor: the dimming knob
        is the darkening range, so ``backlight_factor`` selects
        ``R = round(beta * (levels - 1))``.  This keeps the temporal filter
        of stream sessions meaningful for emissive panels: smoothing the
        factor smooths the aggressiveness of the darkening.
        """
        if not 0.0 < backlight_factor <= 1.0:
            raise ValueError(
                f"backlight_factor must be in (0, 1], got {backlight_factor}")
        grayscale = image.to_grayscale()
        levels = grayscale.levels
        target_range = int(np.clip(round(backlight_factor * (levels - 1)),
                                   1, levels - 1))
        budget = (float("nan") if max_distortion is None
                  else float(max_distortion))
        native = self.darkener.solve_range(grayscale, target_range,
                                           max_distortion=budget)
        result = self._wrap(self.darkener.apply_solution(native, grayscale),
                            max_distortion)
        # report the imposed knob position (the range fraction), honouring
        # the at_backlight contract; power is still billed on the darkened
        # pixels at full drive — there is no lamp to scale
        return replace(result, backlight_factor=float(backlight_factor))


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_REGISTRY: dict[
    str, tuple[Callable[..., CompensationAlgorithm], str, str]] = {}


def register(name: str, factory: Callable[..., CompensationAlgorithm],
             description: str = "", overwrite: bool = False,
             display_class: str = "backlit") -> None:
    """Register an algorithm factory under a public name.

    ``factory(**options)`` must return a :class:`CompensationAlgorithm`.
    ``display_class`` records which panel the technique drives
    (``"backlit"`` or ``"emissive"``) for tooling like ``repro algorithms``.
    Registering an existing name raises unless ``overwrite`` is set.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    if display_class not in ("backlit", "emissive"):
        raise ValueError(
            f"display_class must be 'backlit' or 'emissive', "
            f"got {display_class!r}")
    _REGISTRY[key] = (factory, description, display_class)


def create(name: str, **options) -> CompensationAlgorithm:
    """Instantiate a registered algorithm by name.

    ``options`` are forwarded to the factory (e.g. ``measure=``,
    ``pipeline=`` for the HEBS entries).
    """
    try:
        factory, _, _ = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(**options)


def available_algorithms() -> list[str]:
    """Sorted names of all registered algorithms."""
    return sorted(_REGISTRY)


def algorithm_descriptions() -> Mapping[str, str]:
    """Mapping of registered name to its one-line description."""
    return {name: _REGISTRY[name][1] for name in available_algorithms()}


def algorithm_display_classes() -> Mapping[str, str]:
    """Mapping of registered name to its display class
    (``"backlit"`` or ``"emissive"``)."""
    return {name: _REGISTRY[name][2] for name in available_algorithms()}


register(
    "hebs",
    lambda **options: HEBSAlgorithm(adaptive=False, name="hebs", **options),
    "HEBS via the global distortion characteristic curve (real-time flow)")
register(
    "hebs-adaptive",
    lambda **options: HEBSAlgorithm(adaptive=True, name="hebs-adaptive",
                                    **options),
    "HEBS with per-image dynamic-range bisection (offline Table-1 flow)")
register(
    "hebs-clipped",
    lambda **options: HEBSAlgorithm(equalization="clipped",
                                    name="hebs-clipped", **options),
    "HEBS with contrast-limited (clipped) equalization in step 2")
register(
    "hebs-bbhe",
    lambda **options: HEBSAlgorithm(equalization="bbhe", name="hebs-bbhe",
                                    **options),
    "HEBS with brightness-preserving bi-histogram equalization in step 2")
register(
    "dls-brightness",
    lambda **options: BaselineAlgorithm(
        DLSBrightness(**options),
        description="DLS with brightness compensation (ref. [4], Eq. 2a)"),
    "DLS with brightness compensation (ref. [4], Eq. 2a)")
register(
    "dls-contrast",
    lambda **options: BaselineAlgorithm(
        DLSContrast(**options),
        description="DLS with contrast enhancement (ref. [4], Eq. 2b)"),
    "DLS with contrast enhancement (ref. [4], Eq. 2b)")
register(
    "cbcs",
    lambda **options: BaselineAlgorithm(
        CBCS(**options),
        description="CBCS single-band grayscale spreading (ref. [5])"),
    "CBCS single-band grayscale spreading (ref. [5])")
register(
    "oled-darken",
    lambda **options: OLEDDarkenAlgorithm(name="oled-darken", **options),
    "OLED content darkening via histogram equalization onto [0, R]",
    display_class="emissive")
register(
    "oled-darken-clipped",
    lambda **options: OLEDDarkenAlgorithm(equalization="clipped",
                                          name="oled-darken-clipped",
                                          **options),
    "OLED content darkening with clipped (contrast-limited) equalization",
    display_class="emissive")
