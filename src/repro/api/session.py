"""Stateful, push-based stream sessions over the :class:`~repro.api.engine.Engine`.

:meth:`Engine.process_stream <repro.api.engine.Engine.process_stream>` is a
*pull* API: it consumes a complete ``Iterable[Image]`` and its temporal state
is private to one call.  That shape cannot serve video — a video client does
not have the whole clip up front, it has *the next frame* — and it cannot
share an engine between N concurrent streams.  :class:`StreamSession` is the
long-lived, push-based counterpart:

>>> session = engine.open_session(max_distortion=10.0)
>>> outcome = session.submit(frame)            # one frame in, one result out
>>> outcome.applied_backlight                  # doctest: +SKIP
>>> session.close()

Each session owns its *temporal* state — the
:class:`~repro.core.temporal.BacklightSmoother`, the
:class:`~repro.core.temporal.SceneChangeDetector` and (for the steady-scene
fast path) a :class:`~repro.core.temporal.RollingHistogram` — while the
expensive *solution* state stays shared: every solve goes through the
engine's thread-safe histogram-keyed cache, so N sessions showing similar
content pay one derivation between them.

Two execution modes:

* the default solves the per-frame policy on every frame (cache-accelerated,
  exactly like :meth:`Engine.process`), which is what makes the
  ``process_stream`` wrapper bit-identical to the historical implementation;
* ``scene_gated_solve=True`` enables the fast path: the session folds each
  frame into a rolling histogram and re-derives the solution only when the
  scene detector flags a cut or the rolling estimate drifts off the signature
  the held solution was derived at — steady-scene frames skip the full
  per-frame solve and replay the held solution as a cheap LUT application.

The per-frame work is additionally split into three phases —
:meth:`StreamSession.begin` / :meth:`StreamSession.compute` /
:meth:`StreamSession.complete` — so a serving layer can interleave frames
from many sessions into one shared
:meth:`~repro.api.engine.Engine.process_batch` tick (see
:mod:`repro.serve`): ``begin`` observes the frame and decides whether a solve
is needed, the raw per-frame result is then produced either by ``compute``
or by an external batch, and ``complete`` runs the temporal filtering.
:meth:`StreamSession.submit` is exactly ``begin -> compute -> complete``.
Phases of one session must not interleave across frames; a session is
guarded by a lock, but the *ordering* is the caller's contract (the serving
layer keeps at most one frame of a session in flight).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.api.cache import histogram_signature
from repro.api.registry import CompensationAlgorithm
from repro.api.types import CompensationResult, StreamFrameResult
from repro.core.temporal import (
    BacklightSmoother,
    RollingHistogram,
    SceneChangeDetector,
)
from repro.imaging.image import Image

__all__ = [
    "SessionClosedError",
    "StreamFramePlan",
    "StreamSession",
    "StreamSessionStats",
]


class SessionClosedError(RuntimeError):
    """The stream session was closed and accepts no further frames."""


@dataclass(frozen=True)
class StreamFramePlan:
    """What :meth:`StreamSession.begin` decided about one submitted frame.

    Attributes
    ----------
    grayscale:
        The frame converted to grayscale (the policy input).
    scene_change:
        Whether the scene detector flagged the frame as a cut.
    needs_solve:
        Whether the frame must run the full per-frame policy (always true in
        the default mode; on the fast path only scene changes and rolling
        drift trigger a solve, everything else replays the held solution).
    batchable:
        Whether the raw result may come from a shared
        :meth:`~repro.api.engine.Engine.process_batch` instead of
        :meth:`StreamSession.compute` — true exactly for solve frames of
        sessions *without* the fast path (fast-path solves must run through
        ``compute`` so the session can capture the solution it will hold).
    rolling_signature:
        The drift-gate signature of the rolling histogram after this frame
        was folded in (fast path only, ``None`` otherwise) — computed once
        in :meth:`StreamSession.begin` and anchored as the held signature
        when the frame solves.
    """

    grayscale: Image
    scene_change: bool
    needs_solve: bool
    batchable: bool
    rolling_signature: bytes | None = None


@dataclass(frozen=True)
class StreamSessionStats:
    """Lifetime counters of one :class:`StreamSession`.

    ``solved`` counts frames that ran the full per-frame policy (possibly
    answered by the engine's solution cache); ``reused`` counts fast-path
    frames that replayed the session's held solution without any solve or
    cache probe.  ``solved + reused == frames``.
    """

    frames: int
    solved: int
    reused: int
    scene_changes: int


class StreamSession:
    """A long-lived, push-based video stream bound to one engine.

    Created by :meth:`Engine.open_session
    <repro.api.engine.Engine.open_session>`; see the module docstring for
    the execution model.  Sessions are context managers::

        with engine.open_session(10.0) as session:
            for frame in decoder:
                outcome = session.submit(frame)

    Parameters
    ----------
    engine:
        The owning :class:`~repro.api.engine.Engine` (shared, thread-safe).
    algorithm:
        The resolved algorithm instance every frame of this session runs.
    max_distortion:
        Distortion budget applied to every frame.
    smoother, scene_detector:
        Per-session temporal state; fresh defaults when omitted.
    rederive:
        Whether to re-derive the transformation at the smoothed factor when
        smoothing moved it (see ``Engine.process_stream``).
    snap_on_scene_change:
        When true, a detected cut resets the smoother straight to the new
        frame's requested factor instead of slewing there at ``max_step``
        per frame — a cut masks the luminance jump, so the flicker bound
        need not apply across it.  Off by default (backward compatible).
    scene_gated_solve:
        Enables the steady-scene fast path (see module docstring).
    rolling:
        The :class:`~repro.core.temporal.RollingHistogram` backing the fast
        path's drift gate; a fresh default when omitted.  Ignored without
        ``scene_gated_solve``.
    stability_bins:
        Signature resolution of the drift gate: the held solution is
        re-derived when the rolling histogram's signature at this resolution
        moves.  Coarser than the engine's cache key on purpose — the gate
        asks "is this still the same scene", not "is this the same image".
    """

    def __init__(self, engine, algorithm: CompensationAlgorithm,
                 max_distortion: float, *,
                 smoother: BacklightSmoother | None = None,
                 scene_detector: SceneChangeDetector | None = None,
                 rederive: bool = True,
                 snap_on_scene_change: bool = False,
                 scene_gated_solve: bool = False,
                 rolling: RollingHistogram | None = None,
                 stability_bins: int = 32) -> None:
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        if stability_bins < 1:
            raise ValueError("stability_bins must be at least 1")
        self._engine = engine
        self._algorithm = algorithm
        self._max_distortion = float(max_distortion)
        self.smoother = smoother or BacklightSmoother()
        self.scene_detector = scene_detector or SceneChangeDetector()
        self.rederive = bool(rederive)
        self.snap_on_scene_change = bool(snap_on_scene_change)
        self.scene_gated_solve = bool(scene_gated_solve)
        self.stability_bins = int(stability_bins)
        self._rolling = rolling or RollingHistogram()
        self._held = None                       # CompensationSolution | None
        self._held_signature: bytes | None = None
        self._lock = threading.RLock()
        self._closed = False
        self._frames = 0
        self._solved = 0
        self._reused = 0
        self._scene_changes = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> CompensationAlgorithm:
        """The resolved algorithm instance this session runs."""
        return self._algorithm

    @property
    def max_distortion(self) -> float:
        """The distortion budget applied to every frame."""
        return self._max_distortion

    @property
    def closed(self) -> bool:
        """Whether the session stopped accepting frames."""
        with self._lock:
            return self._closed

    @property
    def frames(self) -> int:
        """Number of frames fully processed so far."""
        with self._lock:
            return self._frames

    def stats(self) -> StreamSessionStats:
        """A consistent snapshot of the session's lifetime counters."""
        with self._lock:
            return StreamSessionStats(
                frames=self._frames, solved=self._solved,
                reused=self._reused, scene_changes=self._scene_changes)

    # ------------------------------------------------------------------ #
    # the push API
    # ------------------------------------------------------------------ #
    def submit(self, frame: Image) -> StreamFrameResult:
        """Push one frame through the session and return its outcome.

        Equivalent to ``complete(plan, compute(plan))`` for
        ``plan = begin(frame)`` — the split phases exist for serving layers
        that produce the raw result out of a shared batch.
        """
        with self._lock:
            plan = self.begin(frame)
            return self.complete(plan, self.compute(plan))

    def begin(self, frame: Image) -> StreamFramePlan:
        """Phase 1: observe ``frame`` and plan its execution.

        Advances the scene detector (and, on the fast path, the rolling
        histogram), so frames of one session must ``begin`` in display
        order.  Raises :class:`SessionClosedError` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise SessionClosedError(
                    "this stream session has been closed")
            grayscale = frame.to_grayscale()
            scene_change = self.scene_detector.observe(grayscale)
            if not self.scene_gated_solve:
                return StreamFramePlan(grayscale=grayscale,
                                       scene_change=scene_change,
                                       needs_solve=True, batchable=True)
            if scene_change:
                self._rolling.reset()
            self._rolling.update(grayscale)
            signature = self._rolling_signature()
            needs_solve = (scene_change or self._held is None
                           or signature != self._held_signature)
            return StreamFramePlan(grayscale=grayscale,
                                   scene_change=scene_change,
                                   needs_solve=needs_solve, batchable=False,
                                   rolling_signature=signature)

    def compute(self, plan: StreamFramePlan) -> CompensationResult:
        """Phase 2: the raw per-frame policy result for a planned frame.

        Solve frames run the cache-accelerated per-frame policy (exactly
        :meth:`Engine.process <repro.api.engine.Engine.process>`); fast-path
        steady frames replay the session's held solution as one cheap LUT
        application, marked ``replayed=True``.
        """
        with self._lock:
            if not plan.needs_solve:
                raw = self._algorithm.apply_solution(
                    self._held, plan.grayscale,
                    max_distortion=self._max_distortion)
                self._engine._note_processed()
                return replace(raw, replayed=True)
            if not self.scene_gated_solve:
                return self._engine.process(plan.grayscale,
                                            self._max_distortion,
                                            algorithm=self._algorithm)
            # fast-path solve: go through the shared cache but keep the
            # solution, so the steady frames that follow can replay it
            solution, hit = self._engine._solve(
                self._algorithm, plan.grayscale, self._max_distortion)
            raw = self._algorithm.apply_solution(
                solution, plan.grayscale, max_distortion=self._max_distortion)
            self._engine._note_processed()
            self._held = solution
            self._held_signature = plan.rolling_signature
            return replace(raw, from_cache=True) if hit else raw

    def complete(self, plan: StreamFramePlan,
                 raw: CompensationResult) -> StreamFrameResult:
        """Phase 3: temporal filtering of a raw result into the outcome.

        Smooths / slew-limits the requested backlight factor (or snaps it on
        a cut when ``snap_on_scene_change`` is set), re-derives the
        transformation at the applied factor when enabled, and updates the
        session counters.  Must run in ``begin`` order.
        """
        with self._lock:
            previous = self.smoother.current
            if self.snap_on_scene_change and plan.scene_change:
                # a cut masks the luminance jump: the flicker bound need not
                # apply across it, so jump straight to the new target
                self.smoother.reset(raw.backlight_factor)
                applied = self.smoother.current
            else:
                applied = self.smoother.update(raw.backlight_factor)

            result = raw
            applied_factor = applied
            if self.rederive and abs(applied - raw.backlight_factor) > 1e-9:
                try:
                    candidate = self._algorithm.at_backlight(
                        plan.grayscale, applied,
                        max_distortion=self._max_distortion)
                except NotImplementedError:
                    pass
                else:
                    # re-derivation quantizes the factor (e.g. to the
                    # grayscale-range grid), which can overshoot the
                    # smoother's slew limit.  Accept it only when the
                    # quantized factor still honors the flicker bound
                    # relative to the previous frame's applied factor, so
                    # the programmed backlight and the transform it was
                    # derived for always agree; otherwise keep the raw
                    # result at the smoothed factor (the same fallback as
                    # algorithms without ``at_backlight``).
                    quantized = candidate.backlight_factor
                    if self.smoother.reset_within_limit(quantized,
                                                        reference=previous):
                        result = candidate
                        applied_factor = quantized

            self._frames += 1
            if plan.needs_solve:
                self._solved += 1
            else:
                self._reused += 1
            if plan.scene_change:
                self._scene_changes += 1
            return StreamFrameResult(
                result=result,
                requested_backlight=raw.backlight_factor,
                applied_backlight=applied_factor,
                scene_change=plan.scene_change,
                reused=not plan.needs_solve,
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting frames (idempotent).

        A frame whose :meth:`begin` already ran may still :meth:`compute`
        and :meth:`complete` — closing fences new frames, it does not
        abandon the one in flight (which is why the held solution is kept:
        a fast-path frame planned before the close must still replay it).
        """
        with self._lock:
            self._closed = True

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _rolling_signature(self) -> bytes:
        """The drift-gate signature of the current rolling histogram."""
        return histogram_signature(self._rolling.current(),
                                   bins=self.stability_bins)
