"""The :class:`Engine` facade: batched, streamed, cache-accelerated serving.

One object, three entry points:

* :meth:`Engine.process` — compensate a single image under a distortion
  budget with any registered algorithm, consulting a histogram-keyed LRU
  solution cache first (the paper's Fig. 4 real-time flow, memoized).
* :meth:`Engine.process_batch` — compensate many images.  Images are
  grouped by their quantized histogram signature so each distinct histogram
  is solved exactly once (even on a cold cache, even with caching disabled)
  and the per-image work collapses to a LUT application plus
  power/distortion accounting.
* :meth:`Engine.open_session` — open a long-lived, push-based
  :class:`~repro.api.session.StreamSession` for video: per-session temporal
  state (backlight smoothing, slew limiting, scene-change detection, the
  steady-scene fast path) around the shared solution cache, one frame at a
  time.
* :meth:`Engine.process_stream` — the pull-style convenience over a
  session: compensate a complete frame iterable.  Kept supported and
  bit-identical to its historical implementation.

The engine is the canonical way to use this package; the per-technique
classes (:class:`~repro.core.pipeline.HEBS`, the baselines) remain available
as the implementation layer underneath.  :mod:`repro.serve` builds the
concurrent serving front end (micro-batching, worker pool, backpressure) on
top of this facade.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.api.cache import CacheStats, SolutionCache, histogram_signature
from repro.api.registry import CompensationAlgorithm, create
from repro.api.session import StreamSession
from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.core.histogram import Histogram
from repro.core.temporal import (
    BacklightSmoother,
    RollingHistogram,
    SceneChangeDetector,
)
from repro.imaging.image import Image

__all__ = ["Engine"]


class Engine:
    """Unified, cache-accelerated entry point for all compensation algorithms.

    Parameters
    ----------
    algorithm:
        Default algorithm for calls that don't name one: a registry name or
        a ready :class:`~repro.api.registry.CompensationAlgorithm` instance.
    cache_size:
        Capacity of the histogram-keyed LRU solution cache.  ``0`` disables
        caching entirely.
    signature_bins:
        Grayscale-axis resolution of the histogram quantization used for
        cache keys (see :func:`repro.api.cache.histogram_signature`).
        Smaller values make the cache more tolerant of small content
        changes; ``256`` keys on the exact 8-bit histogram.
    algorithm_options:
        Keyword options forwarded to the registry factory whenever the
        engine instantiates an algorithm from a name (e.g. ``measure=``).

    Notes
    -----
    A cache hit reuses the solved transformation / backlight factor /
    driver program; distortion and power are always re-measured on the
    actual pixels.  For an identical image the hit result is therefore
    bitwise-identical to a cold run; for merely histogram-similar images the
    reuse is the approximation the paper's real-time flow already makes.

    Cache entries key on the algorithm *instance* (two configurations of a
    technique never share solutions), so reuse an instance across requests:
    constructing a fresh instance per request can never hit and only fills
    the LRU with entries that die with the instance.

    The engine is **thread safe**: the solution cache takes its own lock,
    the registry/counter state is guarded by an engine lock, and solves are
    serialized per algorithm instance (the underlying pipelines were written
    single-threaded).  Concurrent threads that race on the same cold
    histogram coalesce onto one solve via a double-checked re-probe, so a
    thundering herd pays one derivation, not N.
    """

    def __init__(self, algorithm: str | CompensationAlgorithm = "hebs", *,
                 cache_size: int = 256, signature_bins: int = 256,
                 algorithm_options: Mapping[str, object] | None = None) -> None:
        if signature_bins < 1:
            raise ValueError("signature_bins must be at least 1")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.signature_bins = int(signature_bins)
        self._options = dict(algorithm_options or {})
        self._algorithms: dict[str, CompensationAlgorithm] = {}
        self._cache = SolutionCache(cache_size) if cache_size else None
        self._processed = 0
        self._lock = threading.RLock()
        self._solve_locks: weakref.WeakKeyDictionary[
            CompensationAlgorithm, threading.Lock] = weakref.WeakKeyDictionary()
        if isinstance(algorithm, CompensationAlgorithm):
            self.default_algorithm = algorithm.name
            self._algorithms[algorithm.name] = algorithm
        else:
            self.default_algorithm = algorithm

    # ------------------------------------------------------------------ #
    # algorithm resolution
    # ------------------------------------------------------------------ #
    def algorithm(self, name: str | CompensationAlgorithm | None = None,
                  ) -> CompensationAlgorithm:
        """The (memoized) algorithm instance for ``name``.

        Accepts a registry name, a ready instance (adopted under its own
        name), or ``None`` for the engine default.  Two configurations of
        one technique never share solutions: cache keys lead with the
        instance itself, so adopting a different instance under an
        already-used name simply strands the previous instance's entries
        (they age out of the LRU) instead of ever replaying them.
        """
        if isinstance(name, CompensationAlgorithm):
            with self._lock:
                self._algorithms[name.name] = name
            return name
        key = self.default_algorithm if name is None else name
        with self._lock:
            instance = self._algorithms.get(key)
            if instance is None:
                instance = self._algorithms[key] = create(key, **self._options)
        return instance

    def _solve_lock(self, algorithm: CompensationAlgorithm) -> threading.Lock:
        """The lock serializing solves on one algorithm instance (the
        underlying pipelines were written single-threaded)."""
        with self._lock:
            lock = self._solve_locks.get(algorithm)
            if lock is None:
                lock = self._solve_locks[algorithm] = threading.Lock()
        return lock

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    def _cache_key(self, algorithm: CompensationAlgorithm,
                   histogram: Histogram, max_distortion: float) -> tuple:
        signature = histogram_signature(histogram, bins=self.signature_bins)
        # the key leads with the instance itself (identity hash), not its
        # registry name: two configurations of one technique must never
        # share solutions, even when an adoption races an in-flight solve.
        # the budget participates exactly: rounding it would alias distinct
        # budgets that differ past the rounding point onto one solution
        return (algorithm, signature, float(max_distortion))

    def _solve(self, algorithm: CompensationAlgorithm, grayscale: Image,
               max_distortion: float):
        """Look up or derive the solution; returns ``(solution, from_cache)``."""
        key = (None if self._cache is None else
               self._cache_key(algorithm, Histogram.of_image(grayscale),
                               max_distortion))
        return self._solve_group(algorithm, key, grayscale, max_distortion)

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def process(self, image: Image, max_distortion: float,
                algorithm: str | CompensationAlgorithm | None = None,
                ) -> CompensationResult:
        """Compensate one image under a distortion budget."""
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        algo = self.algorithm(algorithm)
        grayscale = image.to_grayscale()
        solution, hit = self._solve(algo, grayscale, max_distortion)
        result = algo.apply_solution(solution, grayscale,
                                     max_distortion=max_distortion)
        self._note_processed()
        return replace(result, from_cache=hit) if hit else result

    def solve(self, source: Image | Histogram, max_distortion: float,
              algorithm: str | CompensationAlgorithm | None = None,
              ) -> CompensationSolution:
        """Histogram-only solve: the paper-native fast path of Fig. 4.

        Derives (or replays from the shared cache) the image-independent
        :class:`~repro.api.types.CompensationSolution` — transformation,
        backlight factor, driver program — for a distortion budget, without
        ever applying it to pixels.  ``source`` may be an
        :class:`~repro.imaging.image.Image` (its histogram is what matters)
        or a bare :class:`~repro.core.histogram.Histogram`, which is all a
        remote client needs to ship (see :mod:`repro.serve.protocol`): the
        returned solution's LUT is applied client-side, so the bandwidth is
        O(histogram) instead of O(pixels).

        A bare histogram is realized as a canonical synthetic image
        (:meth:`Histogram.to_image <repro.core.histogram.Histogram.to_image>`)
        before entering the per-image algorithm surface; the cache key — the
        quantized histogram signature — is identical either way, so solve
        traffic and :meth:`process` traffic share solutions.  For the
        histogram-driven techniques (``hebs``, the DLS variants, ``cbcs``)
        the solution is bit-identical to the one :meth:`process` derives on
        the full image; ``hebs-adaptive`` bisects on distortion *measured*
        on the histogram-realizing image, which approximates (rather than
        reproduces) its per-image selection when the measure is
        layout-sensitive.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        algo = self.algorithm(algorithm)
        if isinstance(source, Histogram):
            grayscale = source.to_image()
        else:
            grayscale = source.to_grayscale()
        solution, _ = self._solve(algo, grayscale, max_distortion)
        return solution

    def prime(self, image: Image, max_distortion: float,
              algorithm: str | CompensationAlgorithm | None = None) -> bool:
        """Solve ``image``'s histogram into the cache without applying.

        The warm-up path of :class:`~repro.serve.Server`: pays the solve
        (when not already cached) but skips the per-image LUT application
        and accounting.  Returns ``True`` when a fresh solution was derived
        and cached, ``False`` on a prior hit or with caching disabled.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        if self._cache is None:
            return False
        algo = self.algorithm(algorithm)
        _, hit = self._solve(algo, image.to_grayscale(), max_distortion)
        return not hit

    def process_batch(self, images: Iterable[Image], max_distortion: float,
                      algorithm: str | CompensationAlgorithm | None = None,
                      ) -> list[CompensationResult]:
        """Compensate a batch of images, solving each distinct histogram once.

        Images are grouped by their quantized histogram signature; each
        group shares one solve (and one driver program), so a batch with
        repeated content costs one solve plus N cheap LUT applications.
        Results come back in input order and are identical to calling
        :meth:`process` per image.  Grouping is independent of caching:
        with ``cache_size=0`` identical histograms still share one solve
        within the batch — grouped *exactly* rather than by the quantized
        signature, because the signature tolerance is the caching
        approximation a cache-disabled engine opted out of — there is just
        no reuse across calls.
        """
        if max_distortion < 0:
            raise ValueError("max_distortion must be non-negative")
        algo = self.algorithm(algorithm)
        grayscales = [image.to_grayscale() for image in images]

        # group by cache key so every distinct histogram is solved once
        groups: dict[tuple, list[int]] = {}
        for index, grayscale in enumerate(grayscales):
            histogram = Histogram.of_image(grayscale)
            if self._cache is None:
                key = (algo, histogram.counts.tobytes(),
                       float(max_distortion))
            else:
                key = self._cache_key(algo, histogram, max_distortion)
            groups.setdefault(key, []).append(index)

        results: list[CompensationResult | None] = [None] * len(grayscales)
        for key, indices in groups.items():
            solution, hit = self._solve_group(algo, key,
                                              grayscales[indices[0]],
                                              max_distortion)
            # every group member past the first replays the shared solve;
            # tally them as replays (not as synthetic cache probes, which
            # would double-count lookups and perturb the LRU recency)
            if len(indices) > 1 and self._cache is not None:
                self._cache.note_replays(len(indices) - 1)
            for position, index in enumerate(indices):
                result = algo.apply_solution(solution, grayscales[index],
                                             max_distortion=max_distortion)
                if hit or position > 0:
                    result = replace(result, from_cache=hit,
                                     replayed=position > 0)
                results[index] = result
        self._note_processed(len(grayscales))
        return list(results)

    def _solve_group(self, algorithm: CompensationAlgorithm,
                     key: tuple | None, grayscale: Image,
                     max_distortion: float):
        """Look up or derive the solution for one cache key; returns
        ``(solution, from_cache)``.  ``key`` is ``None`` (and ignored) when
        caching is disabled."""
        if self._cache is None:
            with self._solve_lock(algorithm):
                return algorithm.solve(grayscale, max_distortion), False
        solution = self._cache.get(key)
        if solution is not None:
            return solution, True
        with self._solve_lock(algorithm):
            # double check: a thread racing on the same histogram may have
            # solved while we waited for the lock.  peek + note_hit keeps
            # the probe accounting exact (one miss above, one hit here).
            solution = self._cache.peek(key)
            if solution is not None:
                self._cache.note_hit()
                return solution, True
            solution = algorithm.solve(grayscale, max_distortion)
            self._cache.put(key, solution)
        return solution, False

    def open_session(self, max_distortion: float,
                     algorithm: str | CompensationAlgorithm | None = None, *,
                     smoother: BacklightSmoother | None = None,
                     scene_detector: SceneChangeDetector | None = None,
                     rederive: bool = True,
                     snap_on_scene_change: bool = False,
                     scene_gated_solve: bool = False,
                     rolling: RollingHistogram | None = None,
                     stability_bins: int = 32) -> StreamSession:
        """Open a long-lived, push-based stream session on this engine.

        The session owns its temporal state (smoother, scene detector,
        rolling histogram) and shares the engine's thread-safe solution
        cache, so N concurrent sessions showing similar content pay one
        solve between them.  Push frames with
        :meth:`~repro.api.session.StreamSession.submit`, end the stream
        with :meth:`~repro.api.session.StreamSession.close` (sessions are
        context managers).  See :class:`~repro.api.session.StreamSession`
        for the parameters and the ``scene_gated_solve`` fast path;
        :mod:`repro.serve` serves many such sessions concurrently through
        shared micro-batches.  Raises ``ValueError`` (from the session
        constructor) for a negative ``max_distortion``.
        """
        return StreamSession(
            self, self.algorithm(algorithm), max_distortion,
            smoother=smoother, scene_detector=scene_detector,
            rederive=rederive, snap_on_scene_change=snap_on_scene_change,
            scene_gated_solve=scene_gated_solve, rolling=rolling,
            stability_bins=stability_bins)

    def process_stream(self, frames: Iterable[Image], max_distortion: float,
                       algorithm: str | CompensationAlgorithm | None = None, *,
                       smoother: BacklightSmoother | None = None,
                       scene_detector: SceneChangeDetector | None = None,
                       rederive: bool = True,
                       snap_on_scene_change: bool = False,
                       ) -> Iterator[StreamFrameResult]:
        """Compensate a frame stream with temporal backlight filtering.

        A thin pull-style wrapper over :meth:`open_session`: one session is
        opened for the call, every frame of ``frames`` is pushed through
        :meth:`~repro.api.session.StreamSession.submit`, and the session is
        closed when the iterable (or the consumer) ends.  The per-frame
        behaviour is unchanged from the historical inline implementation —
        the per-frame policy (cache-accelerated, like :meth:`process`)
        proposes a backlight factor, the
        :class:`~repro.core.temporal.BacklightSmoother` smooths and
        slew-limits it so consecutive frames never flicker, the
        :class:`~repro.core.temporal.SceneChangeDetector` flags cuts, and
        when smoothing moves the factor and ``rederive`` is set the
        transformation is re-derived at the applied factor via the
        algorithm's ``at_backlight`` hook (falling back to the raw result
        for algorithms without one).  ``snap_on_scene_change`` lets a
        detected cut reset the smoother straight to the new target (a cut
        masks the luminance jump); off by default.

        Yields one :class:`~repro.api.types.StreamFrameResult` per frame,
        lazily, so arbitrarily long streams run in constant memory.

        The stream state (the session) is private to the call: share the
        engine across threads freely, but don't share one
        ``process_stream`` iterator.  Clients that have *frames* rather
        than an iterable (a decoder loop, a network stream) should open a
        session directly.
        """
        session = self.open_session(
            max_distortion, algorithm=algorithm, smoother=smoother,
            scene_detector=scene_detector, rederive=rederive,
            snap_on_scene_change=snap_on_scene_change)
        with session:
            for frame in frames:
                yield session.submit(frame)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/replay counters of the solution cache (zeros when
        disabled)."""
        if self._cache is None:
            return CacheStats(hits=0, misses=0, size=0, max_size=0,
                              evictions=0, replays=0)
        return self._cache.stats

    @property
    def processed(self) -> int:
        """Number of images compensated through this engine so far."""
        with self._lock:
            return self._processed

    def _note_processed(self, count: int = 1) -> None:
        """Tally ``count`` compensated images (used by the entry points and
        by :class:`~repro.api.session.StreamSession`)."""
        with self._lock:
            self._processed += count

    def clear_cache(self) -> None:
        """Drop all cached solutions and reset the counters."""
        if self._cache is not None:
            self._cache.clear()
