"""Analysis utilities: curve fitting, parameter sweeps and report rendering.

The paper's characterization section (Sec. 5.1) uses "standard curve fitting
tools provided in MATLAB" and "standard regression analysis techniques".
:mod:`~repro.analysis.regression` reproduces the fits it needs (linear,
polynomial, two-piece linear with a free knee, and upper-envelope fits) with
plain least squares on numpy.  :mod:`~repro.analysis.sweep` provides a small
parameter-sweep harness used by the experiments, and
:mod:`~repro.analysis.reporting` renders the paper-style tables and series as
text/CSV so benchmark output can be compared against the paper row by row.
"""

from repro.analysis.regression import (
    LinearFit,
    PolynomialFit,
    TwoPieceLinearFit,
    fit_linear,
    fit_polynomial,
    fit_two_piece_linear,
    upper_envelope_shift,
)
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.reporting import (
    format_table,
    format_series,
    table_to_csv,
    Table,
)

__all__ = [
    "LinearFit",
    "PolynomialFit",
    "TwoPieceLinearFit",
    "fit_linear",
    "fit_polynomial",
    "fit_two_piece_linear",
    "upper_envelope_shift",
    "SweepResult",
    "sweep",
    "format_table",
    "format_series",
    "table_to_csv",
    "Table",
]
