"""A small parameter-sweep harness shared by the experiments.

Each paper experiment is a sweep: over benchmark images and distortion levels
(Table 1), over target dynamic ranges (Fig. 7), over backlight factors
(Fig. 6a) or over PLC segment counts (the ablations).  :func:`sweep` runs a
callable over the cartesian product of named parameter grids and collects the
results into a :class:`SweepResult` that can be filtered, aggregated and
rendered as a table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepResult:
    """The outcome of a parameter sweep.

    Attributes
    ----------
    parameters:
        Names of the swept parameters, in sweep order.
    records:
        One dictionary per evaluated point containing the parameter values
        plus every key returned by the sweep function.
    """

    parameters: tuple[str, ...]
    records: tuple[Mapping[str, Any], ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.records)

    def column(self, key: str) -> list[Any]:
        """All values of one result/parameter column, in sweep order."""
        missing = [i for i, record in enumerate(self.records) if key not in record]
        if missing:
            raise KeyError(f"column {key!r} missing from records {missing[:3]}")
        return [record[key] for record in self.records]

    def where(self, **conditions: Any) -> "SweepResult":
        """Filter records by exact parameter/result values."""
        kept = tuple(
            record for record in self.records
            if all(record.get(key) == value for key, value in conditions.items())
        )
        return SweepResult(self.parameters, kept)

    def mean(self, key: str) -> float:
        """Mean of a numeric column."""
        return float(np.mean(np.asarray(self.column(key), dtype=np.float64)))

    def min(self, key: str) -> float:
        """Minimum of a numeric column."""
        return float(np.min(np.asarray(self.column(key), dtype=np.float64)))

    def max(self, key: str) -> float:
        """Maximum of a numeric column."""
        return float(np.max(np.asarray(self.column(key), dtype=np.float64)))

    def group_mean(self, group_key: str, value_key: str) -> dict[Any, float]:
        """Mean of ``value_key`` within each distinct value of ``group_key``."""
        groups: dict[Any, list[float]] = {}
        for record in self.records:
            groups.setdefault(record[group_key], []).append(float(record[value_key]))
        return {key: float(np.mean(values)) for key, values in groups.items()}


def sweep(function: Callable[..., Mapping[str, Any] | None],
          **grids: Sequence[Any] | Iterable[Any]) -> SweepResult:
    """Evaluate ``function`` over the cartesian product of parameter grids.

    ``function`` is called with one keyword argument per grid and must return
    a mapping of result values (or ``None`` to skip the point).  The returned
    records contain both the parameter values and the results.

    Example
    -------
    >>> result = sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
    >>> result.column("sum")
    [11, 21, 12, 22]
    """
    if not grids:
        raise ValueError("need at least one parameter grid")
    names = tuple(grids)
    value_lists = [list(grids[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ValueError(f"parameter grid {name!r} is empty")

    records: list[dict[str, Any]] = []
    for combination in itertools.product(*value_lists):
        parameters = dict(zip(names, combination))
        outcome = function(**parameters)
        if outcome is None:
            continue
        record = dict(parameters)
        overlapping = set(record) & set(outcome)
        if overlapping:
            raise ValueError(
                f"sweep function returned keys shadowing parameters: {overlapping}"
            )
        record.update(outcome)
        records.append(record)
    return SweepResult(names, tuple(records))
