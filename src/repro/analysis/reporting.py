"""Rendering of paper-style tables and data series.

The benchmark harness prints the same rows and series the paper reports
(Table 1, the Fig. 6/7 curves, the Fig. 8 annotations) so a reader can put
the reproduction's output next to the published numbers.  This module keeps
that formatting in one place: fixed-width text tables, aligned series dumps
and CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table", "format_table", "format_series", "table_to_csv"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass(frozen=True)
class Table:
    """A simple column-ordered table.

    Attributes
    ----------
    title:
        Heading printed above the table.
    columns:
        Column names, in display order.
    rows:
        One mapping per row; missing cells render as ``-``.
    precision:
        Number of decimal places used for float cells.
    """

    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping[str, Any], ...] = field(default=())
    precision: int = 2

    def with_row(self, **values: Any) -> "Table":
        """A copy of the table with one more row appended."""
        return Table(self.title, self.columns, self.rows + (dict(values),),
                     self.precision)

    def with_rows(self, rows: Iterable[Mapping[str, Any]]) -> "Table":
        """A copy of the table with several rows appended."""
        return Table(self.title, self.columns,
                     self.rows + tuple(dict(row) for row in rows),
                     self.precision)

    def column_values(self, name: str) -> list[Any]:
        """All values in one column (missing cells omitted)."""
        return [row[name] for row in self.rows if name in row]

    def render(self) -> str:
        """Render as fixed-width text (see :func:`format_table`)."""
        return format_table(self)

    def to_csv(self) -> str:
        """Render as CSV (see :func:`table_to_csv`)."""
        return table_to_csv(self)


def format_table(table: Table) -> str:
    """Render a :class:`Table` as aligned fixed-width text."""
    header = list(table.columns)
    body = [
        [_format_cell(row.get(column, "-"), table.precision) for column in header]
        for row in table.rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if table.title:
        lines.append(table.title)
    lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_series(name: str, x: Sequence[float], y: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 3) -> str:
    """Render an (x, y) data series as aligned two-column text.

    Used for the figure experiments (Fig. 6a/6b/7): the series printed here
    are the points a plot of the figure would show.
    """
    if len(x) != len(y):
        raise ValueError("x and y series must have the same length")
    table = Table(
        title=name,
        columns=(x_label, y_label),
        precision=precision,
    ).with_rows({x_label: float(a), y_label: float(b)} for a, b in zip(x, y))
    return format_table(table)


def table_to_csv(table: Table) -> str:
    """Render a :class:`Table` as CSV text (header row + data rows)."""
    def escape(cell: str) -> str:
        if "," in cell or '"' in cell:
            return '"' + cell.replace('"', '""') + '"'
        return cell

    lines = [",".join(escape(column) for column in table.columns)]
    for row in table.rows:
        lines.append(",".join(
            escape(_format_cell(row.get(column, ""), table.precision))
            for column in table.columns
        ))
    return "\n".join(lines)
