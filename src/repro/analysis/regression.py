"""Least-squares fitting helpers used by the characterization experiments.

Three fits appear in the paper's Sec. 5:

* a **two-piece linear** fit with a free knee for the CCFL power model
  (Eq. 11 / Fig. 6a),
* a **quadratic** fit for the panel power model (Eq. 12 / Fig. 6b),
* polynomial **average** and **worst-case** fits of the distortion
  characteristic curve (Fig. 7).

These are all ordinary least squares; the MATLAB toolbox the authors used is
replaced by numpy's ``lstsq``/``polyfit``.  Each fit returns a small frozen
dataclass that can predict, report its coefficients, and compute residual
statistics, so the figure experiments can check that re-fitting simulated
measurements recovers the published coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinearFit",
    "PolynomialFit",
    "TwoPieceLinearFit",
    "fit_linear",
    "fit_polynomial",
    "fit_two_piece_linear",
    "upper_envelope_shift",
]


def _validate_xy(x: np.ndarray, y: np.ndarray, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < minimum:
        raise ValueError(f"need at least {minimum} points, got {x.size}")
    return x, y


@dataclass(frozen=True)
class LinearFit:
    """A straight-line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    rmse: float = 0.0

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Fitted value(s) at ``x``."""
        result = self.slope * np.asarray(x, dtype=np.float64) + self.intercept
        return float(result) if np.isscalar(x) else result


@dataclass(frozen=True)
class PolynomialFit:
    """A polynomial fit ``y = c0 + c1 x + c2 x^2 + ...`` (increasing powers)."""

    coefficients: tuple[float, ...]
    rmse: float = 0.0

    @property
    def degree(self) -> int:
        """Degree of the fitted polynomial."""
        return len(self.coefficients) - 1

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Fitted value(s) at ``x``."""
        x_array = np.asarray(x, dtype=np.float64)
        powers = np.vander(np.atleast_1d(x_array), len(self.coefficients),
                           increasing=True)
        result = powers @ np.asarray(self.coefficients)
        return float(result[0]) if np.isscalar(x) else result


@dataclass(frozen=True)
class TwoPieceLinearFit:
    """Two line segments joined at a knee (the Eq. 11 CCFL model shape).

    ``y = lower.slope * x + lower.intercept`` for ``x <= knee`` and
    ``y = upper.slope * x + upper.intercept`` for ``x > knee``.
    """

    knee: float
    lower: LinearFit
    upper: LinearFit
    rmse: float = 0.0

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Fitted value(s) at ``x``."""
        x_array = np.asarray(x, dtype=np.float64)
        result = np.where(x_array <= self.knee,
                          self.lower.slope * x_array + self.lower.intercept,
                          self.upper.slope * x_array + self.upper.intercept)
        return float(result) if np.isscalar(x) else result


def fit_linear(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Ordinary least-squares straight-line fit."""
    x, y = _validate_xy(x, y, minimum=2)
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    residual = y - (slope * x + intercept)
    return LinearFit(float(slope), float(intercept),
                     float(np.sqrt(np.mean(residual**2))))


def fit_polynomial(x: np.ndarray, y: np.ndarray, degree: int) -> PolynomialFit:
    """Ordinary least-squares polynomial fit of the given degree."""
    if degree < 1:
        raise ValueError("degree must be at least 1")
    x, y = _validate_xy(x, y, minimum=degree + 1)
    design = np.vander(x, degree + 1, increasing=True)
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    residual = y - design @ coefficients
    return PolynomialFit(tuple(float(c) for c in coefficients),
                         float(np.sqrt(np.mean(residual**2))))


def fit_two_piece_linear(x: np.ndarray, y: np.ndarray,
                         min_points_per_piece: int = 3) -> TwoPieceLinearFit:
    """Two-piece linear fit with the knee chosen by exhaustive search.

    Every admissible split of the (sorted) data into a lower and an upper
    piece is tried; each piece gets its own least-squares line and the split
    with the smallest total squared residual wins.  This mirrors how the
    paper extracts the CCFL saturation knee ``C_s`` from the measurement of
    Fig. 6a.
    """
    x, y = _validate_xy(x, y, minimum=2 * min_points_per_piece)
    order = np.argsort(x)
    x, y = x[order], y[order]

    best: tuple[float, LinearFit, LinearFit, float] | None = None
    for split in range(min_points_per_piece, x.size - min_points_per_piece + 1):
        lower = fit_linear(x[:split], y[:split])
        upper = fit_linear(x[split:], y[split:])
        residual_low = y[:split] - np.asarray(lower.predict(x[:split]))
        residual_high = y[split:] - np.asarray(upper.predict(x[split:]))
        total = float(np.sum(residual_low**2) + np.sum(residual_high**2))
        if best is None or total < best[3]:
            knee = float(0.5 * (x[split - 1] + x[split]))
            best = (knee, lower, upper, total)

    assert best is not None  # guaranteed by the minimum-size validation
    knee, lower, upper, total = best
    rmse = float(np.sqrt(total / x.size))
    return TwoPieceLinearFit(knee, lower, upper, rmse)


def upper_envelope_shift(x: np.ndarray, y: np.ndarray,
                         fit: PolynomialFit | LinearFit) -> float:
    """Constant shift that makes ``fit`` dominate every sample.

    The paper's "worst-case fit" of Fig. 7 is an envelope above all measured
    distortion values; adding the returned shift to the fit's constant term
    (or intercept) produces such an envelope.
    """
    x, y = _validate_xy(x, y, minimum=1)
    residuals = y - np.asarray(fit.predict(x))
    return float(max(residuals.max(), 0.0))
