"""Concurrent Brightness and Contrast Scaling (CBCS) — the paper's ref. [5].

Cheng & Pedram truncate the image histogram at *both* ends, stretch the
surviving band onto the full grayscale range (the single-band grayscale
spreading of Eq. 3 / Fig. 2d) and dim the backlight by the band width.  The
transformation is realizable by the conventional single-band reference
driver; the cost is that every pixel outside the band is clamped to black or
white.

Policy: for a candidate backlight factor ``beta`` the band has normalized
width ``beta``; CBCS places it over the densest part of the histogram (the
placement that preserves the most pixels, which is Cheng & Pedram's
"maximize the number of pixel values that are preserved"), then the smallest
``beta`` whose distortion meets the budget is selected, exactly like the DLS
policy.  The distortion measure defaults to the paper's effective distortion
so the ``cmp15`` comparison is apples-to-apples; pass ``measure="contrast"``
to reproduce CBCS's native contrast-fidelity policy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.policy import (
    BaselineResult,
    build_result,
    find_minimum_backlight,
    perceived_image,
)
from repro.core.histogram import Histogram
from repro.core.transforms import SingleBandSpreadTransform
from repro.display.power import DisplayPowerModel
from repro.imaging.image import Image
from repro.quality.distortion import DistortionMeasure, get_measure

__all__ = ["CBCS"]


class CBCS:
    """Single-band grayscale spreading with a distortion-constrained policy."""

    method_name = "cbcs"

    def __init__(self, measure: str | DistortionMeasure = "effective",
                 power_model: DisplayPowerModel | None = None,
                 min_factor: float = 0.05, search_tolerance: float = 1e-3,
                 compare_displayed: bool | None = None) -> None:
        self.measure: DistortionMeasure = (
            get_measure(measure) if isinstance(measure, str) else measure)
        self.power_model = power_model or DisplayPowerModel()
        self.min_factor = float(min_factor)
        self.search_tolerance = float(search_tolerance)
        if compare_displayed is None:
            compare_displayed = (isinstance(measure, str)
                                 and measure.lower() in ("saturation", "contrast"))
        #: Ref. [5] evaluates its contrast-fidelity measure on the spread
        #: (displayed) image; the paper's effective measure is evaluated on
        #: the perceived luminance instead.
        self.compare_displayed = bool(compare_displayed)

    # ------------------------------------------------------------------ #
    # band placement
    # ------------------------------------------------------------------ #
    def band_for(self, image: Image, beta: float) -> SingleBandSpreadTransform:
        """Best single band of normalized width ``beta`` for ``image``.

        The band is slid over the histogram and placed where it covers the
        largest number of pixels — the placement that maximizes the number of
        preserved pixel values (ref. [5]'s objective).  ``beta = 1`` keeps
        the full range (identity band).
        """
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        grayscale = image.to_grayscale()
        levels = grayscale.levels
        if beta >= 1.0:
            return SingleBandSpreadTransform(0.0, 1.0)

        histogram = Histogram.of_image(grayscale)
        counts = histogram.counts.astype(np.float64)
        width_levels = max(int(round(beta * (levels - 1))), 1)

        # pixels covered by every band start position, via a cumulative sum
        cumulative = np.concatenate([[0.0], np.cumsum(counts)])
        starts = np.arange(0, levels - width_levels)
        covered = cumulative[starts + width_levels + 1] - cumulative[starts]
        best_start = int(starts[np.argmax(covered)])

        g_low = best_start / (levels - 1)
        g_high = (best_start + width_levels) / (levels - 1)
        return SingleBandSpreadTransform(g_low, min(g_high, 1.0))

    # ------------------------------------------------------------------ #
    # policy
    # ------------------------------------------------------------------ #
    def distortion_at(self, image: Image, beta: float) -> float:
        """Distortion (percent) of the best band of width ``beta``."""
        transform = self.band_for(image, beta)
        grayscale = image.to_grayscale()
        if self.compare_displayed:
            candidate = transform.apply(grayscale)
        else:
            candidate = perceived_image(grayscale, transform, beta,
                                        self.power_model.panel.transmissivity)
        return float(self.measure(grayscale, candidate))

    def solve(self, image: Image, max_distortion: float):
        """The budget-optimal ``(band transform, beta)`` pair for ``image``.

        The policy half of :meth:`optimize` — the part the :mod:`repro.api`
        solution cache stores, since both the search and the band placement
        depend on the image only through its histogram.
        """
        grayscale = image.to_grayscale()
        beta = find_minimum_backlight(
            lambda candidate: self.distortion_at(grayscale, candidate),
            max_distortion,
            min_factor=self.min_factor,
            tolerance=self.search_tolerance,
        )
        return self.band_for(grayscale, beta), beta

    def optimize(self, image: Image, max_distortion: float) -> BaselineResult:
        """Pick the narrowest band (most dimming) that respects the budget."""
        grayscale = image.to_grayscale()
        transform, beta = self.solve(grayscale, max_distortion)
        return build_result(
            self.method_name, grayscale, transform, beta,
            self.measure, max_distortion, self.power_model)

    def apply(self, image: Image, beta: float) -> BaselineResult:
        """Run CBCS at a fixed band width ``beta`` (no policy search)."""
        return build_result(
            self.method_name, image, self.band_for(image, beta), beta,
            self.measure, float("nan"), self.power_model)
