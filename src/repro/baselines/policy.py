"""Shared machinery for distortion-constrained backlight dimming policies.

Every backlight-scaling technique — the two DLS variants [4], CBCS [5] and
HEBS itself — follows the same template (the paper's Dynamic Backlight
Scaling problem, Sec. 3): pick a pixel transformation ``Phi(x, beta)`` and a
backlight factor ``beta`` that minimize display power subject to a distortion
budget.  What differs is the family of transformations and the distortion
measure.  This module provides the shared pieces:

* :func:`perceived_image` — what the observer actually sees: the normalized
  luminance ``beta * t(Phi(x))`` re-expressed as an image, so that any
  distortion measure can compare it against the original (the
  transform-then-compare methodology of the paper's ref. [6]).
* :func:`find_minimum_backlight` — a monotone search for the smallest
  backlight factor whose distortion stays within budget.
* :class:`BaselineResult` — the uniform result record the comparison
  experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.transforms import PixelTransform
from repro.display.panel import TransmissivityModel
from repro.display.power import DisplayPowerModel, PowerBreakdown
from repro.imaging.image import Image
from repro.quality.distortion import DistortionMeasure

__all__ = ["BaselineResult", "perceived_image", "find_minimum_backlight"]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of running one dimming technique on one image.

    Attributes
    ----------
    method:
        Human-readable technique name (``"dls-brightness"``, ``"cbcs"`` ...).
    original:
        The grayscale input image.
    displayed:
        The image written to the panel (original pixels through
        ``Phi(x, beta)``, saturated to the representable range).
    perceived:
        The luminance the observer sees, re-expressed as an image (this is
        what the distortion was measured on).
    backlight_factor:
        The chosen dimming factor ``beta``.
    distortion:
        Achieved distortion (percent) of ``perceived`` versus ``original``.
    power, reference_power:
        Display power with/without the technique.
    max_distortion:
        The budget the policy was asked to respect.
    """

    method: str
    original: Image
    displayed: Image
    perceived: Image
    backlight_factor: float
    distortion: float
    power: PowerBreakdown
    reference_power: PowerBreakdown
    max_distortion: float

    @property
    def power_saving(self) -> float:
        """Fractional display-power saving versus the full-backlight original."""
        return self.power.saving_versus(self.reference_power)

    @property
    def power_saving_percent(self) -> float:
        """Power saving in percent."""
        return 100.0 * self.power_saving

    def summary(self) -> dict[str, float]:
        """Compact dictionary of the headline numbers."""
        return {
            "backlight_factor": self.backlight_factor,
            "distortion_percent": self.distortion,
            "power_saving_percent": self.power_saving_percent,
        }


def perceived_image(image: Image, transform: PixelTransform, beta: float,
                    transmissivity: TransmissivityModel | None = None) -> Image:
    """The image an observer perceives on a backlight-scaled display.

    The emitted luminance of a pixel with original value ``x`` is
    ``I = beta * t(Phi(x))`` (Eq. 1b).  Normalizing by the full-backlight
    white level ``t(1)`` and mapping back to pixel levels gives an image in
    the original domain that any quality metric can compare against the
    original (whose perceived image is ``t(x) / t(1) = x`` for the ideal
    transmissivity).
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    transmissivity = transmissivity or TransmissivityModel()
    grayscale = image.to_grayscale()
    displayed_values = transform(grayscale.as_float())
    luminance = beta * np.asarray(transmissivity.transmittance(displayed_values))
    normalized = luminance / transmissivity.transmittance(1.0)
    return Image.from_float(normalized, bit_depth=grayscale.bit_depth,
                            name=f"{grayscale.name}:perceived")


def find_minimum_backlight(
    evaluate: Callable[[float], float],
    max_distortion: float,
    min_factor: float = 0.05,
    tolerance: float = 1e-3,
    coarse_steps: int = 20,
) -> float:
    """Smallest backlight factor whose distortion stays within the budget.

    ``evaluate(beta)`` must return the distortion (percent) of the technique
    at backlight factor ``beta``; it is assumed to be (weakly) decreasing in
    ``beta`` — dimming less never hurts quality.  The search runs a coarse
    grid pass to bracket the feasibility boundary followed by bisection down
    to ``tolerance``.

    Returns 1.0 if even full backlight violates the budget (which only
    happens for a degenerate measure) and ``min_factor`` if the most
    aggressive dimming already satisfies it.
    """
    if max_distortion < 0:
        raise ValueError("max_distortion must be non-negative")
    if not 0.0 < min_factor < 1.0:
        raise ValueError("min_factor must be in (0, 1)")
    if coarse_steps < 2:
        raise ValueError("coarse_steps must be at least 2")

    if evaluate(min_factor) <= max_distortion:
        return min_factor
    if evaluate(1.0) > max_distortion:
        return 1.0

    # coarse pass: find the first grid point that satisfies the budget
    grid = np.linspace(min_factor, 1.0, coarse_steps)
    feasible = 1.0
    infeasible = min_factor
    for beta in grid[1:]:
        if evaluate(float(beta)) <= max_distortion:
            feasible = float(beta)
            break
        infeasible = float(beta)

    # bisection between the last infeasible and the first feasible point
    while feasible - infeasible > tolerance:
        middle = 0.5 * (feasible + infeasible)
        if evaluate(middle) <= max_distortion:
            feasible = middle
        else:
            infeasible = middle
    return feasible


def build_result(
    method: str,
    image: Image,
    transform: PixelTransform,
    beta: float,
    measure: DistortionMeasure,
    max_distortion: float,
    power_model: DisplayPowerModel,
) -> BaselineResult:
    """Assemble a :class:`BaselineResult` for a chosen transform and ``beta``."""
    grayscale = image.to_grayscale()
    displayed = transform.apply(grayscale)
    perceived = perceived_image(grayscale, transform, beta,
                                power_model.panel.transmissivity)
    distortion = float(measure(grayscale, perceived))
    power = power_model.breakdown(displayed, beta)
    reference = power_model.reference(grayscale)
    return BaselineResult(
        method=method,
        original=grayscale,
        displayed=displayed,
        perceived=perceived,
        backlight_factor=float(beta),
        distortion=distortion,
        power=power,
        reference_power=reference,
        max_distortion=float(max_distortion),
    )
