"""Dynamic backlight Luminance Scaling (DLS) — the paper's ref. [4].

Chang, Choi & Shim's DLS dims the backlight and compensates by adjusting the
grayscale of the image, using one of two pixel transformation functions
(paper Eq. 2a/2b, Fig. 2b/2c):

* **Brightness compensation** — ``Phi(x, beta) = min(1, x + 1 - beta)``:
  every pixel is shifted up by the lost luminance; pixels near white
  saturate.
* **Contrast enhancement** — ``Phi(x, beta) = min(1, x / beta)``: pixel
  values are scaled so non-saturating pixels keep their original luminance;
  pixels above ``beta`` saturate at white.

The dimming policy picks the smallest ``beta`` whose distortion stays within
the budget.  DLS's native distortion measure is the percentage of saturated
pixels; for the apples-to-apples comparison of the paper (and the ``cmp15``
experiment) the policy can also be run with the paper's effective-distortion
measure — both are supported through the ``measure`` argument.
"""

from __future__ import annotations

from repro.baselines.policy import (
    BaselineResult,
    build_result,
    find_minimum_backlight,
    perceived_image,
)
from repro.core.transforms import GrayscaleShiftTransform, GrayscaleSpreadTransform
from repro.display.power import DisplayPowerModel
from repro.imaging.image import Image
from repro.quality.distortion import DistortionMeasure, get_measure

__all__ = ["DLSBrightness", "DLSContrast"]


#: Measure names that the original papers evaluate on the *compensated*
#: (displayed) image rather than on the perceived luminance: ref. [4] counts
#: the pixels its compensation saturated, ref. [5] checks the contrast
#: fidelity of the spread image.
_NATIVE_DISPLAYED_MEASURES = ("saturation", "contrast")


class _DLSBase:
    """Shared policy logic of the two DLS variants."""

    #: Name reported in results; overridden by the concrete variants.
    method_name = "dls"

    def __init__(self, measure: str | DistortionMeasure = "effective",
                 power_model: DisplayPowerModel | None = None,
                 min_factor: float = 0.05, search_tolerance: float = 1e-3,
                 compare_displayed: bool | None = None) -> None:
        self.measure: DistortionMeasure = (
            get_measure(measure) if isinstance(measure, str) else measure)
        self.power_model = power_model or DisplayPowerModel()
        self.min_factor = float(min_factor)
        self.search_tolerance = float(search_tolerance)
        if compare_displayed is None:
            compare_displayed = (isinstance(measure, str)
                                 and measure.lower() in _NATIVE_DISPLAYED_MEASURES)
        #: Whether the policy's distortion is evaluated on the displayed
        #: (compensated) image, as the native measures of refs. [4]/[5] are,
        #: instead of on the perceived luminance.
        self.compare_displayed = bool(compare_displayed)

    # -- to be provided by the variants --------------------------------- #
    def transform_for(self, beta: float):
        """The pixel transformation used at backlight factor ``beta``."""
        raise NotImplementedError

    # -- policy ---------------------------------------------------------- #
    def distortion_at(self, image: Image, beta: float) -> float:
        """Distortion (percent) of displaying ``image`` dimmed to ``beta``."""
        transform = self.transform_for(beta)
        grayscale = image.to_grayscale()
        if self.compare_displayed:
            candidate = transform.apply(grayscale)
        else:
            candidate = perceived_image(grayscale, transform, beta,
                                        self.power_model.panel.transmissivity)
        return float(self.measure(grayscale, candidate))

    def solve(self, image: Image, max_distortion: float):
        """The budget-optimal ``(transform, beta)`` pair for ``image``.

        This is the image-independent half of :meth:`optimize` (the policy
        search); it is what the :mod:`repro.api` solution cache stores.
        """
        grayscale = image.to_grayscale()
        beta = find_minimum_backlight(
            lambda candidate: self.distortion_at(grayscale, candidate),
            max_distortion,
            min_factor=self.min_factor,
            tolerance=self.search_tolerance,
        )
        return self.transform_for(beta), beta

    def optimize(self, image: Image, max_distortion: float) -> BaselineResult:
        """Pick the most aggressive dimming that respects the budget."""
        grayscale = image.to_grayscale()
        transform, beta = self.solve(grayscale, max_distortion)
        return build_result(
            self.method_name, grayscale, transform, beta,
            self.measure, max_distortion, self.power_model)

    def apply(self, image: Image, beta: float) -> BaselineResult:
        """Run the technique at a fixed ``beta`` (no policy search)."""
        return build_result(
            self.method_name, image, self.transform_for(beta), beta,
            self.measure, float("nan"), self.power_model)


class DLSBrightness(_DLSBase):
    """DLS with brightness compensation (Eq. 2a, Fig. 2b)."""

    method_name = "dls-brightness"

    def transform_for(self, beta: float) -> GrayscaleShiftTransform:
        return GrayscaleShiftTransform(beta)


class DLSContrast(_DLSBase):
    """DLS with contrast enhancement (Eq. 2b, Fig. 2c)."""

    method_name = "dls-contrast"

    def transform_for(self, beta: float) -> GrayscaleSpreadTransform:
        return GrayscaleSpreadTransform(beta)
