"""Baseline backlight-scaling techniques the paper compares against.

* :mod:`~repro.baselines.dls` — Dynamic backlight Luminance Scaling of
  Chang, Choi & Shim (the paper's ref. [4]): backlight dimming with
  brightness compensation (Eq. 2a) or contrast enhancement (Eq. 2b).
* :mod:`~repro.baselines.cbcs` — Concurrent Brightness and Contrast Scaling
  of Cheng & Pedram (ref. [5]): single-band grayscale spreading (Eq. 3).
* :mod:`~repro.baselines.policy` — the shared distortion-constrained
  dimming-policy machinery (perceived-image model and backlight search).

All baselines expose the same ``optimize(image, max_distortion)`` interface
returning a :class:`~repro.baselines.policy.BaselineResult`, so the
comparison experiment can sweep methods uniformly.
"""

from repro.baselines.policy import (
    BaselineResult,
    perceived_image,
    find_minimum_backlight,
)
from repro.baselines.dls import DLSBrightness, DLSContrast
from repro.baselines.cbcs import CBCS

__all__ = [
    "BaselineResult",
    "perceived_image",
    "find_minimum_backlight",
    "DLSBrightness",
    "DLSContrast",
    "CBCS",
]
