"""Benchmark image registry and cached characterization artifacts.

Every experiment needs the same two expensive-to-build objects:

* the 19-image synthetic benchmark suite standing in for USC-SIPI, and
* the distortion characteristic curve fitted on that suite (Fig. 7), which
  the HEBS pipeline consults for every distortion budget.

This module builds both lazily and caches them per (size, measure) so a
pytest session or a benchmark run only pays for the characterization sweep
once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.distortion_curve import (
    DEFAULT_RANGE_GRID,
    DistortionCharacteristicCurve,
    build_distortion_curve,
)
from repro.core.pipeline import HEBS, HEBSConfig
from repro.imaging.image import Image
from repro.imaging.synthetic import benchmark_names, benchmark_suite

__all__ = [
    "benchmark_images",
    "benchmark_names",
    "default_curve",
    "default_pipeline",
    "default_engine",
    "clear_caches",
    "DEFAULT_IMAGE_SIZE",
]

#: Image size used by the experiments.  128x128 keeps the full Table-1 sweep
#: fast while leaving the histogram statistics (what HEBS consumes)
#: essentially identical to larger renderings.
DEFAULT_IMAGE_SIZE: tuple[int, int] = (128, 128)


@lru_cache(maxsize=8)
def _cached_suite(size: tuple[int, int]) -> dict[str, Image]:
    return benchmark_suite(size=size)


def benchmark_images(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                     names: tuple[str, ...] | None = None) -> dict[str, Image]:
    """The synthetic benchmark suite as ``{name: Image}``.

    ``names`` restricts the returned dictionary to a subset (order
    preserved); by default all 19 Table-1 benchmarks are returned.
    """
    suite = _cached_suite(tuple(size))
    if names is None:
        return dict(suite)
    missing = [name for name in names if name.lower() not in suite]
    if missing:
        raise KeyError(f"unknown benchmark names: {missing}")
    return {name.lower(): suite[name.lower()] for name in names}


@lru_cache(maxsize=8)
def _cached_curve(size: tuple[int, int],
                  measure: str) -> DistortionCharacteristicCurve:
    return build_distortion_curve(
        _cached_suite(size),
        target_ranges=DEFAULT_RANGE_GRID,
        measure=measure,
    )


def default_curve(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                  measure: str = "effective") -> DistortionCharacteristicCurve:
    """The distortion characteristic curve fitted on the default suite."""
    return _cached_curve(tuple(size), measure)


def default_pipeline(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                     measure: str = "effective",
                     config: HEBSConfig | None = None) -> HEBS:
    """A ready-to-use HEBS pipeline characterized on the default suite."""
    return HEBS(default_curve(size=size, measure=measure), config=config)


def default_engine(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                   measure: str = "effective",
                   algorithm: str = "hebs",
                   cache_size: int = 256,
                   signature_bins: int = 256):
    """A fresh :class:`~repro.api.engine.Engine` over the default suite.

    The engine itself is new on every call (it carries mutable cache state),
    but it shares the session-cached characterization curve, so construction
    is cheap after the first call.
    """
    # deferred import: repro.api builds its default algorithms on this module
    from repro.api.engine import Engine
    from repro.api.registry import HEBSAlgorithm

    # every factory accepts measure=, so baseline algorithms created by
    # name share the distortion measure of the pre-wired HEBS entries
    engine = Engine(algorithm=algorithm, cache_size=cache_size,
                    signature_bins=signature_bins,
                    algorithm_options={"measure": measure})
    # pre-wire all HEBS entries onto pipelines characterized at the
    # requested size/measure (the by-name factories ignore `size`)
    pipeline = default_pipeline(size=size, measure=measure)
    engine.algorithm(HEBSAlgorithm(pipeline, adaptive=False, name="hebs"))
    engine.algorithm(HEBSAlgorithm(pipeline, adaptive=True,
                                   name="hebs-adaptive"))
    for equalization in ("clipped", "bbhe"):
        variant = default_pipeline(size=size, measure=measure,
                                   config=HEBSConfig(equalization=equalization))
        engine.algorithm(HEBSAlgorithm(variant,
                                       name=f"hebs-{equalization}"))
    return engine


def clear_caches() -> None:
    """Drop the cached suite and curves (useful in long-lived processes)."""
    _cached_suite.cache_clear()
    _cached_curve.cache_clear()
