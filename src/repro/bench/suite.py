"""Benchmark image registry and cached characterization artifacts.

Every experiment needs the same two expensive-to-build objects:

* the 19-image synthetic benchmark suite standing in for USC-SIPI, and
* the distortion characteristic curve fitted on that suite (Fig. 7), which
  the HEBS pipeline consults for every distortion budget.

This module builds both lazily and caches them per (size, measure) so a
pytest session or a benchmark run only pays for the characterization sweep
once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.distortion_curve import (
    DEFAULT_RANGE_GRID,
    DistortionCharacteristicCurve,
    build_distortion_curve,
)
from repro.core.pipeline import HEBS, HEBSConfig
from repro.imaging.image import Image
from repro.imaging.synthetic import benchmark_names, benchmark_suite

__all__ = [
    "benchmark_images",
    "benchmark_names",
    "default_curve",
    "default_pipeline",
    "clear_caches",
    "DEFAULT_IMAGE_SIZE",
]

#: Image size used by the experiments.  128x128 keeps the full Table-1 sweep
#: fast while leaving the histogram statistics (what HEBS consumes)
#: essentially identical to larger renderings.
DEFAULT_IMAGE_SIZE: tuple[int, int] = (128, 128)


@lru_cache(maxsize=8)
def _cached_suite(size: tuple[int, int]) -> dict[str, Image]:
    return benchmark_suite(size=size)


def benchmark_images(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                     names: tuple[str, ...] | None = None) -> dict[str, Image]:
    """The synthetic benchmark suite as ``{name: Image}``.

    ``names`` restricts the returned dictionary to a subset (order
    preserved); by default all 19 Table-1 benchmarks are returned.
    """
    suite = _cached_suite(tuple(size))
    if names is None:
        return dict(suite)
    missing = [name for name in names if name.lower() not in suite]
    if missing:
        raise KeyError(f"unknown benchmark names: {missing}")
    return {name.lower(): suite[name.lower()] for name in names}


@lru_cache(maxsize=8)
def _cached_curve(size: tuple[int, int],
                  measure: str) -> DistortionCharacteristicCurve:
    return build_distortion_curve(
        _cached_suite(size),
        target_ranges=DEFAULT_RANGE_GRID,
        measure=measure,
    )


def default_curve(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                  measure: str = "effective") -> DistortionCharacteristicCurve:
    """The distortion characteristic curve fitted on the default suite."""
    return _cached_curve(tuple(size), measure)


def default_pipeline(size: tuple[int, int] = DEFAULT_IMAGE_SIZE,
                     measure: str = "effective",
                     config: HEBSConfig | None = None) -> HEBS:
    """A ready-to-use HEBS pipeline characterized on the default suite."""
    return HEBS(default_curve(size=size, measure=measure), config=config)


def clear_caches() -> None:
    """Drop the cached suite and curves (useful in long-lived processes)."""
    _cached_suite.cache_clear()
    _cached_curve.cache_clear()
