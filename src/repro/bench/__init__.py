"""Benchmark/experiment layer: named image suite and paper-figure harnesses.

* :mod:`~repro.bench.suite` — the registry of benchmark images and the
  cached default distortion characteristic curve / HEBS pipeline used by all
  experiments (so the expensive characterization runs once per process).
* :mod:`~repro.bench.experiments` — one callable per table and figure of the
  paper's evaluation section (plus the ablations listed in DESIGN.md); the
  scripts in ``benchmarks/`` and ``examples/`` are thin wrappers over these.
"""

from repro.bench.suite import (
    benchmark_images,
    default_curve,
    default_pipeline,
    clear_caches,
)
from repro.bench.experiments import (
    table1_power_saving,
    figure2_transform_functions,
    figure3_kband_function,
    figure6a_ccfl_characterization,
    figure6b_panel_characterization,
    figure7_distortion_curve,
    figure8_sample_transforms,
    comparison_vs_baselines,
    ablation_plc_segments,
    ablation_distortion_measures,
    ablation_equalization_methods,
    interface_encoding_study,
)

__all__ = [
    "benchmark_images",
    "default_curve",
    "default_pipeline",
    "clear_caches",
    "table1_power_saving",
    "figure2_transform_functions",
    "figure3_kband_function",
    "figure6a_ccfl_characterization",
    "figure6b_panel_characterization",
    "figure7_distortion_curve",
    "figure8_sample_transforms",
    "comparison_vs_baselines",
    "ablation_plc_segments",
    "ablation_distortion_measures",
    "ablation_equalization_methods",
    "interface_encoding_study",
]
