"""Throughput benchmark: the engine's batch+cache path versus the naive loop.

The production workloads sketched in ``examples/`` (photo viewers, video
playback) repeatedly show content with recurring histograms — the same photo
re-displayed, consecutive frames of a still scene.  The naive per-image loop
re-runs the full HEBS derivation (GHE solve, PLC dynamic program, driver
programming) for every single image; the :class:`~repro.api.engine.Engine`
solves each distinct histogram once and replays the cached solution as a
cheap LUT application.

:func:`throughput_benchmark` times both paths on a repeated-histogram
workload, verifies the outputs are identical, and reports images/second and
the speedup.  ``repro experiment throughput`` runs it from the CLI and
``benchmarks/test_throughput.py`` guards the speedup in CI.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.analysis.reporting import Table
from repro.bench.suite import benchmark_images, default_engine
from repro.imaging.image import Image

__all__ = ["repeated_workload", "throughput_benchmark"]

#: Default subset used for the repeated workload — small enough to keep the
#: CI benchmark fast, varied enough to exercise several distinct solutions.
DEFAULT_WORKLOAD_IMAGES: tuple[str, ...] = ("lena", "peppers", "baboon",
                                            "pout")


def repeated_workload(image_names: Sequence[str] = DEFAULT_WORKLOAD_IMAGES,
                      repeats: int = 8) -> list[Image]:
    """A workload of ``len(image_names) * repeats`` images with repeated
    histograms — each base image appears ``repeats`` times, interleaved the
    way a slideshow loop would replay an album."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    base = list(benchmark_images(names=tuple(image_names)).values())
    return [image for _ in range(repeats) for image in base]


def throughput_benchmark(
    image_names: Sequence[str] = DEFAULT_WORKLOAD_IMAGES,
    repeats: int = 8,
    max_distortion: float = 10.0,
    algorithm: str = "hebs",
) -> Table:
    """Time the naive per-image loop against the engine's batched path.

    Both paths process the same repeated-histogram workload with the same
    algorithm and budget; outputs are asserted identical before any timing
    is reported.  Returns a table with one row per path (plus the warm-cache
    replay) carrying wall time, images/second and speedup over the naive
    loop.
    """
    workload = repeated_workload(image_names, repeats)
    n_images = len(workload)
    engine = default_engine(algorithm=algorithm)
    algo = engine.algorithm(algorithm)

    # naive path: the pre-API calling convention — every image pays the
    # full derivation (same algorithm instance, no cache, no grouping)
    start = time.perf_counter()
    naive = [algo.compensate(image, max_distortion) for image in workload]
    naive_seconds = time.perf_counter() - start

    # batched path, cold cache: one solve per distinct histogram
    start = time.perf_counter()
    batched = engine.process_batch(workload, max_distortion,
                                   algorithm=algorithm)
    cold_seconds = time.perf_counter() - start
    cold_stats = engine.cache_stats

    # batched path, warm cache: every solve is a hit
    start = time.perf_counter()
    warm = engine.process_batch(workload, max_distortion, algorithm=algorithm)
    warm_seconds = time.perf_counter() - start
    warm_stats = engine.cache_stats

    for candidates in (batched, warm):
        for expected, actual in zip(naive, candidates):
            if not np.array_equal(expected.output.pixels,
                                  actual.output.pixels):
                raise AssertionError(
                    "engine output diverged from the naive loop")

    table = Table(
        title=(f"Throughput on {n_images} images "
               f"({len(tuple(image_names))} distinct histograms x {repeats}, "
               f"budget {max_distortion:g}%, algorithm {algorithm})"),
        columns=("path", "seconds", "images_per_s", "speedup", "reused"),
        precision=3,
    )
    # "reused" counts images that skipped a solve in that phase: cache hits
    # plus within-batch replays (group members past the first)
    rows = [
        {"path": "naive per-image loop", "seconds": naive_seconds,
         "images_per_s": n_images / naive_seconds, "speedup": 1.0,
         "reused": 0},
        {"path": "engine batch (cold cache)", "seconds": cold_seconds,
         "images_per_s": n_images / cold_seconds,
         "speedup": naive_seconds / cold_seconds,
         "reused": (cold_stats.hits + cold_stats.replays)},
        {"path": "engine batch (warm cache)", "seconds": warm_seconds,
         "images_per_s": n_images / warm_seconds,
         "speedup": naive_seconds / warm_seconds,
         "reused": (warm_stats.hits + warm_stats.replays
                    - cold_stats.hits - cold_stats.replays)},
    ]
    return table.with_rows(rows)
