"""One callable per table / figure of the paper's evaluation (DESIGN.md §4).

Each function returns plain data structures (a :class:`~repro.analysis.reporting.Table`
or a dictionary of numpy series) and never prints or plots by itself; the
``benchmarks/`` tests wrap them with pytest-benchmark and assert the expected
shapes, and the ``examples/`` scripts render them for human consumption.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.regression import (
    fit_polynomial,
    fit_two_piece_linear,
)
from repro.analysis.reporting import Table
from repro.api.engine import Engine
from repro.api.registry import BaselineAlgorithm, HEBSAlgorithm
from repro.baselines.cbcs import CBCS
from repro.baselines.dls import DLSBrightness, DLSContrast
from repro.bench.suite import benchmark_images, default_curve, default_pipeline
from repro.core.distortion_curve import DEFAULT_RANGE_GRID, build_distortion_curve
from repro.core.equalization import equalize_histogram
from repro.core.pipeline import HEBS
from repro.core.plc import coarsen_transform, kband_spreading_function
from repro.core.transforms import (
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    IdentityTransform,
    SingleBandSpreadTransform,
)
from repro.display.ccfl import LP064V1_CCFL, simulate_ccfl_measurements
from repro.display.panel import LP064V1_PANEL, simulate_panel_measurements
from repro.imaging.image import Image
from repro.imaging.synthetic import TABLE1_DISPLAY_NAMES

__all__ = [
    "table1_power_saving",
    "figure2_transform_functions",
    "figure3_kband_function",
    "figure6a_ccfl_characterization",
    "figure6b_panel_characterization",
    "figure7_distortion_curve",
    "figure8_sample_transforms",
    "comparison_vs_baselines",
    "ablation_plc_segments",
    "ablation_distortion_measures",
    "ablation_equalization_methods",
    "interface_encoding_study",
]

#: The six sample images shown in Fig. 8 (a representative subset of Table 1).
FIGURE8_IMAGES: tuple[str, ...] = ("lena", "peppers", "baboon",
                                   "pout", "sail", "housea")


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #
def table1_power_saving(
    distortion_levels: Sequence[float] = (5.0, 10.0, 20.0),
    images: Mapping[str, Image] | None = None,
    pipeline: HEBS | None = None,
    adaptive: bool = True,
) -> Table:
    """Table 1: power saving per benchmark image at several distortion budgets.

    Returns a table with one row per image plus an ``Average`` row; columns
    are ``image`` and one ``saving@D%`` column per distortion level.

    ``adaptive=True`` (the default) selects the dynamic range per image by
    bisection on the measured distortion — the offline selection implied by
    the per-image spread of the paper's Table 1.  ``adaptive=False`` uses the
    global characteristic curve (the real-time flow of Fig. 4), in which case
    every image gets the same dynamic range for a given budget.
    """
    images = images if images is not None else benchmark_images()
    pipeline = pipeline or default_pipeline()
    engine = Engine(HEBSAlgorithm(pipeline, adaptive=adaptive))

    columns = ["image"] + [f"saving@{level:g}%" for level in distortion_levels]
    table = Table(
        title="Table 1 - Power saving (%) for different distortion levels",
        columns=tuple(columns),
    )

    per_level_totals = {level: [] for level in distortion_levels}
    rows = []
    for name, image in images.items():
        row: dict[str, object] = {
            "image": TABLE1_DISPLAY_NAMES.get(name, name)}
        for level in distortion_levels:
            saving = engine.process(image, level).power_saving_percent
            row[f"saving@{level:g}%"] = saving
            per_level_totals[level].append(saving)
        rows.append(row)

    average_row: dict[str, object] = {"image": "Average"}
    for level in distortion_levels:
        average_row[f"saving@{level:g}%"] = float(
            np.mean(per_level_totals[level]))
    rows.append(average_row)
    return table.with_rows(rows)


# --------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------- #
def figure2_transform_functions(beta: float = 0.6,
                                n_points: int = 256) -> dict[str, np.ndarray]:
    """Fig. 2: the four pixel-transformation-function shapes.

    Returns the normalized input grid ``x`` and one output series per
    sub-figure: identity (2a), grayscale shift (2b), grayscale spreading
    (2c) and single-band grayscale spreading (2d, band centred on mid-gray).
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    x = np.linspace(0.0, 1.0, n_points)
    band = SingleBandSpreadTransform.from_backlight_factor(beta, center=0.5)
    return {
        "x": x,
        "identity": np.asarray(IdentityTransform()(x)),
        "grayscale_shift": np.asarray(GrayscaleShiftTransform(beta)(x)),
        "grayscale_spreading": np.asarray(GrayscaleSpreadTransform(beta)(x)),
        "single_band_spreading": np.asarray(band(x)),
        "beta": np.array([beta]),
    }


# --------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------- #
def figure3_kband_function(image_name: str = "lena", target_range: int = 128,
                           n_segments: int = 4) -> dict[str, np.ndarray]:
    """Fig. 3: the k-window grayscale spreading function produced by PLC.

    Runs GHE on one benchmark image, coarsens the exact transformation to
    ``n_segments`` segments and returns both curves (exact and coarsened) so
    the k-band structure — multiple slopes with flat bands — is visible.
    """
    image = benchmark_images(names=(image_name,))[image_name.lower()]
    ghe = equalize_histogram(image, 0, target_range)
    coarse = coarsen_transform(ghe.transform, n_segments)
    transform = kband_spreading_function(coarse, levels=image.levels)

    levels = np.arange(image.levels, dtype=np.float64)
    return {
        "levels": levels,
        "exact": np.asarray(ghe.transform.table) * (image.levels - 1),
        "coarse": np.asarray(coarse(levels)),
        "breakpoints_x": np.asarray(coarse.x),
        "breakpoints_y": np.asarray(coarse.y),
        "slopes": transform.slopes(),
        "plc_mse": np.array([coarse.mean_squared_error]),
    }


# --------------------------------------------------------------------- #
# Figure 6a / 6b
# --------------------------------------------------------------------- #
def figure6a_ccfl_characterization(n_points: int = 25,
                                   seed: int = 2005) -> dict[str, object]:
    """Fig. 6a: CCFL illuminance versus driver power, with the two-piece fit.

    Simulates the LP064V1 measurement, re-fits the two-piece linear model of
    Eq. (11) and reports both the fitted and the paper's coefficients.
    """
    power, illuminance = simulate_ccfl_measurements(n_points=n_points, seed=seed)
    # Eq. (11) expresses power as a function of the backlight factor, so the
    # fit is done on (illuminance -> power).
    fit = fit_two_piece_linear(illuminance, power)
    return {
        "power": power,
        "illuminance": illuminance,
        "fit": fit,
        "fitted": {
            "Cs": fit.knee,
            "Alin": fit.lower.slope,
            "Clin": fit.lower.intercept,
            "Asat": fit.upper.slope,
            "Csat": fit.upper.intercept,
        },
        "paper": {
            "Cs": LP064V1_CCFL.saturation_knee,
            "Alin": LP064V1_CCFL.linear_slope,
            "Clin": LP064V1_CCFL.linear_intercept,
            "Asat": LP064V1_CCFL.saturated_slope,
            "Csat": LP064V1_CCFL.saturated_intercept,
        },
    }


def figure6b_panel_characterization(n_points: int = 20,
                                    seed: int = 1996) -> dict[str, object]:
    """Fig. 6b: panel power versus transmittance, with the quadratic fit.

    Simulates the LP064V1 panel measurement, re-fits the quadratic model of
    Eq. (12) and reports fitted versus paper coefficients.
    """
    transmittance, power = simulate_panel_measurements(n_points=n_points,
                                                       seed=seed)
    fit = fit_polynomial(transmittance, power, degree=2)
    constant, linear, quadratic = fit.coefficients
    return {
        "transmittance": transmittance,
        "power": power,
        "fit": fit,
        "fitted": {"a": quadratic, "b": linear, "c": constant},
        "paper": {
            "a": LP064V1_PANEL.quadratic,
            "b": -LP064V1_PANEL.linear,
            "c": LP064V1_PANEL.constant,
        },
    }


# --------------------------------------------------------------------- #
# Figure 7
# --------------------------------------------------------------------- #
def figure7_distortion_curve(
    images: Mapping[str, Image] | None = None,
    target_ranges: Sequence[int] = DEFAULT_RANGE_GRID,
    measure: str = "effective",
) -> dict[str, object]:
    """Fig. 7: distortion versus dynamic range with dataset and worst-case fits.

    Returns the raw sweep samples plus the two fitted curves evaluated on a
    dense range grid (the series a plot of Fig. 7 would show).
    """
    if images is None and tuple(target_ranges) == DEFAULT_RANGE_GRID and \
            measure == "effective":
        curve = default_curve(measure=measure)
    else:
        curve = build_distortion_curve(
            images if images is not None else benchmark_images(),
            target_ranges=target_ranges, measure=measure)

    sample_ranges, sample_distortions = curve.sample_arrays()
    dense = np.linspace(min(target_ranges), max(target_ranges), 101)
    return {
        "curve": curve,
        "sample_ranges": sample_ranges,
        "sample_distortions": sample_distortions,
        "fit_ranges": dense,
        "dataset_fit": np.asarray(curve.predict(dense, worst_case=False)),
        "worstcase_fit": np.asarray(curve.predict(dense, worst_case=True)),
    }


# --------------------------------------------------------------------- #
# Figure 8
# --------------------------------------------------------------------- #
def figure8_sample_transforms(
    target_ranges: Sequence[int] = (220, 100),
    image_names: Sequence[str] = FIGURE8_IMAGES,
    pipeline: HEBS | None = None,
) -> Table:
    """Fig. 8: per-image distortion and power saving at fixed dynamic ranges.

    The paper shows six sample images transformed to dynamic ranges 220 and
    100, annotating each with its distortion and power saving.  Returns a
    table with one row per (image, range) pair.
    """
    pipeline = pipeline or default_pipeline()
    images = benchmark_images(names=tuple(image_names))
    table = Table(
        title="Figure 8 - Sample images at fixed dynamic ranges",
        columns=("image", "dynamic_range", "distortion%", "power_saving%",
                 "backlight_factor"),
    )
    rows = []
    for name, image in images.items():
        for target_range in target_ranges:
            result = pipeline.process_with_range(image, int(target_range))
            rows.append({
                "image": TABLE1_DISPLAY_NAMES.get(name, name),
                "dynamic_range": int(target_range),
                "distortion%": result.distortion,
                "power_saving%": result.power_saving_percent,
                "backlight_factor": result.backlight_factor,
            })
    return table.with_rows(rows)


# --------------------------------------------------------------------- #
# Comparison against the prior techniques (the "+15%" claim)
# --------------------------------------------------------------------- #
def comparison_vs_baselines(
    max_distortion: float = 10.0,
    images: Mapping[str, Image] | None = None,
    pipeline: HEBS | None = None,
    measure: str = "effective",
) -> Table:
    """HEBS versus DLS [4] and CBCS [5] at a matched distortion budget.

    All methods are constrained by the same distortion measure and budget;
    the table reports the mean power saving and mean backlight factor of
    each method over the image set, plus HEBS's advantage in percentage
    points (the paper claims roughly +15 pp over the best prior technique at
    a 10% budget).
    """
    images = images if images is not None else benchmark_images()
    pipeline = pipeline or default_pipeline(measure=measure)
    engine = Engine()
    methods = {
        "hebs": HEBSAlgorithm(pipeline, adaptive=True, name="hebs"),
        "dls-brightness": BaselineAlgorithm(DLSBrightness(measure=measure)),
        "dls-contrast": BaselineAlgorithm(DLSContrast(measure=measure)),
        "cbcs": BaselineAlgorithm(CBCS(measure=measure)),
    }

    savings: dict[str, list[float]] = {name: [] for name in methods}
    factors: dict[str, list[float]] = {name: [] for name in methods}
    distortions: dict[str, list[float]] = {name: [] for name in methods}

    for image in images.values():
        for name, method in methods.items():
            result = engine.process(image, max_distortion, algorithm=method)
            savings[name].append(result.power_saving_percent)
            factors[name].append(result.backlight_factor)
            distortions[name].append(result.distortion)

    best_baseline = max(
        float(np.mean(savings[name])) for name in methods if name != "hebs")
    table = Table(
        title=(f"HEBS vs prior techniques at {max_distortion:g}% distortion "
               f"({measure} measure)"),
        columns=("method", "mean_saving%", "mean_backlight", "mean_distortion%",
                 "advantage_pp"),
    )
    rows = []
    for name in methods:
        mean_saving = float(np.mean(savings[name]))
        rows.append({
            "method": name,
            "mean_saving%": mean_saving,
            "mean_backlight": float(np.mean(factors[name])),
            "mean_distortion%": float(np.mean(distortions[name])),
            "advantage_pp": (mean_saving - best_baseline) if name == "hebs"
            else 0.0,
        })
    return table.with_rows(rows)


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #
def ablation_plc_segments(
    image_name: str = "lena",
    target_range: int = 128,
    segment_counts: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
) -> Table:
    """Ablation: PLC segment count versus approximation error and distortion.

    Quantifies the Sec. 4.1 design trade-off: few segments are cheap in
    hardware (few controllable sources) but approximate the exact GHE
    transformation poorly.
    """
    image = benchmark_images(names=(image_name,))[image_name.lower()]
    pipeline = default_pipeline()
    table = Table(
        title=(f"PLC segment-count ablation on {image_name!r} "
               f"(dynamic range {target_range})"),
        columns=("segments", "plc_mse", "distortion%", "power_saving%"),
        precision=4,
    )
    rows = []
    for count in segment_counts:
        variant = pipeline.with_config(n_segments=int(count),
                                       driver_sources=max(int(count), 2))
        result = variant.process_with_range(image, target_range)
        rows.append({
            "segments": int(count),
            "plc_mse": result.coarse_curve.mean_squared_error,
            "distortion%": result.distortion,
            "power_saving%": result.power_saving_percent,
        })
    return table.with_rows(rows)


def ablation_equalization_methods(
    target_range: int = 150,
    image_names: Sequence[str] = ("lena", "peppers", "baboon", "pout"),
    n_segments: int = 8,
) -> Table:
    """Ablation: GHE versus the alternative equalization methods (Sec. 6).

    For a fixed target dynamic range, compares plain GHE against clipped
    (contrast-limited) equalization and bi-histogram equalization: achieved
    distortion, the flatness of the resulting histogram (the Eq. 4 objective)
    and the mean-brightness shift.  The power saving is identical by
    construction (it only depends on the target range), so the comparison is
    purely about image quality.
    """
    from repro.core.equalization_variants import get_equalizer
    from repro.core.plc import coarsen_transform, kband_spreading_function
    from repro.quality.distortion import effective_distortion

    images = benchmark_images(names=tuple(image_names))
    table = Table(
        title=(f"Equalization-method ablation at dynamic range {target_range}"),
        columns=("method", "mean_distortion%", "mean_objective",
                 "mean_brightness_shift"),
        precision=3,
    )
    rows = []
    for method in ("ghe", "clipped", "bbhe"):
        equalizer = get_equalizer(method)
        distortions = []
        objectives = []
        shifts = []
        for image in images.values():
            result = equalizer(image, 0, target_range)
            coarse = coarsen_transform(result.transform, n_segments)
            transform = kband_spreading_function(coarse, levels=image.levels)
            transformed = transform.apply(image)
            distortions.append(effective_distortion(image, transformed))
            objectives.append(result.objective)
            shifts.append(abs(transformed.mean() / target_range
                              - image.mean() / (image.levels - 1)))
        rows.append({
            "method": method,
            "mean_distortion%": float(np.mean(distortions)),
            "mean_objective": float(np.mean(objectives)),
            "mean_brightness_shift": float(np.mean(shifts)),
        })
    return table.with_rows(rows)


def interface_encoding_study(
    image_names: Sequence[str] = ("lena", "baboon", "pout", "testpat"),
    pipeline: HEBS | None = None,
    target_range: int = 150,
) -> Table:
    """Study: video-bus encodings with and without HEBS (Sec. 1, refs. [2][3]).

    The paper's introduction splits LCD power work into interface-encoding
    techniques and backlight-scaling techniques.  This study shows they
    compose: for each benchmark the bus transition count is reported for the
    original and the HEBS-transformed frame under the binary, Gray and
    bus-invert encodings, together with the display power with and without
    backlight scaling.
    """
    from repro.display.interface import VideoBusModel

    pipeline = pipeline or default_pipeline()
    images = benchmark_images(names=tuple(image_names))
    encodings = ("binary", "gray", "bus-invert")
    models = {name: VideoBusModel(encoding=name) for name in encodings}

    table = Table(
        title="Bus-encoding x backlight-scaling study (per-frame energy, "
              "normalized units)",
        columns=("image", "variant", "binary", "gray", "bus-invert",
                 "display_power"),
        precision=4,
    )
    rows = []
    for name, image in images.items():
        result = pipeline.process_with_range(image, target_range)
        for variant, frame, display_power in (
            ("original", image.to_grayscale(),
             result.reference_power.total),
            ("hebs", result.transformed, result.power.total),
        ):
            row = {
                "image": TABLE1_DISPLAY_NAMES.get(name, name),
                "variant": variant,
                "display_power": display_power,
            }
            for encoding in encodings:
                row[encoding] = models[encoding].frame_energy(frame)
            rows.append(row)
    return table.with_rows(rows)


def ablation_distortion_measures(
    measures: Sequence[str] = ("effective", "uqi", "ssim", "rmse"),
    max_distortion: float = 10.0,
    image_names: Sequence[str] = ("lena", "peppers", "baboon", "pout"),
) -> Table:
    """Ablation: how the choice of distortion measure changes the outcome.

    Re-characterizes the distortion curve with each measure and reports the
    dynamic range / power saving the pipeline then selects for the same
    nominal budget.  (Sec. 6 lists "alternative distortion measures" as
    future work.)
    """
    images = benchmark_images(names=tuple(image_names))
    table = Table(
        title=f"Distortion-measure ablation at a {max_distortion:g}% budget",
        columns=("measure", "selected_range", "mean_backlight",
                 "mean_saving%"),
    )
    rows = []
    for measure in measures:
        curve = build_distortion_curve(benchmark_images(), measure=measure)
        pipeline = HEBS(curve)
        selected_range = pipeline.select_range(max_distortion)
        results = [pipeline.process(image, max_distortion)
                   for image in images.values()]
        rows.append({
            "measure": measure,
            "selected_range": selected_range,
            "mean_backlight": float(np.mean(
                [r.backlight_factor for r in results])),
            "mean_saving%": float(np.mean(
                [r.power_saving_percent for r in results])),
        })
    return table.with_rows(rows)
