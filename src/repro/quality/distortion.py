"""The paper's *effective distortion* measure and a registry of alternatives.

HEBS claims "a more accurate definition of the image distortion which takes
into account both the pixel value differences and a model of the human visual
system" (Sec. 1).  Concretely the paper adopts the Universal image Quality
Index (ref. [8]) as the quantitative basis (Sec. 5.1c) and weights it by an
HVS model (refs. [6][9]).  The resulting scalar is reported as a percentage
("effective distortion rate of 5%", abstract).

This module defines that measure — :func:`effective_distortion` — and a small
registry of alternative measures (:func:`get_measure`) so the distortion
characteristic curve and the ablation benchmarks can swap the basis without
touching the pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.imaging.image import Image
from repro.quality.hvs import HVSModel
from repro.quality.metrics import (
    contrast_fidelity,
    histogram_l1_distance,
    rmse,
    saturation_percentage,
)
from repro.quality.ssim import ssim_map
from repro.quality.uqi import uqi_components_map, uqi_map

__all__ = [
    "effective_distortion",
    "DistortionMeasure",
    "get_measure",
    "available_measures",
    "register_measure",
]

#: A distortion measure maps (original, transformed) to a percentage in
#: ``[0, 100]`` where 0 means "indistinguishable" and larger means worse.
DistortionMeasure = Callable[[Image, Image], float]


def _windowed_weights(weights: np.ndarray, window: int) -> np.ndarray:
    """Down-sample a per-pixel weight map to the per-window quality grid.

    The UQI/SSIM maps are defined on valid sliding windows; each window is
    weighted by the per-pixel HVS weight at its top-left anchor averaged over
    the window extent (a cheap but adequate pooling).
    """
    out_h = weights.shape[0] - window + 1
    out_w = weights.shape[1] - window + 1
    padded = np.zeros((weights.shape[0] + 1, weights.shape[1] + 1))
    padded[1:, 1:] = np.cumsum(np.cumsum(weights, axis=0), axis=1)
    sums = (
        padded[window:, window:]
        - padded[:-window, window:]
        - padded[window:, :-window]
        + padded[:-window, :-window]
    )
    return sums[:out_h, :out_w] / float(window * window)


#: Default adaptation exponents of the effective-distortion measure: how much
#: of a *global* luminance / contrast change still registers as distortion
#: after the human visual system has adapted to it.  0 would mean full
#: adaptation (only structural loss counts), 1 would mean no adaptation (the
#: raw Wang-Bovik factor).  The defaults follow the paper's premise that
#: brightness/contrast remapping is largely invisible while detail loss is
#: not, and they place the distortion magnitudes in the range the paper
#: reports (a few percent at dynamic range 220, tens of percent at 50).
LUMINANCE_ADAPTATION_EXPONENT = 0.15
CONTRAST_LOSS_EXPONENT = 0.40


def effective_distortion(original: Image, transformed: Image,
                         window: int = 8,
                         hvs_model: HVSModel | None = None,
                         luminance_exponent: float = LUMINANCE_ADAPTATION_EXPONENT,
                         contrast_loss_exponent: float = CONTRAST_LOSS_EXPONENT,
                         ) -> float:
    """The paper's distortion rate, in percent.

    The measure combines "the mathematical difference between pixel values"
    (the Wang-Bovik UQI factors) with "a model of the human visual system"
    (Sec. 2) in three ways:

    1. **Structure first.**  The UQI of every sliding window is decomposed
       into correlation (structure), luminance and contrast factors.  The
       correlation factor — whether the local detail survives at all — is
       charged in full: grayscale-level collapse, flat-band clipping and
       saturation destroy it.
    2. **Adaptation.**  The eye adapts to smooth global luminance and
       contrast remapping — which is exactly what a monotone
       backlight-compensation transform produces, and what a display's own
       brightness/contrast controls change — so the luminance factor enters
       with a small exponent, and the contrast factor is charged only where
       local contrast is *lost* (``sigma_out < sigma_in``); pure contrast
       *enhancement* (what histogram equalization does in densely populated
       grayscale regions) is treated as visually benign.
    3. **Visibility weighting.**  Every window is weighted by the HVS
       visibility of its neighbourhood in the *original* image (Weber
       luminance adaptation + texture masking): errors in dark, flat regions
       count more than errors in bright or busy regions.

    The weighted mean quality ``Q_w`` is reported as ``100 * (1 - Q_w)``
    percent.

    Returns
    -------
    float
        Distortion rate; 0 for identical images, a few percent for mild
        dynamic-range compression, tens of percent when most grayscale
        levels have collapsed.
    """
    if not 0.0 <= luminance_exponent <= 1.0:
        raise ValueError("luminance_exponent must be in [0, 1]")
    if not 0.0 <= contrast_loss_exponent <= 1.0:
        raise ValueError("contrast_loss_exponent must be in [0, 1]")
    correlation, luminance, contrast = uqi_components_map(
        original, transformed, window=window)
    structure = np.clip(correlation, 0.0, 1.0)
    luminance = np.clip(luminance, 0.0, 1.0) ** luminance_exponent

    # Contrast is only charged where it was lost.  The Wang-Bovik contrast
    # factor 2*sx*sy/(sx^2+sy^2) is symmetric in gain and loss, so detect
    # loss separately: wherever the transformed window is *more* contrasty
    # than the original the factor is forced to 1 (full adaptation).
    contrast = np.clip(contrast, 0.0, 1.0)
    variance_gain = _local_variance_gain(original, transformed, window)
    contrast = np.where(variance_gain >= 1.0, 1.0, contrast)
    contrast = contrast ** contrast_loss_exponent

    quality = structure * luminance * contrast

    weights = (hvs_model or HVSModel()).weights(original)
    pooled_weights = _windowed_weights(weights, window)
    weighted_quality = float(
        np.sum(quality * pooled_weights) / np.sum(pooled_weights)
    )
    return max(0.0, 100.0 * (1.0 - weighted_quality))


def _local_variance_gain(original: Image, transformed: Image,
                         window: int) -> np.ndarray:
    """Per-window ratio of transformed to original pixel variance.

    Values >= 1 mean the transformation locally *increased* contrast
    (enhancement); values < 1 mean contrast was lost.  Flat original windows
    report a gain of 1 (nothing to lose).
    """
    reference = original.to_grayscale().as_float()
    candidate = transformed.to_grayscale().as_float()
    n = float(window * window)

    def _window_variance(values: np.ndarray) -> np.ndarray:
        padded = np.zeros((values.shape[0] + 1, values.shape[1] + 1))
        padded[1:, 1:] = np.cumsum(np.cumsum(values, axis=0), axis=1)
        sums = (padded[window:, window:] - padded[:-window, window:]
                - padded[window:, :-window] + padded[:-window, :-window])
        padded_sq = np.zeros((values.shape[0] + 1, values.shape[1] + 1))
        padded_sq[1:, 1:] = np.cumsum(np.cumsum(values * values, axis=0), axis=1)
        sums_sq = (padded_sq[window:, window:] - padded_sq[:-window, window:]
                   - padded_sq[window:, :-window] + padded_sq[:-window, :-window])
        return np.maximum(sums_sq / n - (sums / n) ** 2, 0.0)

    var_x = _window_variance(reference)
    var_y = _window_variance(candidate)
    gain = np.ones_like(var_x)
    nonzero = var_x > 1e-12
    gain[nonzero] = var_y[nonzero] / var_x[nonzero]
    return gain


def _uqi_distortion(original: Image, transformed: Image) -> float:
    """Unweighted UQI distortion: ``100 * (1 - mean Q)``."""
    return max(0.0, 100.0 * (1.0 - float(np.mean(uqi_map(original, transformed)))))


def _ssim_distortion(original: Image, transformed: Image) -> float:
    """SSIM distortion: ``100 * (1 - mean SSIM)``."""
    return max(0.0, 100.0 * (1.0 - float(np.mean(ssim_map(original, transformed)))))


def _rmse_distortion(original: Image, transformed: Image) -> float:
    """RMSE of normalized pixel values expressed as a percentage."""
    return 100.0 * rmse(original, transformed)


def _saturation_distortion(original: Image, transformed: Image) -> float:
    """Saturated-pixel percentage (the measure of ref. [4])."""
    return saturation_percentage(original, transformed)


def _contrast_distortion(original: Image, transformed: Image) -> float:
    """Contrast-infidelity percentage (the complement of ref. [5]'s measure)."""
    return 100.0 * (1.0 - contrast_fidelity(original, transformed, tolerance=1))


def _histogram_distortion(original: Image, transformed: Image) -> float:
    """Histogram L1 distance expressed as a percentage."""
    return 100.0 * histogram_l1_distance(original, transformed)


_MEASURES: Dict[str, DistortionMeasure] = {
    "effective": effective_distortion,
    "uqi": _uqi_distortion,
    "ssim": _ssim_distortion,
    "rmse": _rmse_distortion,
    "saturation": _saturation_distortion,
    "contrast": _contrast_distortion,
    "histogram": _histogram_distortion,
}


def available_measures() -> list[str]:
    """Names of the registered distortion measures."""
    return sorted(_MEASURES)


def get_measure(name: str) -> DistortionMeasure:
    """Look up a distortion measure by name.

    ``"effective"`` is the paper's measure; the others exist for the
    baseline policies and the ablation benchmarks.
    """
    try:
        return _MEASURES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown distortion measure {name!r}; available: "
            f"{available_measures()}"
        ) from None


def register_measure(name: str, measure: DistortionMeasure) -> None:
    """Register a custom distortion measure under ``name``.

    Allows downstream users to plug their own perceptual metric into the
    distortion characteristic curve and the HEBS pipeline.
    """
    key = name.lower()
    if key in _MEASURES:
        raise ValueError(f"measure {name!r} is already registered")
    _MEASURES[key] = measure
