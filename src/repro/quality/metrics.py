"""Pixel-difference and histogram-difference distortion measures.

These are the "naive" measures the paper contrasts its HVS-aware measure
with (Sec. 2): root-mean-squared pixel error, the saturated-pixel percentage
of ref. [4], the contrast-fidelity measure of ref. [5], and the integral of
the absolute histogram difference.  They are all used in the ablation
benchmark (``abl-dist`` in DESIGN.md) and by the baseline dimming policies.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "mse",
    "rmse",
    "psnr",
    "mean_absolute_error",
    "saturation_percentage",
    "contrast_fidelity",
    "histogram_l1_distance",
]


def _as_float_pair(original: Image, transformed: Image) -> tuple[np.ndarray, np.ndarray]:
    """Validate shapes and return both images as normalized float arrays."""
    if original.shape != transformed.shape:
        raise ValueError(
            f"image shapes differ: {original.shape} vs {transformed.shape}"
        )
    return original.as_float(), transformed.as_float()


def mse(original: Image, transformed: Image) -> float:
    """Mean squared error between normalized pixel values (in ``[0, 1]``)."""
    reference, candidate = _as_float_pair(original, transformed)
    return float(np.mean((reference - candidate) ** 2))


def rmse(original: Image, transformed: Image) -> float:
    """Root mean squared error between normalized pixel values."""
    return float(np.sqrt(mse(original, transformed)))


def mean_absolute_error(original: Image, transformed: Image) -> float:
    """Mean absolute error between normalized pixel values."""
    reference, candidate = _as_float_pair(original, transformed)
    return float(np.mean(np.abs(reference - candidate)))


def psnr(original: Image, transformed: Image) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    error = mse(original, transformed)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(1.0 / error))


def saturation_percentage(original: Image, transformed: Image) -> float:
    """Percentage of pixels whose information was lost to saturation.

    This is the distortion measure of ref. [4] ("Image distortion after
    backlight luminance dimming is evaluated by the percentage of saturated
    pixels that exceed the range of pixel values").  A pixel counts when it
    sits at an extreme of the representable range in the transformed image
    while it was strictly inside the range in the original.
    """
    if original.shape != transformed.shape:
        raise ValueError("images must have the same shape")
    max_level = transformed.max_level
    at_extreme = (transformed.pixels == 0) | (transformed.pixels == max_level)
    was_interior = (original.pixels > 0) & (original.pixels < original.max_level)
    return float(100.0 * np.mean(at_extreme & was_interior))


def contrast_fidelity(original: Image, transformed: Image,
                      tolerance: int = 0) -> float:
    """Fraction of pixel-value levels whose contrast is preserved.

    Ref. [5] proposes "contrast fidelity" as the distortion measure for
    concurrent brightness/contrast scaling: the fraction of pixels whose
    *relative* grayscale differences survive the transformation.  We measure
    it as the fraction of pixels whose local horizontal and vertical contrast
    (first differences) is preserved to within ``tolerance`` levels after
    renormalizing the transformed image back to the original range.
    """
    if original.shape != transformed.shape:
        raise ValueError("images must have the same shape")
    if not original.is_grayscale or not transformed.is_grayscale:
        original = original.to_grayscale()
        transformed = transformed.to_grayscale()

    reference = original.pixels.astype(np.int32)
    candidate = transformed.pixels.astype(np.int32)

    # horizontal and vertical first differences (local contrast)
    ref_dx = np.diff(reference, axis=1)
    ref_dy = np.diff(reference, axis=0)
    cand_dx = np.diff(candidate, axis=1)
    cand_dy = np.diff(candidate, axis=0)

    preserved_dx = np.abs(ref_dx - cand_dx) <= tolerance
    preserved_dy = np.abs(ref_dy - cand_dy) <= tolerance
    total = preserved_dx.size + preserved_dy.size
    if total == 0:
        return 1.0
    return float((preserved_dx.sum() + preserved_dy.sum()) / total)


def histogram_l1_distance(original: Image, transformed: Image) -> float:
    """Integral of the absolute difference of the two image histograms.

    This is the "compare the images as a whole" measure the paper mentions
    (Sec. 2) and dismisses as perceptually inadequate.  The result is
    normalized to ``[0, 1]``: 0 for identical histograms, 1 when the
    histograms do not overlap at all.
    """
    if original.bit_depth != transformed.bit_depth:
        raise ValueError("images must share a bit depth for histogram distance")
    levels = original.levels
    hist_a = np.bincount(original.pixels.reshape(-1), minlength=levels)
    hist_b = np.bincount(transformed.pixels.reshape(-1), minlength=levels)
    hist_a = hist_a / hist_a.sum()
    hist_b = hist_b / hist_b.sum()
    return float(0.5 * np.abs(hist_a - hist_b).sum())
