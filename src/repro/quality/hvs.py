"""A lightweight human-visual-system (HVS) weighting model.

The paper's distortion definition "takes into account both the pixel value
differences and a model of the human visual system" (Sec. 1), referencing the
HVS treatment of Pratt's *Digital Image Processing* (ref. [9]) and the
transform-then-compare methodology of ref. [6].  We implement the two
first-order HVS effects that matter for backlight scaling:

* **Luminance adaptation (Weber's law).**  The eye's sensitivity to an
  intensity error is roughly inversely proportional to the local background
  luminance: a 5-level error in a dark region is far more visible than in a
  bright region.  Backlight dimming primarily darkens bright regions, so a
  correct measure must not over-penalize errors there.
* **Contrast (activity) masking.**  Errors are less visible in busy, highly
  textured regions than in flat regions.  Histogram equalization re-bins
  intensity levels, which perturbs flat regions the least and textured
  regions the most — masking partially hides the latter.

:func:`perceptual_weight_map` combines both effects into a per-pixel weight
in ``(0, 1]`` that the effective-distortion measure
(:mod:`repro.quality.distortion`) uses to weight the local quality map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image

__all__ = ["HVSModel", "perceptual_weight_map"]


def _box_blur(values: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur with edge replication (no external dependencies)."""
    if radius <= 0:
        return values.copy()
    kernel = 2 * radius + 1
    padded = np.pad(values, radius, mode="edge")
    # horizontal pass via cumulative sums
    csum = np.cumsum(padded, axis=1)
    horizontal = np.empty_like(values, dtype=np.float64)
    horizontal = (
        csum[:, kernel - 1:]
        - np.concatenate(
            [np.zeros((csum.shape[0], 1)), csum[:, :-kernel]], axis=1
        )
    ) / kernel
    horizontal = horizontal[radius:-radius, :] if radius else horizontal
    # vertical pass
    padded_v = np.pad(horizontal, ((radius, radius), (0, 0)), mode="edge")
    csum_v = np.cumsum(padded_v, axis=0)
    vertical = (
        csum_v[kernel - 1:, :]
        - np.concatenate(
            [np.zeros((1, csum_v.shape[1])), csum_v[:-kernel, :]], axis=0
        )
    ) / kernel
    return vertical


@dataclass(frozen=True)
class HVSModel:
    """Parameters of the perceptual weighting model.

    Parameters
    ----------
    adaptation_strength:
        How strongly the weight decays with local background luminance
        (Weber adaptation).  0 disables luminance adaptation.
    masking_strength:
        How strongly the weight decays with local activity (texture
        masking).  0 disables contrast masking.
    neighborhood_radius:
        Radius (in pixels) of the box window used to estimate the local
        background luminance and local activity.
    floor:
        Lower bound of the weight so no region is ever considered entirely
        invisible.
    """

    adaptation_strength: float = 0.7
    masking_strength: float = 2.0
    neighborhood_radius: int = 4
    floor: float = 0.2

    def __post_init__(self) -> None:
        if self.adaptation_strength < 0 or self.masking_strength < 0:
            raise ValueError("model strengths must be non-negative")
        if self.neighborhood_radius < 1:
            raise ValueError("neighborhood_radius must be at least 1")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")

    # ------------------------------------------------------------------ #
    def background_luminance(self, image: Image) -> np.ndarray:
        """Local background luminance estimate in ``[0, 1]`` per pixel."""
        values = image.to_grayscale().as_float()
        return _box_blur(values, self.neighborhood_radius)

    def local_activity(self, image: Image) -> np.ndarray:
        """Local activity (texture) estimate in ``[0, 1]`` per pixel.

        Measured as the locally averaged absolute deviation from the local
        mean — a cheap stand-in for local contrast energy.
        """
        values = image.to_grayscale().as_float()
        background = _box_blur(values, self.neighborhood_radius)
        deviation = np.abs(values - background)
        return np.clip(_box_blur(deviation, self.neighborhood_radius) * 4.0,
                       0.0, 1.0)

    def weights(self, image: Image) -> np.ndarray:
        """Per-pixel perceptual weight in ``[floor, 1]``.

        High weight means an error at that pixel is highly visible (dark,
        flat regions); low weight means it is partially masked (bright or
        busy regions).
        """
        luminance = self.background_luminance(image)
        activity = self.local_activity(image)
        adaptation = 1.0 / (1.0 + self.adaptation_strength * luminance)
        masking = 1.0 / (1.0 + self.masking_strength * activity)
        weights = adaptation * masking
        # normalize so the most visible region has weight exactly 1
        weights = weights / weights.max()
        return np.clip(weights, self.floor, 1.0)


def perceptual_weight_map(image: Image,
                          model: HVSModel | None = None) -> np.ndarray:
    """Convenience wrapper returning :meth:`HVSModel.weights` for ``image``."""
    return (model or HVSModel()).weights(image)
