"""Universal image Quality Index (Wang & Bovik, 2002) — the paper's ref. [8].

The paper adopts the UQI as the distortion basis for its distortion
characteristic curve (Sec. 5.1c).  The index factors image quality into three
components measured on a sliding window: loss of correlation, luminance
distortion, and contrast distortion:

    Q = [ sigma_xy / (sigma_x sigma_y) ]
        * [ 2 mean_x mean_y / (mean_x^2 + mean_y^2) ]
        * [ 2 sigma_x sigma_y / (sigma_x^2 + sigma_y^2) ]

which collapses to the single expression

    Q = 4 sigma_xy mean_x mean_y /
        ( (sigma_x^2 + sigma_y^2) (mean_x^2 + mean_y^2) )

Q lies in ``[-1, 1]`` with 1 meaning the images are identical up to the
window statistics.  Following the original paper the global index is the
average of the window indices computed on a sliding window (default 8x8).
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image

__all__ = ["universal_quality_index", "uqi_map", "uqi_components_map"]

#: Numerical guard used when both denominators vanish (flat windows).
_EPSILON = 1e-12


def _sliding_window_sums(values: np.ndarray, window: int) -> np.ndarray:
    """Sum of ``values`` over every ``window x window`` patch (valid mode).

    Implemented with a 2-D summed-area table so the whole UQI map is
    O(H*W) instead of O(H*W*window^2).
    """
    padded = np.zeros((values.shape[0] + 1, values.shape[1] + 1), dtype=np.float64)
    padded[1:, 1:] = np.cumsum(np.cumsum(values, axis=0), axis=1)
    return (
        padded[window:, window:]
        - padded[:-window, window:]
        - padded[window:, :-window]
        + padded[:-window, :-window]
    )


def uqi_map(original: Image, transformed: Image, window: int = 8) -> np.ndarray:
    """Per-window quality index map (valid windows only).

    Parameters
    ----------
    original, transformed:
        Images of identical shape.  RGB images are converted to grayscale.
    window:
        Side of the square sliding window; the original paper uses 8.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(H - window + 1, W - window + 1)`` with the local
        quality index of every window.
    """
    if original.shape != transformed.shape:
        raise ValueError(
            f"image shapes differ: {original.shape} vs {transformed.shape}"
        )
    reference = original.to_grayscale().as_float()
    candidate = transformed.to_grayscale().as_float()
    if window < 2:
        raise ValueError("window must be at least 2 pixels")
    if window > min(reference.shape):
        raise ValueError(
            f"window ({window}) larger than image ({reference.shape})"
        )

    n = float(window * window)
    sum_x = _sliding_window_sums(reference, window)
    sum_y = _sliding_window_sums(candidate, window)
    sum_xx = _sliding_window_sums(reference * reference, window)
    sum_yy = _sliding_window_sums(candidate * candidate, window)
    sum_xy = _sliding_window_sums(reference * candidate, window)

    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = sum_xx / n - mean_x**2
    var_y = sum_yy / n - mean_y**2
    cov_xy = sum_xy / n - mean_x * mean_y

    numerator = 4.0 * cov_xy * mean_x * mean_y
    denominator = (var_x + var_y) * (mean_x**2 + mean_y**2)

    quality = np.ones_like(numerator)
    # Case 1: both denominater factors are ~0 (flat and dark windows in both
    # images) -> identical statistics -> quality 1 (handled by the init).
    # Case 2: variances vanish but means do not -> only the luminance term
    # survives (the Wang-Bovik convention).
    luminance_only = (var_x + var_y < _EPSILON) & (mean_x**2 + mean_y**2 >= _EPSILON)
    quality[luminance_only] = (
        2.0 * mean_x[luminance_only] * mean_y[luminance_only]
        / (mean_x[luminance_only] ** 2 + mean_y[luminance_only] ** 2)
    )
    # Case 3: the generic expression.
    generic = denominator >= _EPSILON
    quality[generic] = numerator[generic] / denominator[generic]
    return quality


def uqi_components_map(original: Image, transformed: Image, window: int = 8
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-window UQI factors: ``(correlation, luminance, contrast)``.

    The Wang-Bovik index is the product of three factors measured on each
    sliding window:

    * **correlation** ``sigma_xy / (sigma_x sigma_y)`` — structural
      similarity; 1 when the window contents are linearly related,
    * **luminance** ``2 mu_x mu_y / (mu_x^2 + mu_y^2)`` — closeness of the
      mean intensities,
    * **contrast** ``2 sigma_x sigma_y / (sigma_x^2 + sigma_y^2)`` —
      closeness of the local contrasts.

    The decomposition is what the paper's HVS-aware "effective distortion"
    needs: the human eye largely adapts to global luminance and contrast
    changes (that is the very premise of backlight compensation), so those
    two factors are discounted while structural loss is charged in full (see
    :func:`repro.quality.distortion.effective_distortion`).

    Flat windows are handled with the Wang-Bovik conventions: if both
    windows are flat the correlation and contrast are taken as 1; if exactly
    one is flat the correlation and contrast are 0 (all structure lost).
    """
    if original.shape != transformed.shape:
        raise ValueError(
            f"image shapes differ: {original.shape} vs {transformed.shape}"
        )
    reference = original.to_grayscale().as_float()
    candidate = transformed.to_grayscale().as_float()
    if window < 2:
        raise ValueError("window must be at least 2 pixels")
    if window > min(reference.shape):
        raise ValueError(
            f"window ({window}) larger than image ({reference.shape})"
        )

    n = float(window * window)
    sum_x = _sliding_window_sums(reference, window)
    sum_y = _sliding_window_sums(candidate, window)
    sum_xx = _sliding_window_sums(reference * reference, window)
    sum_yy = _sliding_window_sums(candidate * candidate, window)
    sum_xy = _sliding_window_sums(reference * candidate, window)

    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = np.maximum(sum_xx / n - mean_x**2, 0.0)
    var_y = np.maximum(sum_yy / n - mean_y**2, 0.0)
    cov_xy = sum_xy / n - mean_x * mean_y
    std_x = np.sqrt(var_x)
    std_y = np.sqrt(var_y)

    both_flat = (var_x < _EPSILON) & (var_y < _EPSILON)
    one_flat = ((var_x < _EPSILON) ^ (var_y < _EPSILON))

    correlation = np.ones_like(mean_x)
    generic = ~both_flat & ~one_flat
    correlation[generic] = cov_xy[generic] / (std_x[generic] * std_y[generic])
    correlation[one_flat] = 0.0
    correlation = np.clip(correlation, -1.0, 1.0)

    luminance = np.ones_like(mean_x)
    lum_defined = mean_x**2 + mean_y**2 >= _EPSILON
    luminance[lum_defined] = (
        2.0 * mean_x[lum_defined] * mean_y[lum_defined]
        / (mean_x[lum_defined] ** 2 + mean_y[lum_defined] ** 2)
    )

    contrast = np.ones_like(mean_x)
    contrast[generic] = (
        2.0 * std_x[generic] * std_y[generic]
        / (var_x[generic] + var_y[generic])
    )
    contrast[one_flat] = 0.0

    return correlation, luminance, contrast


def universal_quality_index(original: Image, transformed: Image,
                            window: int = 8) -> float:
    """Global UQI: the mean of the sliding-window quality map.

    Returns a value in ``[-1, 1]``; 1 means the transformed image is
    statistically indistinguishable from the original at the window scale.
    """
    return float(np.mean(uqi_map(original, transformed, window=window)))
