"""Image quality and distortion measures.

The paper's central claim is that prior backlight-scaling work overestimates
image distortion by counting saturated pixels [4] or preserved pixels [5],
and that a "correct measure of distortion should appropriately combine the
mathematical difference between pixel values (or histograms) and the
characteristics of the human visual system" (Sec. 2).  This package provides
all the measures needed to reproduce that argument:

* :mod:`~repro.quality.metrics` — pixel-difference measures (MSE, RMSE,
  PSNR), the saturation-percentage measure of ref. [4], the contrast-fidelity
  measure of ref. [5], and histogram distances.
* :mod:`~repro.quality.uqi` — the Universal image Quality Index of
  Wang & Bovik (ref. [8]), the paper's adopted distortion basis.
* :mod:`~repro.quality.ssim` — the Structural SIMilarity index (ref. [6]),
  used as an alternative measure in the ablations.
* :mod:`~repro.quality.hvs` — a simple human-visual-system weighting model
  (luminance adaptation + contrast sensitivity) following ref. [9].
* :mod:`~repro.quality.distortion` — the paper's *effective distortion*:
  an HVS-weighted UQI reported as a percentage.
"""

from repro.quality.metrics import (
    mse,
    rmse,
    psnr,
    mean_absolute_error,
    saturation_percentage,
    contrast_fidelity,
    histogram_l1_distance,
)
from repro.quality.uqi import universal_quality_index, uqi_map
from repro.quality.ssim import ssim, ssim_map
from repro.quality.hvs import HVSModel, perceptual_weight_map
from repro.quality.distortion import (
    effective_distortion,
    DistortionMeasure,
    get_measure,
    available_measures,
)

__all__ = [
    "mse",
    "rmse",
    "psnr",
    "mean_absolute_error",
    "saturation_percentage",
    "contrast_fidelity",
    "histogram_l1_distance",
    "universal_quality_index",
    "uqi_map",
    "ssim",
    "ssim_map",
    "HVSModel",
    "perceptual_weight_map",
    "effective_distortion",
    "DistortionMeasure",
    "get_measure",
    "available_measures",
]
