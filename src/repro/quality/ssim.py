"""Structural SIMilarity index (Wang, Bovik, Sheikh, Simoncelli 2004).

The paper cites SSIM (its ref. [6]) as the state-of-the-art perceptual
quality measure and names "alternative distortion measures" as future work
(Sec. 6).  We implement it so the ablation benchmark can swap the distortion
basis of the characteristic curve between UQI, SSIM and the naive measures.

SSIM generalizes the UQI by adding the stabilizing constants C1 and C2:

    SSIM = (2 mu_x mu_y + C1)(2 sigma_xy + C2) /
           ((mu_x^2 + mu_y^2 + C1)(sigma_x^2 + sigma_y^2 + C2))

computed on a sliding window (the reference implementation uses a Gaussian
window; we use the same uniform window as our UQI so the two are directly
comparable, which is the configuration the ablation cares about).
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image
from repro.quality.uqi import _sliding_window_sums

__all__ = ["ssim", "ssim_map"]


def ssim_map(original: Image, transformed: Image, window: int = 8,
             k1: float = 0.01, k2: float = 0.03) -> np.ndarray:
    """Per-window SSIM map (valid windows only).

    Parameters
    ----------
    original, transformed:
        Images of identical shape; RGB inputs are converted to grayscale.
    window:
        Side of the square sliding window.
    k1, k2:
        Stabilizing constants of the SSIM definition (defaults from the
        original paper); the dynamic range L is 1 because we operate on
        normalized pixel values.
    """
    if original.shape != transformed.shape:
        raise ValueError(
            f"image shapes differ: {original.shape} vs {transformed.shape}"
        )
    if window < 2:
        raise ValueError("window must be at least 2 pixels")
    reference = original.to_grayscale().as_float()
    candidate = transformed.to_grayscale().as_float()
    if window > min(reference.shape):
        raise ValueError(
            f"window ({window}) larger than image ({reference.shape})"
        )

    c1 = (k1 * 1.0) ** 2
    c2 = (k2 * 1.0) ** 2
    n = float(window * window)

    sum_x = _sliding_window_sums(reference, window)
    sum_y = _sliding_window_sums(candidate, window)
    sum_xx = _sliding_window_sums(reference * reference, window)
    sum_yy = _sliding_window_sums(candidate * candidate, window)
    sum_xy = _sliding_window_sums(reference * candidate, window)

    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = sum_xx / n - mean_x**2
    var_y = sum_yy / n - mean_y**2
    cov_xy = sum_xy / n - mean_x * mean_y

    numerator = (2.0 * mean_x * mean_y + c1) * (2.0 * cov_xy + c2)
    denominator = (mean_x**2 + mean_y**2 + c1) * (var_x + var_y + c2)
    return numerator / denominator


def ssim(original: Image, transformed: Image, window: int = 8,
         k1: float = 0.01, k2: float = 0.03) -> float:
    """Global SSIM: the mean of the sliding-window SSIM map (in ``[-1, 1]``)."""
    return float(np.mean(ssim_map(original, transformed, window=window,
                                  k1=k1, k2=k2)))
