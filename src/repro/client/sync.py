"""Blocking TCP client for the network serving API.

:class:`Client` mirrors the :class:`~repro.api.engine.Engine` facade over a
socket: :meth:`Client.solve` ships a histogram and gets back an
image-independent solution (the paper-native fast path — O(histogram)
bandwidth), :meth:`Client.process` ships a full image for server-side
application and accounting, and :meth:`Client.open_session` opens a
push-based :class:`RemoteSession` matching the
:class:`~repro.api.session.StreamSession` surface.

Connection care is built in: the client connects lazily, performs the
protocol handshake, and on a lost connection reconnects with exponential
back-off and retries the (idempotent) request.  A typed ``overloaded``
error honors the server's ``retry_after`` hint before retrying; the other
error frames raise the same exception types in-process callers see
(:class:`~repro.serve.coalescer.ServerOverloadedError`,
:class:`~repro.serve.coalescer.ServerClosedError`,
:class:`~repro.api.session.SessionClosedError`, :class:`ValueError`).

A :class:`Client` is **not** thread-safe — it serializes one request at a
time on one socket.  Use one client per thread (see
:class:`repro.client.adapter.RemoteServerAdapter`) or the asyncio
:class:`~repro.client.aio.AsyncClient`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.api.session import SessionClosedError
from repro.client.backoff import Backoff
from repro.core.histogram import Histogram
from repro.core.transforms import PixelTransform
from repro.imaging.image import Image
from repro.serve import protocol
from repro.serve.coalescer import ServerOverloadedError
from repro.serve.net import DEFAULT_PORT
from repro.serve.stats import ServerStats

__all__ = ["Client", "RemoteSession", "LocalCompensation", "parse_address"]


def parse_address(address: str, default_port: int = DEFAULT_PORT,
                  ) -> tuple[str, int]:
    """Split ``"host:port"`` (or bare ``"host"``) into ``(host, port)``.

    IPv6 literals use the usual bracket form when they carry a port
    (``"[::1]:7095"``); a bare multi-colon literal (``"::1"``) is taken as
    a host with the default port.
    """
    text = address.strip()
    if not text:
        raise ValueError("address must not be empty")
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if not bracket or not host:
            raise ValueError(f"unclosed IPv6 bracket in address {address!r}")
        if not rest:
            return host, default_port
        if not rest.startswith(":"):
            raise ValueError(f"malformed address {address!r}")
        return host, _parse_port(rest[1:], address)
    if text.count(":") == 1:
        host, _, port_text = text.partition(":")
        return host or "127.0.0.1", _parse_port(port_text, address)
    # zero colons: bare hostname; several: a bare IPv6 literal, no port
    return text, default_port


def _parse_port(port_text: str, address: str) -> int:
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in address {address!r}")
    return port


@dataclass(frozen=True)
class LocalCompensation:
    """Outcome of :meth:`Client.compensate`: a remote histogram-only solve
    replayed onto the local pixels.

    Only the histogram crossed the wire; ``output`` was produced locally by
    applying the solution's LUT.  For the histogram-driven techniques
    (``hebs``, the DLS variants, ``cbcs``) it is bit-identical to what the
    server would have produced from the full image; for ``hebs-adaptive``
    the server-side bisection measured distortion on a histogram-realizing
    stand-in, so its operating point approximates (rather than reproduces)
    a full-image solve — see :meth:`Engine.solve
    <repro.api.engine.Engine.solve>`.
    """

    solution: CompensationSolution
    original: Image
    output: Image

    @property
    def backlight_factor(self) -> float:
        """The dimming factor ``beta`` to program."""
        return self.solution.backlight_factor

    @property
    def transform(self) -> PixelTransform:
        """The pixel transformation that produced ``output``."""
        return self.solution.transform


class RemoteSession:
    """A server-side stream session driven over one client connection.

    Matches the push-based :class:`~repro.api.session.StreamSession`
    surface: :meth:`submit` takes one frame and returns its
    :class:`~repro.api.types.StreamFrameResult`; sessions are context
    managers and :meth:`close` is idempotent.  The temporal state
    (smoother, scene detector, fast path) lives server-side; per-session
    frame order is the submission order on this connection.

    A lost connection cannot be resumed — session state dies with the
    socket (the server closes it on disconnect), so session requests never
    auto-reconnect: they raise :class:`ConnectionError` instead.
    """

    def __init__(self, client: "Client", session_id: str,
                 max_distortion: float) -> None:
        self._client = client
        self._id = session_id
        self._max_distortion = float(max_distortion)
        self._closed = False

    @property
    def id(self) -> str:
        """The server-assigned session identifier (the stats key)."""
        return self._id

    @property
    def max_distortion(self) -> float:
        return self._max_distortion

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, frame: Image) -> StreamFrameResult:
        """Push one frame through the remote session and return its
        outcome.  Raises
        :class:`~repro.api.session.SessionClosedError` after :meth:`close`
        and :class:`~repro.serve.coalescer.ServerOverloadedError` when the
        session's server-side frame queue is full (honoring ``retry_after``
        when the client retries overloads)."""
        if self._closed:
            raise SessionClosedError(
                f"remote session {self._id} has been closed")
        response = self._client._request(
            lambda request_id: protocol.feed_request(request_id, self._id,
                                                     frame),
            expected="frame", reconnect=False)
        return protocol.stream_frame_from_wire(response["outcome"])

    def close(self) -> None:
        """Close the remote session (idempotent, best-effort on a dead
        connection — the server also closes it on disconnect)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._client._request(
                lambda request_id: protocol.close_session_request(
                    request_id, self._id),
                expected="session_closed", reconnect=False)
        except (ConnectionError, OSError):
            pass    # the disconnect already closed it server-side

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Client:
    """Synchronous client for a :class:`~repro.serve.net.NetworkServer`.

    Parameters
    ----------
    host, port:
        Server address (see also :func:`parse_address` /
        :meth:`Client.at`).
    timeout:
        Socket timeout per send/receive, in seconds.  Bounds how long one
        RPC may take end to end.
    retries:
        How many times a failed attempt is retried — after a connection
        error (with exponential back-off) or an ``overloaded`` error frame
        (honoring the server's ``retry_after`` hint).  ``0`` disables
        retrying.
    backoff, max_backoff:
        Reconnect back-off: attempt ``n`` sleeps at most
        ``min(backoff * 2**n, max_backoff)`` seconds, scaled down by
        ``jitter`` (see :class:`~repro.client.backoff.Backoff`).
    jitter, rng:
        Randomized fraction of each reconnect delay (clients dropped by
        the same restart must not return in lockstep) and an injectable
        random source for deterministic tests.  The server-directed
        ``retry_after`` hint is never jittered.
    retry_overloaded:
        Whether an ``overloaded`` error frame is retried after its
        ``retry_after`` hint (up to ``retries`` attempts) instead of
        raising immediately.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff: float = 0.1, max_backoff: float = 2.0,
                 jitter: float = 0.5, rng=None,
                 retry_overloaded: bool = True) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.retry_overloaded = bool(retry_overloaded)
        self._backoff = Backoff(backoff, max_backoff, jitter=jitter, rng=rng)
        self._sock: socket.socket | None = None
        self._next_id = 0

    @classmethod
    def at(cls, address: str, **options) -> "Client":
        """Build a client from a ``"host:port"`` string."""
        host, port = parse_address(address)
        return cls(host=host, port=port, **options)

    # ------------------------------------------------------------------ #
    # the Engine-facade mirror
    # ------------------------------------------------------------------ #
    def solve(self, source: Image | Histogram, max_distortion: float,
              algorithm: str | None = None) -> CompensationSolution:
        """Histogram-only solve: ship O(histogram) bytes, get back the
        image-independent solution (transformation, backlight factor,
        driver program) to apply locally.  Mirrors
        :meth:`Engine.solve <repro.api.engine.Engine.solve>`."""
        response = self._request(
            lambda request_id: protocol.solve_request(
                request_id, source, max_distortion, algorithm=algorithm),
            expected="solution")
        return protocol.solution_from_wire(response["solution"])

    def compensate(self, image: Image, max_distortion: float,
                   algorithm: str | None = None) -> LocalCompensation:
        """Solve remotely on the image's histogram, apply locally.

        The end-to-end fast path of the paper's Fig. 4 across a network:
        the pixels never leave this process, and for the histogram-driven
        techniques (``hebs``, DLS, ``cbcs``) the locally produced output is
        bit-identical to a server-side :meth:`process <Client.process>` of
        the same image (``hebs-adaptive`` approximates its per-image
        bisection — see :class:`LocalCompensation`).
        """
        grayscale = image.to_grayscale()
        solution = self.solve(Histogram.of_image(grayscale), max_distortion,
                              algorithm=algorithm)
        return LocalCompensation(solution=solution, original=grayscale,
                                 output=solution.transform.apply(grayscale))

    def process(self, image: Image, max_distortion: float,
                algorithm: str | None = None) -> CompensationResult:
        """Full-image request: the server applies the solution and accounts
        distortion and power.  Mirrors
        :meth:`Engine.process <repro.api.engine.Engine.process>`.

        The request is stamped with the content's
        :func:`~repro.serve.protocol.routing_key`, so a cluster router
        places it on the shard whose cache holds its solution without
        decoding the pixels."""
        routing = protocol.routing_key(image)
        response = self._request(
            lambda request_id: protocol.process_request(
                request_id, image, max_distortion, algorithm=algorithm,
                routing=routing),
            expected="result")
        return protocol.result_from_wire(response["result"])

    def open_session(self, max_distortion: float,
                     algorithm: str | None = None,
                     **options: Any) -> RemoteSession:
        """Open a push-based stream session on the server.  ``options``
        are the JSON-representable keyword options of
        :meth:`Engine.open_session <repro.api.engine.Engine.open_session>`
        (``scene_gated_solve=``, ``snap_on_scene_change=``,
        ``stability_bins=``, ...)."""
        response = self._request(
            lambda request_id: protocol.open_session_request(
                request_id, max_distortion, algorithm=algorithm,
                options=options),
            expected="session")
        return RemoteSession(self, str(response["session_id"]),
                             float(max_distortion))

    def stats(self) -> ServerStats:
        """The server's live statistics snapshot."""
        response = self._request(protocol.stats_request, expected="stats")
        return protocol.server_stats_from_wire(response["stats"])

    def stats_dict(self) -> Mapping[str, Any]:
        """The raw JSON payload of the ``stats`` RPC (the server's
        ``as_dict`` view, latencies in ms)."""
        response = self._request(protocol.stats_request, expected="stats")
        return response["stats"]

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def connected(self) -> bool:
        """Whether a handshaken socket is currently held."""
        return self._sock is not None

    def connect(self) -> None:
        """Connect and handshake now (otherwise done lazily)."""
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            sock.sendall(protocol.encode_frame(protocol.hello_frame()))
            hello = self._recv_frame(sock)
            if hello.get("type") == "error":
                raise protocol.exception_from_error(hello)
            if (hello.get("type") != "hello"
                    or hello.get("version") != protocol.PROTOCOL_VERSION):
                raise protocol.ProtocolError(
                    f"server answered the handshake with "
                    f"{hello.get('type')!r} v{hello.get('version')!r}")
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def close(self) -> None:
        """Drop the connection (idempotent); the server closes any
        sessions this connection owned."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _recv_exactly(self, sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("the server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self, sock: socket.socket) -> dict:
        header = self._recv_exactly(sock, protocol.HEADER_BYTES)
        payload = self._recv_exactly(sock, protocol.frame_length(header))
        return protocol.decode_frame(payload)

    def _request(self, build, expected: str, reconnect: bool = True) -> dict:
        """One request/response round trip with the retry policy.

        ``build`` is called with a fresh request id for every attempt (so a
        retried request is distinguishable server-side).  ``reconnect``
        disables the reconnect-and-retry path for requests that are not
        safe to replay on a new connection (session traffic — the state
        died with the old socket).
        """
        attempt = 0
        while True:
            self._next_id += 1
            message = build(self._next_id)
            try:
                self.connect()
                assert self._sock is not None
                self._sock.sendall(protocol.encode_frame(message))
                response = self._recv_frame(self._sock)
            except (ConnectionError, OSError, EOFError) as exc:
                self.close()
                if not reconnect or attempt >= self.retries:
                    raise ConnectionError(
                        f"lost connection to {self.host}:{self.port} "
                        f"({exc})") from exc
                time.sleep(self._backoff.delay(attempt))
                attempt += 1
                continue
            if response.get("type") == "error":
                error = protocol.exception_from_error(response)
                if (isinstance(error, ServerOverloadedError)
                        and self.retry_overloaded
                        and attempt < self.retries):
                    delay = error.retry_after_seconds
                    if delay is None:
                        delay = self.backoff
                    time.sleep(min(delay, self.max_backoff))
                    attempt += 1
                    continue
                raise error
            if response.get("id") != message["id"]:
                self.close()    # the stream is desynchronized; start clean
                raise protocol.ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {message['id']!r}")
            if response.get("type") != expected:
                raise protocol.ProtocolError(
                    f"expected a {expected!r} response, got "
                    f"{response.get('type')!r}")
            return response
