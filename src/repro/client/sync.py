"""Blocking TCP client for the network serving API.

:class:`Client` mirrors the :class:`~repro.api.engine.Engine` facade over a
socket: :meth:`Client.solve` ships a histogram and gets back an
image-independent solution (the paper-native fast path — O(histogram)
bandwidth), :meth:`Client.process` ships a full image for server-side
application and accounting, and :meth:`Client.open_session` opens a
push-based :class:`RemoteSession` matching the
:class:`~repro.api.session.StreamSession` surface.

Connection care is built in: the client connects lazily, performs the
protocol handshake, and on a lost connection reconnects with exponential
back-off and retries the (idempotent) request.  A typed ``overloaded``
error honors the server's ``retry_after`` hint before retrying; the other
error frames raise the same exception types in-process callers see
(:class:`~repro.serve.coalescer.ServerOverloadedError`,
:class:`~repro.serve.coalescer.ServerClosedError`,
:class:`~repro.api.session.SessionClosedError`, :class:`ValueError`).

**Protocol v2.**  The client advertises ``max_version`` in its hello and
records the server's pick as :attr:`Client.protocol_version` (also shown
in ``repr``).  On a v2 connection requests and responses travel as binary
zero-copy frames (:mod:`repro.serve.wire2`); against an older server the
same client falls back to v1 JSON transparently.  :meth:`Client.pipeline`
opens a batch context with *multiple requests in flight per socket*,
correlated by id; ``shm=True`` additionally offers the same-host
shared-memory lane of :mod:`repro.serve.shm` for image payloads.

A :class:`Client` is **not** thread-safe — outside a pipeline it
serializes one request at a time on one socket.  Use one client per
thread (see :class:`repro.client.adapter.RemoteServerAdapter`) or the
asyncio :class:`~repro.client.aio.AsyncClient`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.api.session import SessionClosedError
from repro.client.backoff import Backoff
from repro.core.histogram import Histogram
from repro.core.transforms import PixelTransform
from repro.imaging.image import Image
from repro.serve import protocol, wire2
from repro.serve import shm as shm_lane
from repro.serve.coalescer import ServerOverloadedError
from repro.serve.net import DEFAULT_PORT
from repro.serve.stats import ServerStats

__all__ = ["Client", "ClientPipeline", "PendingReply", "RemoteSession",
           "LocalCompensation", "parse_address"]


def parse_address(address: str, default_port: int = DEFAULT_PORT,
                  ) -> tuple[str, int]:
    """Split ``"host:port"`` (or bare ``"host"``) into ``(host, port)``.

    IPv6 literals use the usual bracket form when they carry a port
    (``"[::1]:7095"``); a bare multi-colon literal (``"::1"``) is taken as
    a host with the default port.
    """
    text = address.strip()
    if not text:
        raise ValueError("address must not be empty")
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if not bracket or not host:
            raise ValueError(f"unclosed IPv6 bracket in address {address!r}")
        if not rest:
            return host, default_port
        if not rest.startswith(":"):
            raise ValueError(f"malformed address {address!r}")
        return host, _parse_port(rest[1:], address)
    if text.count(":") == 1:
        host, _, port_text = text.partition(":")
        return host or "127.0.0.1", _parse_port(port_text, address)
    # zero colons: bare hostname; several: a bare IPv6 literal, no port
    return text, default_port


def _parse_port(port_text: str, address: str) -> int:
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in address {address!r}")
    return port


@dataclass(frozen=True)
class LocalCompensation:
    """Outcome of :meth:`Client.compensate`: a remote histogram-only solve
    replayed onto the local pixels.

    Only the histogram crossed the wire; ``output`` was produced locally by
    applying the solution's LUT.  For the histogram-driven techniques
    (``hebs``, the DLS variants, ``cbcs``) it is bit-identical to what the
    server would have produced from the full image; for ``hebs-adaptive``
    the server-side bisection measured distortion on a histogram-realizing
    stand-in, so its operating point approximates (rather than reproduces)
    a full-image solve — see :meth:`Engine.solve
    <repro.api.engine.Engine.solve>`.
    """

    solution: CompensationSolution
    original: Image
    output: Image

    @property
    def backlight_factor(self) -> float:
        """The dimming factor ``beta`` to program."""
        return self.solution.backlight_factor

    @property
    def transform(self) -> PixelTransform:
        """The pixel transformation that produced ``output``."""
        return self.solution.transform


class RemoteSession:
    """A server-side stream session driven over one client connection.

    Matches the push-based :class:`~repro.api.session.StreamSession`
    surface: :meth:`submit` takes one frame and returns its
    :class:`~repro.api.types.StreamFrameResult`; sessions are context
    managers and :meth:`close` is idempotent.  The temporal state
    (smoother, scene detector, fast path) lives server-side; per-session
    frame order is the submission order on this connection.

    A lost connection cannot be resumed — session state dies with the
    socket (the server closes it on disconnect), so session requests never
    auto-reconnect: they raise :class:`ConnectionError` instead.
    """

    def __init__(self, client: "Client", session_id: str,
                 max_distortion: float) -> None:
        self._client = client
        self._id = session_id
        self._max_distortion = float(max_distortion)
        self._closed = False

    @property
    def id(self) -> str:
        """The server-assigned session identifier (the stats key)."""
        return self._id

    @property
    def max_distortion(self) -> float:
        return self._max_distortion

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, frame: Image) -> StreamFrameResult:
        """Push one frame through the remote session and return its
        outcome.  Raises
        :class:`~repro.api.session.SessionClosedError` after :meth:`close`
        and :class:`~repro.serve.coalescer.ServerOverloadedError` when the
        session's server-side frame queue is full (honoring ``retry_after``
        when the client retries overloads)."""
        if self._closed:
            raise SessionClosedError(
                f"remote session {self._id} has been closed")
        response = self._client._request(
            lambda request_id, binary: self._client._build_feed(
                request_id, self._id, frame, binary),
            expected="frame", reconnect=False)
        wire = response["outcome"]
        original = (None if "original" in wire.get("result", {})
                    else frame.to_grayscale())
        return protocol.stream_frame_from_wire(wire, original=original)

    def close(self) -> None:
        """Close the remote session (idempotent, best-effort on a dead
        connection — the server also closes it on disconnect)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._client._request(
                lambda request_id, binary: protocol.close_session_request(
                    request_id, self._id),
                expected="session_closed", reconnect=False)
        except (ConnectionError, OSError):
            pass    # the disconnect already closed it server-side

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Client:
    """Synchronous client for a :class:`~repro.serve.net.NetworkServer`.

    Parameters
    ----------
    host, port:
        Server address (see also :func:`parse_address` /
        :meth:`Client.at`).
    timeout:
        Socket timeout per send/receive, in seconds.  Bounds how long one
        RPC may take end to end.
    retries:
        How many times a failed attempt is retried — after a connection
        error (with exponential back-off) or an ``overloaded`` error frame
        (honoring the server's ``retry_after`` hint).  ``0`` disables
        retrying.
    backoff, max_backoff:
        Reconnect back-off: attempt ``n`` sleeps at most
        ``min(backoff * 2**n, max_backoff)`` seconds, scaled down by
        ``jitter`` (see :class:`~repro.client.backoff.Backoff`).
    jitter, rng:
        Randomized fraction of each reconnect delay (clients dropped by
        the same restart must not return in lockstep) and an injectable
        random source for deterministic tests.  The server-directed
        ``retry_after`` hint is never jittered.
    retry_overloaded:
        Whether an ``overloaded`` error frame is retried after its
        ``retry_after`` hint (up to ``retries`` attempts) instead of
        raising immediately.
    max_version:
        Newest protocol generation to advertise in the hello
        (:data:`~repro.serve.protocol.PROTOCOL_VERSION` by default; pass
        ``1`` to force the v1 JSON codec).  The server's pick lands on
        :attr:`protocol_version`.
    shm:
        Offer the same-host shared-memory lane
        (:mod:`repro.serve.shm`) during the handshake.  When the server
        proves the same-host claim, ``process``/``feed`` image payloads
        travel by block reference instead of over the socket.  Requires
        a negotiated v2 connection; silently stays on the socket lane
        otherwise (including against a remote or pre-v2 server).  The
        lane is lockstep-only: pipelined requests always use the socket.

    Attributes
    ----------
    protocol_version:
        The generation negotiated on the current connection (``None``
        while disconnected).
    bytes_sent, bytes_received:
        Lifetime wire-byte counters across reconnects — the
        bytes-on-wire measurement surface of the network benchmarks.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff: float = 0.1, max_backoff: float = 2.0,
                 jitter: float = 0.5, rng=None,
                 retry_overloaded: bool = True,
                 max_version: int = protocol.PROTOCOL_VERSION,
                 shm: bool = False) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if not protocol.PROTOCOL_V1 <= int(max_version) <= protocol.PROTOCOL_VERSION:
            raise ValueError(
                f"max_version must be within [{protocol.PROTOCOL_V1}, "
                f"{protocol.PROTOCOL_VERSION}], got {max_version}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.retry_overloaded = bool(retry_overloaded)
        self.max_version = int(max_version)
        self.protocol_version: int | None = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self._want_shm = bool(shm)
        self._shm: shm_lane.ShmLane | None = None
        self._backoff = Backoff(backoff, max_backoff, jitter=jitter, rng=rng)
        self._sock: socket.socket | None = None
        self._next_id = 0
        self._pipeline: "ClientPipeline | None" = None

    def __repr__(self) -> str:
        lane = (self.protocol_version is not None and self._shm is not None
                and self._shm.active)
        state = (f"protocol v{self.protocol_version}"
                 f"{' +shm' if lane else ''}"
                 if self.protocol_version is not None else "disconnected")
        return f"Client({self.host}:{self.port}, {state})"

    @classmethod
    def at(cls, address: str, **options) -> "Client":
        """Build a client from a ``"host:port"`` string."""
        host, port = parse_address(address)
        return cls(host=host, port=port, **options)

    # ------------------------------------------------------------------ #
    # the Engine-facade mirror
    # ------------------------------------------------------------------ #
    def solve(self, source: Image | Histogram, max_distortion: float,
              algorithm: str | None = None) -> CompensationSolution:
        """Histogram-only solve: ship O(histogram) bytes, get back the
        image-independent solution (transformation, backlight factor,
        driver program) to apply locally.  Mirrors
        :meth:`Engine.solve <repro.api.engine.Engine.solve>`."""
        response = self._request(
            lambda request_id, binary: protocol.solve_request(
                request_id, source, max_distortion, algorithm=algorithm),
            expected="solution")
        return protocol.solution_from_wire(response["solution"])

    def compensate(self, image: Image, max_distortion: float,
                   algorithm: str | None = None) -> LocalCompensation:
        """Solve remotely on the image's histogram, apply locally.

        The end-to-end fast path of the paper's Fig. 4 across a network:
        the pixels never leave this process, and for the histogram-driven
        techniques (``hebs``, DLS, ``cbcs``) the locally produced output is
        bit-identical to a server-side :meth:`process <Client.process>` of
        the same image (``hebs-adaptive`` approximates its per-image
        bisection — see :class:`LocalCompensation`).
        """
        grayscale = image.to_grayscale()
        solution = self.solve(Histogram.of_image(grayscale), max_distortion,
                              algorithm=algorithm)
        return LocalCompensation(solution=solution, original=grayscale,
                                 output=solution.transform.apply(grayscale))

    def process(self, image: Image, max_distortion: float,
                algorithm: str | None = None) -> CompensationResult:
        """Full-image request: the server applies the solution and accounts
        distortion and power.  Mirrors
        :meth:`Engine.process <repro.api.engine.Engine.process>`.

        The request is stamped with the content's
        :func:`~repro.serve.protocol.routing_key`, so a cluster router
        places it on the shard whose cache holds its solution without
        decoding the pixels."""
        routing = protocol.routing_key(image)
        response = self._request(
            lambda request_id, binary: self._build_process(
                request_id, image, max_distortion, algorithm, routing,
                binary),
            expected="result")
        return self._decode_result(response["result"], image)

    def open_session(self, max_distortion: float,
                     algorithm: str | None = None,
                     **options: Any) -> RemoteSession:
        """Open a push-based stream session on the server.  ``options``
        are the JSON-representable keyword options of
        :meth:`Engine.open_session <repro.api.engine.Engine.open_session>`
        (``scene_gated_solve=``, ``snap_on_scene_change=``,
        ``stability_bins=``, ...)."""
        response = self._request(
            lambda request_id, binary: protocol.open_session_request(
                request_id, max_distortion, algorithm=algorithm,
                options=options),
            expected="session")
        return RemoteSession(self, str(response["session_id"]),
                             float(max_distortion))

    def stats(self) -> ServerStats:
        """The server's live statistics snapshot."""
        response = self._request(
            lambda request_id, binary: protocol.stats_request(request_id),
            expected="stats")
        return protocol.server_stats_from_wire(response["stats"])

    def stats_dict(self) -> Mapping[str, Any]:
        """The raw JSON payload of the ``stats`` RPC (the server's
        ``as_dict`` view, latencies in ms)."""
        response = self._request(
            lambda request_id, binary: protocol.stats_request(request_id),
            expected="stats")
        return response["stats"]

    def pipeline(self) -> "ClientPipeline":
        """Open a batch context with multiple requests in flight.

        Calls on the returned :class:`ClientPipeline` send their frame
        immediately and return a :class:`PendingReply`; the server works
        on all of them concurrently and replies in completion order,
        correlated by request id.  Closing the context drains every
        outstanding reply, so ``.result()`` afterwards never blocks::

            with client.pipeline() as batch:
                first = batch.solve(histogram_a, max_distortion=10.0)
                second = batch.process(image_b, max_distortion=10.0)
            solution = first.result()
            result = second.result()

        Pipelined requests are never retried or reconnected — a lost
        connection fails every outstanding reply — and the lockstep
        :meth:`solve`/:meth:`process`/:meth:`stats` calls are refused
        while a pipeline is open.
        """
        return ClientPipeline(self)

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def connected(self) -> bool:
        """Whether a handshaken socket is currently held."""
        return self._sock is not None

    def connect(self) -> None:
        """Connect and handshake now (otherwise done lazily).

        The hello advertises ``[1, max_version]``; the server's pick
        lands on :attr:`protocol_version`.  When ``shm=True`` a probe
        block rides along (see :mod:`repro.serve.shm`) and the lane
        activates only if the server proves the same-host claim.
        """
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        lane: shm_lane.ShmLane | None = None
        try:
            offer = None
            if (self._want_shm and self.max_version >= 2
                    and shm_lane.shm_available()):
                lane = shm_lane.ShmLane()
                offer = lane.offer()
            self._send_bytes(sock, protocol.encode_frame(
                protocol.hello_frame(max_version=self.max_version,
                                     shm=offer)))
            hello = self._recv_frame(sock)
            if hello.get("type") == "error":
                raise protocol.exception_from_error(hello)
            version = hello.get("version")
            if (hello.get("type") != "hello"
                    or not isinstance(version, int)
                    or not protocol.PROTOCOL_V1 <= version <= self.max_version):
                raise protocol.ProtocolError(
                    f"server answered the handshake with "
                    f"{hello.get('type')!r} v{version!r}")
            if lane is not None:
                lane.conclude(version >= 2 and bool(hello.get("shm")))
        except BaseException:
            if lane is not None:
                lane.close()
            sock.close()
            raise
        self._sock = sock
        self._shm = lane
        self.protocol_version = int(version)

    def close(self) -> None:
        """Drop the connection (idempotent); the server closes any
        sessions this connection owned."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        self.protocol_version = None
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _send_bytes(self, sock: socket.socket, frame: bytes) -> None:
        sock.sendall(frame)
        self.bytes_sent += len(frame)

    def _recv_exactly(self, sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("the server closed the connection")
            chunks.append(chunk)
            self.bytes_received += len(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_payload(self, sock: socket.socket) -> bytes:
        header = self._recv_exactly(sock, protocol.HEADER_BYTES)
        return self._recv_exactly(sock, protocol.frame_length(header))

    def _recv_frame(self, sock: socket.socket) -> dict:
        # decode by sniff: a negotiated-v2 connection carries v2 binary
        # frames, but the hello (and any v1 fallback) is plain JSON
        return wire2.decode_any(self._recv_payload(sock))[1]

    def _encode(self, message: dict) -> bytes:
        if (self.protocol_version or protocol.PROTOCOL_V1) >= 2:
            return wire2.encode_frame(message)
        return protocol.encode_frame(message)

    def _build_process(self, request_id: int, image: Image,
                       max_distortion: float, algorithm: str | None,
                       routing: bytes | None, binary: bool) -> dict:
        if binary and self._shm is not None and self._shm.active:
            message = protocol.process_request(
                request_id, image, max_distortion, algorithm=algorithm,
                routing=routing)
            message["image"] = {"shm": self._shm.send_image(image)}
            return message
        return protocol.process_request(request_id, image, max_distortion,
                                        algorithm=algorithm, routing=routing,
                                        binary=binary)

    def _build_feed(self, request_id: int, session_id: str, frame: Image,
                    binary: bool) -> dict:
        if binary and self._shm is not None and self._shm.active:
            return protocol.feed_request(request_id, session_id, frame,
                                         shm=self._shm.send_image(frame))
        return protocol.feed_request(request_id, session_id, frame,
                                     binary=binary)

    @staticmethod
    def _decode_result(wire: Mapping[str, Any],
                       image: Image) -> CompensationResult:
        # a v2 response omits the original image — it is the grayscale
        # rendition of the request image, rebuilt here bit-exactly
        original = None if "original" in wire else image.to_grayscale()
        return protocol.result_from_wire(wire, original=original)

    def _request(self, build, expected: str, reconnect: bool = True) -> dict:
        """One request/response round trip with the retry policy.

        ``build`` is called with a fresh request id (and the negotiated
        codec's ``binary`` flag) for every attempt, so a retried request
        is distinguishable server-side and re-encodes correctly if a
        reconnect landed on a different protocol version.  ``reconnect``
        disables the reconnect-and-retry path for requests that are not
        safe to replay on a new connection (session traffic — the state
        died with the old socket).
        """
        if self._pipeline is not None:
            raise RuntimeError(
                "a pipeline is open on this client; finish the batch "
                "before making lockstep calls")
        attempt = 0
        while True:
            try:
                self.connect()
                assert self._sock is not None
                self._next_id += 1
                message = build(self._next_id,
                                (self.protocol_version or 1) >= 2)
                self._send_bytes(self._sock, self._encode(message))
                response = self._recv_frame(self._sock)
            except (ConnectionError, OSError, EOFError) as exc:
                self.close()
                if not reconnect or attempt >= self.retries:
                    raise ConnectionError(
                        f"lost connection to {self.host}:{self.port} "
                        f"({exc})") from exc
                time.sleep(self._backoff.delay(attempt))
                attempt += 1
                continue
            if response.get("type") == "error":
                error = protocol.exception_from_error(response)
                if (isinstance(error, ServerOverloadedError)
                        and self.retry_overloaded
                        and attempt < self.retries):
                    delay = error.retry_after_seconds
                    if delay is None:
                        delay = self.backoff
                    time.sleep(min(delay, self.max_backoff))
                    attempt += 1
                    continue
                raise error
            if response.get("id") != message["id"]:
                self.close()    # the stream is desynchronized; start clean
                raise protocol.ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {message['id']!r}")
            if response.get("type") != expected:
                raise protocol.ProtocolError(
                    f"expected a {expected!r} response, got "
                    f"{response.get('type')!r}")
            return response


class PendingReply:
    """Handle to one in-flight request of a :class:`ClientPipeline`.

    :meth:`result` blocks until this request's reply has been read off
    the socket (replies arrive in server completion order, not submission
    order) and either returns the decoded value or raises the typed
    error the server answered with.  After the pipeline context exits,
    every reply has been drained and :meth:`result` returns instantly.
    """

    def __init__(self, batch: "ClientPipeline", request_id: int,
                 expected: str, decode: Callable[[dict], Any]) -> None:
        self._batch = batch
        self.request_id = int(request_id)
        self._expected = expected
        self._decode = decode
        self._outcome: tuple[str, Any] | None = None

    @property
    def done(self) -> bool:
        """Whether the reply has been received (or failed)."""
        return self._outcome is not None

    def result(self) -> Any:
        """The decoded reply, blocking until it arrives."""
        return self._batch._resolve(self)


class ClientPipeline:
    """A batch of pipelined requests on one :class:`Client` socket.

    Obtained from :meth:`Client.pipeline`.  Every call sends its frame
    immediately — the server (or a cluster router) works on all of them
    concurrently — and returns a :class:`PendingReply` correlated by
    request id.  Replies are read lazily by :meth:`PendingReply.result`
    and drained completely when the context closes.

    Pipelined traffic never retries or reconnects: a lost connection
    fails every outstanding reply with :class:`ConnectionError`.  The
    shared-memory lane is also bypassed (its data block is only safe
    under lockstep traffic); pipelined image payloads use the socket.
    """

    def __init__(self, client: Client) -> None:
        if client._pipeline is not None:
            raise RuntimeError("a pipeline is already open on this client")
        client.connect()
        self._client = client
        self._pending: dict[int, PendingReply] = {}
        self._failure: ConnectionError | None = None
        self._closed = False
        client._pipeline = self

    # -- request surface ---------------------------------------------- #
    def solve(self, source: Image | Histogram, max_distortion: float,
              algorithm: str | None = None) -> PendingReply:
        """Pipelined :meth:`Client.solve`."""
        return self._submit(
            lambda rid, binary: protocol.solve_request(
                rid, source, max_distortion, algorithm=algorithm),
            "solution",
            lambda response: protocol.solution_from_wire(
                response["solution"]))

    def process(self, image: Image, max_distortion: float,
                algorithm: str | None = None) -> PendingReply:
        """Pipelined :meth:`Client.process`."""
        routing = protocol.routing_key(image)
        return self._submit(
            lambda rid, binary: protocol.process_request(
                rid, image, max_distortion, algorithm=algorithm,
                routing=routing, binary=binary),
            "result",
            lambda response: Client._decode_result(response["result"],
                                                   image))

    def stats(self) -> PendingReply:
        """Pipelined :meth:`Client.stats`."""
        return self._submit(
            lambda rid, binary: protocol.stats_request(rid),
            "stats",
            lambda response: protocol.server_stats_from_wire(
                response["stats"]))

    # -- plumbing ------------------------------------------------------ #
    def _submit(self, build, expected: str, decode) -> PendingReply:
        if self._closed:
            raise RuntimeError("this pipeline has been closed")
        if self._failure is not None:
            raise self._failure
        client = self._client
        client._next_id += 1
        request_id = client._next_id
        message = build(request_id, (client.protocol_version or 1) >= 2)
        try:
            assert client._sock is not None
            client._send_bytes(client._sock, client._encode(message))
        except (ConnectionError, OSError) as exc:
            self._fail(exc)
            raise self._failure from exc
        reply = PendingReply(self, request_id, expected, decode)
        self._pending[request_id] = reply
        return reply

    def _pump(self) -> None:
        """Read one reply off the socket and settle its pending handle."""
        client = self._client
        try:
            assert client._sock is not None
            response = client._recv_frame(client._sock)
        except (ConnectionError, OSError, EOFError,
                protocol.ProtocolError) as exc:
            self._fail(exc)
            return
        reply = self._pending.pop(response.get("id"), None)
        if reply is None:
            return    # a stray frame; ignore and keep draining
        if response.get("type") == "error":
            reply._outcome = ("error",
                              protocol.exception_from_error(response))
        elif response.get("type") != reply._expected:
            reply._outcome = ("error", protocol.ProtocolError(
                f"expected a {reply._expected!r} response, got "
                f"{response.get('type')!r}"))
        else:
            try:
                reply._outcome = ("value", reply._decode(response))
            except Exception as exc:   # noqa: BLE001 - surfaced on result()
                reply._outcome = ("error", exc)

    def _fail(self, exc: BaseException) -> None:
        self._failure = ConnectionError(
            f"pipeline connection to {self._client.host}:"
            f"{self._client.port} lost ({exc})")
        for reply in self._pending.values():
            reply._outcome = ("error", self._failure)
        self._pending.clear()
        self._client.close()

    def _resolve(self, reply: PendingReply) -> Any:
        while reply._outcome is None:
            self._pump()
        kind, value = reply._outcome
        if kind == "error":
            raise value
        return value

    def close(self) -> None:
        """Drain every outstanding reply and release the client back to
        lockstep mode (idempotent).  Errors stay parked on their
        :class:`PendingReply` handles."""
        if self._closed:
            return
        self._closed = True
        try:
            while self._pending:
                self._pump()
        finally:
            self._client._pipeline = None

    def __enter__(self) -> "ClientPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
