"""Jittered exponential back-off: the retry pacing of the client SDK.

When a shard restarts, *every* client it served loses its connection at
the same instant.  With the plain deterministic schedule
``min(base * 2**attempt, maximum)`` they all sleep identical delays and
reconnect in lockstep — a thundering herd hammering the recovering server
in synchronized waves.  :class:`Backoff` multiplies each delay by a
random factor drawn from ``[1 - jitter, 1]``, spreading the herd across
the back-off window while never exceeding the un-jittered schedule.

The RNG is injectable so tests pin the exact delays.  Note what is *not*
jittered: a server-directed ``retry_after`` hint on an ``overloaded``
error frame is an instruction, not a guess — the clients honor it as
given (the server already staggers admission through its queue).

Shared by :class:`repro.client.sync.Client`,
:class:`repro.client.aio.AsyncClient` and the failover/reconnect pacing
of :class:`repro.cluster.router.ClusterRouter`.
"""

from __future__ import annotations

import random

__all__ = ["Backoff"]


class Backoff:
    """Exponential back-off schedule with multiplicative jitter.

    Parameters
    ----------
    base, maximum:
        Attempt ``n`` (0-based) waits at most ``min(base * 2**n, maximum)``
        seconds.
    jitter:
        Fraction of each delay that is randomized: the delay is scaled by
        a factor uniform in ``[1 - jitter, 1]``.  ``0`` reproduces the
        deterministic schedule, ``1`` allows any delay down to zero.
    rng:
        Random source with a ``random()`` method (injectable for
        deterministic tests); a fresh :class:`random.Random` by default.
    """

    def __init__(self, base: float = 0.1, maximum: float = 2.0, *,
                 jitter: float = 0.5, rng=None) -> None:
        if base < 0 or maximum < 0:
            raise ValueError("base and maximum must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.maximum = float(maximum)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        """The jittered delay (seconds) before retry ``attempt`` (0-based)."""
        delay = min(self.base * (2.0 ** int(attempt)), self.maximum)
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * self._rng.random()
        return delay
