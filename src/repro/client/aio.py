"""Asyncio client for the network serving API.

:class:`AsyncClient` is the event-loop counterpart of
:class:`repro.client.sync.Client`: the same Engine-facade mirror
(``solve`` / ``compensate`` / ``process`` / ``open_session`` / ``stats``),
the same typed exceptions, the same reconnect-with-backoff and
retry-after honoring — with every call awaitable, so one event loop can
drive many concurrent clients (each with its own connection).

Requests on one :class:`AsyncClient` are serialized by an internal lock
(one in-flight request per connection keeps the response correlation
trivial); open several clients for concurrency, as
``examples/remote_client.py`` shows.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.api.session import SessionClosedError
from repro.core.histogram import Histogram
from repro.imaging.image import Image
from repro.serve import protocol
from repro.serve.coalescer import ServerOverloadedError
from repro.serve.net import DEFAULT_PORT
from repro.serve.stats import ServerStats
from repro.client.backoff import Backoff
from repro.client.sync import LocalCompensation, parse_address

__all__ = ["AsyncClient", "AsyncRemoteSession"]


class AsyncRemoteSession:
    """Asyncio counterpart of :class:`repro.client.sync.RemoteSession`:
    the push-based stream surface with ``await``-able frame submission.
    Use ``async with`` for deterministic close."""

    def __init__(self, client: "AsyncClient", session_id: str,
                 max_distortion: float) -> None:
        self._client = client
        self._id = session_id
        self._max_distortion = float(max_distortion)
        self._closed = False

    @property
    def id(self) -> str:
        return self._id

    @property
    def max_distortion(self) -> float:
        return self._max_distortion

    @property
    def closed(self) -> bool:
        return self._closed

    async def submit(self, frame: Image) -> StreamFrameResult:
        """Push one frame; resolves to its
        :class:`~repro.api.types.StreamFrameResult`."""
        if self._closed:
            raise SessionClosedError(
                f"remote session {self._id} has been closed")
        response = await self._client._request(
            lambda request_id: protocol.feed_request(request_id, self._id,
                                                     frame),
            expected="frame", reconnect=False)
        return protocol.stream_frame_from_wire(response["outcome"])

    async def close(self) -> None:
        """Close the remote session (idempotent, best-effort on a dead
        connection)."""
        if self._closed:
            return
        self._closed = True
        try:
            await self._client._request(
                lambda request_id: protocol.close_session_request(
                    request_id, self._id),
                expected="session_closed", reconnect=False)
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncRemoteSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


class AsyncClient:
    """Asyncio client for a :class:`~repro.serve.net.NetworkServer`.

    Same parameters and retry policy as
    :class:`repro.client.sync.Client`; every RPC is a coroutine.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff: float = 0.1, max_backoff: float = 2.0,
                 jitter: float = 0.5, rng=None,
                 retry_overloaded: bool = True) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.retry_overloaded = bool(retry_overloaded)
        self._backoff = Backoff(backoff, max_backoff, jitter=jitter, rng=rng)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    @classmethod
    def at(cls, address: str, **options) -> "AsyncClient":
        """Build a client from a ``"host:port"`` string."""
        host, port = parse_address(address)
        return cls(host=host, port=port, **options)

    # ------------------------------------------------------------------ #
    # the Engine-facade mirror
    # ------------------------------------------------------------------ #
    async def solve(self, source: Image | Histogram, max_distortion: float,
                    algorithm: str | None = None) -> CompensationSolution:
        """Histogram-only solve (see
        :meth:`Client.solve <repro.client.sync.Client.solve>`)."""
        response = await self._request(
            lambda request_id: protocol.solve_request(
                request_id, source, max_distortion, algorithm=algorithm),
            expected="solution")
        return protocol.solution_from_wire(response["solution"])

    async def compensate(self, image: Image, max_distortion: float,
                         algorithm: str | None = None) -> LocalCompensation:
        """Remote histogram-only solve + local LUT application (see
        :meth:`Client.compensate <repro.client.sync.Client.compensate>`)."""
        grayscale = image.to_grayscale()
        solution = await self.solve(Histogram.of_image(grayscale),
                                    max_distortion, algorithm=algorithm)
        return LocalCompensation(solution=solution, original=grayscale,
                                 output=solution.transform.apply(grayscale))

    async def process(self, image: Image, max_distortion: float,
                      algorithm: str | None = None) -> CompensationResult:
        """Full-image request (see
        :meth:`Client.process <repro.client.sync.Client.process>`)."""
        routing = protocol.routing_key(image)
        response = await self._request(
            lambda request_id: protocol.process_request(
                request_id, image, max_distortion, algorithm=algorithm,
                routing=routing),
            expected="result")
        return protocol.result_from_wire(response["result"])

    async def open_session(self, max_distortion: float,
                           algorithm: str | None = None,
                           **options: Any) -> AsyncRemoteSession:
        """Open a push-based stream session on the server."""
        response = await self._request(
            lambda request_id: protocol.open_session_request(
                request_id, max_distortion, algorithm=algorithm,
                options=options),
            expected="session")
        return AsyncRemoteSession(self, str(response["session_id"]),
                                  float(max_distortion))

    async def stats(self) -> ServerStats:
        """The server's live statistics snapshot."""
        response = await self._request(protocol.stats_request,
                                       expected="stats")
        return protocol.server_stats_from_wire(response["stats"])

    async def stats_dict(self) -> Mapping[str, Any]:
        """The raw JSON payload of the ``stats`` RPC."""
        response = await self._request(protocol.stats_request,
                                       expected="stats")
        return response["stats"]

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """Connect and handshake now (otherwise done lazily)."""
        if self._writer is not None:
            return
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout)
        try:
            writer.write(protocol.encode_frame(protocol.hello_frame()))
            await writer.drain()
            hello = await asyncio.wait_for(self._read_frame(reader),
                                           self.timeout)
            if hello.get("type") == "error":
                raise protocol.exception_from_error(hello)
            if (hello.get("type") != "hello"
                    or hello.get("version") != protocol.PROTOCOL_VERSION):
                raise protocol.ProtocolError(
                    f"server answered the handshake with "
                    f"{hello.get('type')!r} v{hello.get('version')!r}")
        except BaseException:
            writer.close()
            raise
        self._reader, self._writer = reader, writer

    async def close(self) -> None:
        """Drop the connection (idempotent)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    async def _read_frame(self, reader: asyncio.StreamReader) -> dict:
        header = await reader.readexactly(protocol.HEADER_BYTES)
        payload = await reader.readexactly(protocol.frame_length(header))
        return protocol.decode_frame(payload)

    async def _request(self, build, expected: str,
                       reconnect: bool = True) -> dict:
        """One serialized request/response round trip (same retry policy
        as the sync client)."""
        async with self._lock:
            attempt = 0
            while True:
                self._next_id += 1
                message = build(self._next_id)
                try:
                    await self.connect()
                    assert self._writer is not None and self._reader is not None
                    self._writer.write(protocol.encode_frame(message))
                    await self._writer.drain()
                    response = await asyncio.wait_for(
                        self._read_frame(self._reader), self.timeout)
                except (ConnectionError, OSError, EOFError,
                        asyncio.IncompleteReadError,
                        asyncio.TimeoutError) as exc:
                    await self.close()
                    if not reconnect or attempt >= self.retries:
                        raise ConnectionError(
                            f"lost connection to {self.host}:{self.port} "
                            f"({exc!r})") from exc
                    await asyncio.sleep(self._backoff.delay(attempt))
                    attempt += 1
                    continue
                if response.get("type") == "error":
                    error = protocol.exception_from_error(response)
                    if (isinstance(error, ServerOverloadedError)
                            and self.retry_overloaded
                            and attempt < self.retries):
                        delay = error.retry_after_seconds
                        if delay is None:
                            delay = self.backoff
                        await asyncio.sleep(min(delay, self.max_backoff))
                        attempt += 1
                        continue
                    raise error
                if response.get("id") != message["id"]:
                    await self.close()
                    raise protocol.ProtocolError(
                        f"response id {response.get('id')!r} does not match "
                        f"request id {message['id']!r}")
                if response.get("type") != expected:
                    raise protocol.ProtocolError(
                        f"expected a {expected!r} response, got "
                        f"{response.get('type')!r}")
                return response
