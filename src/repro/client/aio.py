"""Asyncio client for the network serving API.

:class:`AsyncClient` is the event-loop counterpart of
:class:`repro.client.sync.Client`: the same Engine-facade mirror
(``solve`` / ``compensate`` / ``process`` / ``open_session`` / ``stats``),
the same typed exceptions, the same reconnect-with-backoff and
retry-after honoring — with every call awaitable, so one event loop can
drive many concurrent clients (each with its own connection).

Concurrent calls on **one** :class:`AsyncClient` are multiplexed over a
single connection: every request carries a fresh id, a background reader
task routes each reply to its awaiting caller, and replies may arrive in
server completion order.  This is the asyncio shape of
:meth:`Client.pipeline <repro.client.sync.Client.pipeline>` — just
``asyncio.gather`` the calls; no dedicated batch context is needed.

Like the sync client, the hello advertises ``max_version`` and the
server's pick lands on :attr:`AsyncClient.protocol_version`: requests and
responses travel as binary zero-copy v2 frames
(:mod:`repro.serve.wire2`) against this build's servers and fall back to
v1 JSON against older ones.  The same-host shared-memory lane is
lockstep-only and stays on the sync client.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Mapping

from repro.api.types import (
    CompensationResult,
    CompensationSolution,
    StreamFrameResult,
)
from repro.api.session import SessionClosedError
from repro.core.histogram import Histogram
from repro.imaging.image import Image
from repro.serve import protocol, wire2
from repro.serve.coalescer import ServerOverloadedError
from repro.serve.net import DEFAULT_PORT
from repro.serve.stats import ServerStats
from repro.client.backoff import Backoff
from repro.client.sync import LocalCompensation, parse_address

__all__ = ["AsyncClient", "AsyncRemoteSession"]


class AsyncRemoteSession:
    """Asyncio counterpart of :class:`repro.client.sync.RemoteSession`:
    the push-based stream surface with ``await``-able frame submission.
    Use ``async with`` for deterministic close."""

    def __init__(self, client: "AsyncClient", session_id: str,
                 max_distortion: float) -> None:
        self._client = client
        self._id = session_id
        self._max_distortion = float(max_distortion)
        self._closed = False

    @property
    def id(self) -> str:
        return self._id

    @property
    def max_distortion(self) -> float:
        return self._max_distortion

    @property
    def closed(self) -> bool:
        return self._closed

    async def submit(self, frame: Image) -> StreamFrameResult:
        """Push one frame; resolves to its
        :class:`~repro.api.types.StreamFrameResult`."""
        if self._closed:
            raise SessionClosedError(
                f"remote session {self._id} has been closed")
        response = await self._client._request(
            lambda request_id, binary: protocol.feed_request(
                request_id, self._id, frame, binary=binary),
            expected="frame", reconnect=False)
        wire = response["outcome"]
        original = (None if "original" in wire.get("result", {})
                    else frame.to_grayscale())
        return protocol.stream_frame_from_wire(wire, original=original)

    async def close(self) -> None:
        """Close the remote session (idempotent, best-effort on a dead
        connection)."""
        if self._closed:
            return
        self._closed = True
        try:
            await self._client._request(
                lambda request_id, binary: protocol.close_session_request(
                    request_id, self._id),
                expected="session_closed", reconnect=False)
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncRemoteSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


class AsyncClient:
    """Asyncio client for a :class:`~repro.serve.net.NetworkServer`.

    Same parameters and retry policy as
    :class:`repro.client.sync.Client`; every RPC is a coroutine, and
    concurrent calls on one client are pipelined over one connection
    (correlated by request id, so ``asyncio.gather`` keeps the socket
    full).

    Attributes
    ----------
    protocol_version:
        The generation negotiated on the current connection (``None``
        while disconnected); see ``max_version``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff: float = 0.1, max_backoff: float = 2.0,
                 jitter: float = 0.5, rng=None,
                 retry_overloaded: bool = True,
                 max_version: int = protocol.PROTOCOL_VERSION) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if not protocol.PROTOCOL_V1 <= int(max_version) <= protocol.PROTOCOL_VERSION:
            raise ValueError(
                f"max_version must be within [{protocol.PROTOCOL_V1}, "
                f"{protocol.PROTOCOL_VERSION}], got {max_version}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.retry_overloaded = bool(retry_overloaded)
        self.max_version = int(max_version)
        self.protocol_version: int | None = None
        self._backoff = Backoff(backoff, max_backoff, jitter=jitter, rng=rng)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._conn_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        self._next_id = 0

    def __repr__(self) -> str:
        state = (f"protocol v{self.protocol_version}"
                 if self.protocol_version is not None else "disconnected")
        return f"AsyncClient({self.host}:{self.port}, {state})"

    @classmethod
    def at(cls, address: str, **options) -> "AsyncClient":
        """Build a client from a ``"host:port"`` string."""
        host, port = parse_address(address)
        return cls(host=host, port=port, **options)

    # ------------------------------------------------------------------ #
    # the Engine-facade mirror
    # ------------------------------------------------------------------ #
    async def solve(self, source: Image | Histogram, max_distortion: float,
                    algorithm: str | None = None) -> CompensationSolution:
        """Histogram-only solve (see
        :meth:`Client.solve <repro.client.sync.Client.solve>`)."""
        response = await self._request(
            lambda request_id, binary: protocol.solve_request(
                request_id, source, max_distortion, algorithm=algorithm),
            expected="solution")
        return protocol.solution_from_wire(response["solution"])

    async def compensate(self, image: Image, max_distortion: float,
                         algorithm: str | None = None) -> LocalCompensation:
        """Remote histogram-only solve + local LUT application (see
        :meth:`Client.compensate <repro.client.sync.Client.compensate>`)."""
        grayscale = image.to_grayscale()
        solution = await self.solve(Histogram.of_image(grayscale),
                                    max_distortion, algorithm=algorithm)
        return LocalCompensation(solution=solution, original=grayscale,
                                 output=solution.transform.apply(grayscale))

    async def process(self, image: Image, max_distortion: float,
                      algorithm: str | None = None) -> CompensationResult:
        """Full-image request (see
        :meth:`Client.process <repro.client.sync.Client.process>`)."""
        routing = protocol.routing_key(image)
        response = await self._request(
            lambda request_id, binary: protocol.process_request(
                request_id, image, max_distortion, algorithm=algorithm,
                routing=routing, binary=binary),
            expected="result")
        wire = response["result"]
        # a v2 response omits the original image — it is the grayscale
        # rendition of the request image, rebuilt here bit-exactly
        original = None if "original" in wire else image.to_grayscale()
        return protocol.result_from_wire(wire, original=original)

    async def open_session(self, max_distortion: float,
                           algorithm: str | None = None,
                           **options: Any) -> AsyncRemoteSession:
        """Open a push-based stream session on the server."""
        response = await self._request(
            lambda request_id, binary: protocol.open_session_request(
                request_id, max_distortion, algorithm=algorithm,
                options=options),
            expected="session")
        return AsyncRemoteSession(self, str(response["session_id"]),
                                  float(max_distortion))

    async def stats(self) -> ServerStats:
        """The server's live statistics snapshot."""
        response = await self._request(
            lambda request_id, binary: protocol.stats_request(request_id),
            expected="stats")
        return protocol.server_stats_from_wire(response["stats"])

    async def stats_dict(self) -> Mapping[str, Any]:
        """The raw JSON payload of the ``stats`` RPC."""
        response = await self._request(
            lambda request_id, binary: protocol.stats_request(request_id),
            expected="stats")
        return response["stats"]

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """Connect and handshake now (otherwise done lazily).

        The hello advertises ``[1, max_version]``; the server's pick
        lands on :attr:`protocol_version`.  Also starts the background
        reader task that routes multiplexed replies by request id.
        """
        async with self._conn_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)
            try:
                writer.write(protocol.encode_frame(
                    protocol.hello_frame(max_version=self.max_version)))
                await writer.drain()
                hello = await asyncio.wait_for(
                    self._read_message(reader), self.timeout)
                if hello.get("type") == "error":
                    raise protocol.exception_from_error(hello)
                version = hello.get("version")
                if (hello.get("type") != "hello"
                        or not isinstance(version, int)
                        or not (protocol.PROTOCOL_V1 <= version
                                <= self.max_version)):
                    raise protocol.ProtocolError(
                        f"server answered the handshake with "
                        f"{hello.get('type')!r} v{version!r}")
            except BaseException:
                writer.close()
                raise
            self._reader, self._writer = reader, writer
            self.protocol_version = int(version)
            self._reader_task = asyncio.create_task(self._read_loop(reader))

    async def close(self) -> None:
        """Drop the connection (idempotent).  Every in-flight request
        fails with :class:`ConnectionError`."""
        task, self._reader_task = self._reader_task, None
        writer, self._reader, self._writer = self._writer, None, None
        self.protocol_version = None
        if task is not None:
            task.cancel()
            with contextlib.suppress(BaseException):
                await task
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(ConnectionError("the connection was closed"))

    async def __aenter__(self) -> "AsyncClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    async def _read_message(self, reader: asyncio.StreamReader) -> dict:
        header = await reader.readexactly(protocol.HEADER_BYTES)
        payload = await reader.readexactly(protocol.frame_length(header))
        # decode by sniff: a negotiated-v2 connection carries v2 binary
        # frames, but the hello (and any v1 fallback) is plain JSON
        return wire2.decode_any(payload)[1]

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        """Route each incoming reply to the future awaiting its id."""
        try:
            while True:
                message = await self._read_message(reader)
                future = self._pending.pop(message.get("id"), None)
                if future is not None:
                    if not future.done():
                        future.set_result(message)
                elif (message.get("type") == "error"
                        and message.get("id") is None):
                    # a connection-level error frame addresses everyone
                    self._fail_pending(protocol.exception_from_error(message))
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, EOFError,
                asyncio.IncompleteReadError, protocol.ProtocolError) as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ConnectionError(
                    f"lost connection to {self.host}:{self.port} ({exc})"))

    def _encode(self, message: dict) -> bytes:
        if (self.protocol_version or protocol.PROTOCOL_V1) >= 2:
            return wire2.encode_frame(message)
        return protocol.encode_frame(message)

    async def _request(self, build, expected: str,
                       reconnect: bool = True) -> dict:
        """One multiplexed request/response round trip (same retry policy
        as the sync client).  ``build`` is called with a fresh request id
        and the negotiated codec's ``binary`` flag on every attempt, so a
        retry after a reconnect re-encodes for the new connection's
        protocol version."""
        attempt = 0
        while True:
            try:
                await self.connect()
                writer = self._writer
                if writer is None:   # raced with a concurrent close()
                    raise ConnectionError("the connection was closed")
                self._next_id += 1
                request_id = self._next_id
                message = build(request_id,
                                (self.protocol_version or 1) >= 2)
                frame = self._encode(message)
                future = asyncio.get_running_loop().create_future()
                self._pending[request_id] = future
                try:
                    async with self._write_lock:
                        writer.write(frame)
                        await writer.drain()
                    response = await asyncio.wait_for(future, self.timeout)
                finally:
                    self._pending.pop(request_id, None)
            except (ConnectionError, OSError, EOFError,
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                await self.close()
                if not reconnect or attempt >= self.retries:
                    raise ConnectionError(
                        f"lost connection to {self.host}:{self.port} "
                        f"({exc!r})") from exc
                await asyncio.sleep(self._backoff.delay(attempt))
                attempt += 1
                continue
            if response.get("type") == "error":
                error = protocol.exception_from_error(response)
                if (isinstance(error, ServerOverloadedError)
                        and self.retry_overloaded
                        and attempt < self.retries):
                    delay = error.retry_after_seconds
                    if delay is None:
                        delay = self.backoff
                    await asyncio.sleep(min(delay, self.max_backoff))
                    attempt += 1
                    continue
                raise error
            if response.get("type") != expected:
                raise protocol.ProtocolError(
                    f"expected a {expected!r} response, got "
                    f"{response.get('type')!r}")
            return response
