"""Client SDK for the network serving API.

The remote counterpart of the :class:`~repro.api.engine.Engine` facade,
speaking the wire protocol of :mod:`repro.serve.protocol` to a
:class:`~repro.serve.net.NetworkServer` (``repro serve --host --port``):

:class:`Client` (sync) / :class:`AsyncClient` (asyncio)
    ``solve`` — ship a 256-bin histogram + budget, get back the
    image-independent :class:`~repro.api.types.CompensationSolution`
    (O(histogram) bandwidth, the paper's Fig. 4 fast path);
    ``compensate`` — solve remotely, apply the LUT locally (pixels never
    leave the process; for the histogram-driven techniques the output is
    bit-identical to a server-side apply);
    ``process`` — ship the full image for server-side application and
    distortion/power accounting;
    ``open_session`` — a push-based :class:`RemoteSession` /
    :class:`AsyncRemoteSession` matching the
    :class:`~repro.api.session.StreamSession` surface;
    ``stats`` — the server's live statistics snapshot;
    ``pipeline`` (sync) — a :class:`ClientPipeline` batch context with
    multiple requests in flight on one socket, correlated by id (the
    :class:`AsyncClient` multiplexes concurrent ``await``-ers the same
    way without a dedicated context).

    Connections negotiate the newest shared protocol generation
    (binary zero-copy v2 frames against this build's servers, v1 JSON
    against older ones — see :attr:`Client.protocol_version`), and
    ``Client(shm=True)`` offers the same-host shared-memory lane of
    :mod:`repro.serve.shm` for image payloads.

    Lost connections reconnect with jittered exponential back-off
    (:class:`Backoff` — a herd of clients dropped by the same restart
    spreads out instead of returning in lockstep); a typed
    ``overloaded`` error honors the server's ``retry_after`` hint.  Error
    frames raise the same exception types as in-process calls
    (:class:`~repro.serve.coalescer.ServerOverloadedError` with its
    structured fields, :class:`~repro.serve.coalescer.ServerClosedError`,
    :class:`~repro.api.session.SessionClosedError`).

:class:`RemoteServerAdapter`
    Drives the :mod:`repro.serve.loadgen` load generators (and ``repro
    loadtest --connect HOST:PORT``) against a remote server: one
    connection per load thread, the in-process ``Server`` surface on top.

Quickstart::

    from repro.client import Client

    with Client(host="127.0.0.1", port=7095) as client:
        applied = client.compensate(image, max_distortion=10.0)
        panel.show(applied.output, backlight=applied.backlight_factor)

        with client.open_session(max_distortion=10.0) as session:
            outcome = session.submit(frame)     # a StreamFrameResult

``examples/remote_client.py`` walks through the full surface.
"""

from repro.client.adapter import RemoteServerAdapter
from repro.client.aio import AsyncClient, AsyncRemoteSession
from repro.client.backoff import Backoff
from repro.client.sync import (
    Client,
    ClientPipeline,
    LocalCompensation,
    PendingReply,
    RemoteSession,
    parse_address,
)

__all__ = [
    "Client",
    "ClientPipeline",
    "PendingReply",
    "AsyncClient",
    "Backoff",
    "RemoteSession",
    "AsyncRemoteSession",
    "LocalCompensation",
    "RemoteServerAdapter",
    "parse_address",
]
