"""Drive a remote server through the in-process ``Server`` surface.

The load generators of :mod:`repro.serve.loadgen` are duck-typed over a
small server surface — ``submit(image, budget, algorithm=...) -> Future``,
``open_session(...) -> handle``, ``stats() -> ServerStats`` —  so pointing
them at a *remote* server only takes an adapter that speaks that surface
over the wire.  :class:`RemoteServerAdapter` is that adapter, and what
``repro loadtest --connect HOST:PORT`` builds: each loadgen client thread
gets its own TCP connection (a thread-local
:class:`~repro.client.sync.Client`), so N concurrent load threads exercise
N concurrent connections, and the server coalesces across all of them.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any

from repro.imaging.image import Image
from repro.serve.stats import ServerStats
from repro.client.sync import Client, RemoteSession, parse_address

__all__ = ["RemoteServerAdapter"]


class _RemoteSessionHandle:
    """Wraps a :class:`~repro.client.sync.RemoteSession` behind the
    future-returning :class:`~repro.serve.server.ServerSession` surface the
    stream load generator drives."""

    def __init__(self, session: RemoteSession) -> None:
        self._session = session

    @property
    def id(self) -> str:
        return self._session.id

    def submit(self, frame: Image) -> Future:
        """Feed one frame; the RPC runs synchronously and the returned
        future is already settled (the load generator awaits it anyway)."""
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(self._session.submit(frame))
        except BaseException as exc:   # noqa: BLE001 - surfaced via future
            future.set_exception(exc)
        return future

    def close(self) -> None:
        self._session.close()

    def __enter__(self) -> "_RemoteSessionHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteServerAdapter:
    """A :class:`~repro.serve.server.Server` look-alike backed by RPCs.

    Parameters
    ----------
    address:
        ``"host:port"`` of the remote :class:`~repro.serve.net.NetworkServer`.
    client_options:
        Forwarded to every per-thread :class:`~repro.client.sync.Client`
        (``timeout=``, ``retries=``, ``retry_overloaded=``, ...).

    Notes
    -----
    Each calling thread lazily gets its own connection; :meth:`close`
    drops them all.  ``submit`` runs the RPC synchronously and returns an
    already-settled future — latency measured around
    ``submit(...).result()`` (the loadgen convention) therefore covers the
    full network round trip.
    """

    def __init__(self, address: str, **client_options: Any) -> None:
        self.host, self.port = parse_address(address)
        self._client_options = dict(client_options)
        self._client_options.setdefault("timeout", 60.0)
        self._local = threading.local()
        self._clients: list[Client] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # the loadgen-facing Server surface
    # ------------------------------------------------------------------ #
    def submit(self, image: Image, max_distortion: float,
               algorithm: str | None = None,
               timeout: float | None = None) -> Future:
        """One remote ``process`` request as an already-settled future
        (``timeout`` is accepted for surface compatibility; the client's
        socket timeout bounds the RPC)."""
        del timeout
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(self._client().process(
                image, max_distortion, algorithm=algorithm))
        except BaseException as exc:   # noqa: BLE001 - surfaced via future
            future.set_exception(exc)
        return future

    def open_session(self, max_distortion: float,
                     algorithm: str | None = None,
                     **options: Any) -> _RemoteSessionHandle:
        """Open a remote stream session for this thread's connection.
        ``options`` must be JSON-representable (stateful smoother /
        detector objects cannot cross the wire)."""
        session = self._client().open_session(max_distortion,
                                              algorithm=algorithm, **options)
        return _RemoteSessionHandle(session)

    def stats(self) -> ServerStats:
        """The remote server's statistics snapshot (via the ``stats``
        RPC)."""
        return self._client().stats()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every per-thread connection opened so far (idempotent)."""
        with self._lock:
            self._closed = True
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "RemoteServerAdapter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _client(self) -> Client:
        if self._closed:
            # also fences threads with a cached (now-closed) client, which
            # would otherwise lazily reconnect on an untracked socket
            raise RuntimeError("the remote server adapter is closed")
        client = getattr(self._local, "client", None)
        if client is None:
            with self._lock:
                if self._closed:
                    raise RuntimeError("the remote server adapter is closed")
                client = Client(host=self.host, port=self.port,
                                **self._client_options)
                self._clients.append(client)
            self._local.client = client
        return client
