"""Image substrate: containers, pixel operations, file I/O and synthetic benchmarks.

The HEBS algorithm (:mod:`repro.core`) operates on grayscale images with an
integer pixel depth (8 bits in the paper).  This package provides:

* :class:`~repro.imaging.image.Image` — an immutable-by-convention container
  around a ``numpy`` array with grayscale/RGB awareness and bit-depth
  bookkeeping.
* :mod:`~repro.imaging.ops` — pixel-level operations (LUT application,
  clipping, dynamic-range measurement, contrast/brightness adjustments).
* :mod:`~repro.imaging.io` — readers and writers for the portable anymap
  formats (PGM/PPM, ASCII and binary) and CSV dumps, so that examples can be
  run on real files without external imaging libraries.
* :mod:`~repro.imaging.synthetic` — a deterministic synthetic benchmark
  suite standing in for the USC-SIPI database used by the paper.
"""

from repro.imaging.image import Image
from repro.imaging.ops import (
    apply_lut,
    clip_pixels,
    dynamic_range,
    adjust_brightness,
    adjust_contrast,
    normalize,
    to_float,
    to_uint,
)
from repro.imaging.io import read_image, write_image, read_pnm, write_pnm
from repro.imaging.synthetic import (
    SyntheticImageSpec,
    generate,
    benchmark_names,
    benchmark_suite,
    load_benchmark,
)

__all__ = [
    "Image",
    "apply_lut",
    "clip_pixels",
    "dynamic_range",
    "adjust_brightness",
    "adjust_contrast",
    "normalize",
    "to_float",
    "to_uint",
    "read_image",
    "write_image",
    "read_pnm",
    "write_pnm",
    "SyntheticImageSpec",
    "generate",
    "benchmark_names",
    "benchmark_suite",
    "load_benchmark",
]
