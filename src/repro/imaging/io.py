"""Minimal image file I/O (portable anymap and CSV) with no external deps.

The paper's experiments use images from the USC-SIPI database.  In this
reproduction the benchmark images are synthesized
(:mod:`repro.imaging.synthetic`), but the examples still need to read and
write real image files so that a user can point the pipeline at their own
pictures.  We support:

* **PGM** (``P2`` ASCII / ``P5`` binary) — 8/16-bit grayscale,
* **PPM** (``P3`` ASCII / ``P6`` binary) — 8/16-bit RGB,
* **CSV** — a plain matrix of integer levels (grayscale only), convenient
  for piping data in and out of other tools.

These formats are trivially parsed and written with numpy, avoiding a PIL
dependency while keeping the examples runnable on real data.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from repro.imaging.image import Image

__all__ = ["read_image", "write_image", "read_pnm", "write_pnm",
           "read_csv", "write_csv"]

_PNM_GRAY_MAGIC = {b"P2": "ascii", b"P5": "binary"}
_PNM_RGB_MAGIC = {b"P3": "ascii", b"P6": "binary"}


# --------------------------------------------------------------------- #
# generic front-ends
# --------------------------------------------------------------------- #
def read_image(path: str | os.PathLike) -> Image:
    """Read an image file, dispatching on the file extension.

    ``.pgm`` / ``.ppm`` / ``.pnm`` are parsed as portable anymaps, ``.csv``
    as a grayscale level matrix.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".pgm", ".ppm", ".pnm"):
        return read_pnm(path)
    if suffix == ".csv":
        return read_csv(path)
    raise ValueError(f"unsupported image format: {suffix!r} (use .pgm/.ppm/.csv)")


def write_image(image: Image, path: str | os.PathLike) -> None:
    """Write an image file, dispatching on the file extension."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".pgm", ".ppm", ".pnm"):
        write_pnm(image, path)
        return
    if suffix == ".csv":
        write_csv(image, path)
        return
    raise ValueError(f"unsupported image format: {suffix!r} (use .pgm/.ppm/.csv)")


# --------------------------------------------------------------------- #
# portable anymap (PGM / PPM)
# --------------------------------------------------------------------- #
def _read_pnm_tokens(stream: io.BufferedReader, count: int) -> list[int]:
    """Read ``count`` whitespace-separated integer tokens, skipping comments."""
    tokens: list[int] = []
    current = b""
    in_comment = False
    while len(tokens) < count:
        char = stream.read(1)
        if not char:
            raise ValueError("unexpected end of PNM header")
        if in_comment:
            if char in b"\r\n":
                in_comment = False
            continue
        if char == b"#":
            in_comment = True
            continue
        if char.isspace():
            if current:
                tokens.append(int(current))
                current = b""
            continue
        current += char
    return tokens


def read_pnm(path: str | os.PathLike) -> Image:
    """Read a PGM (grayscale) or PPM (RGB) file, ASCII or binary."""
    path = Path(path)
    with open(path, "rb") as stream:
        magic = stream.read(2)
        if magic in _PNM_GRAY_MAGIC:
            channels, encoding = 1, _PNM_GRAY_MAGIC[magic]
        elif magic in _PNM_RGB_MAGIC:
            channels, encoding = 3, _PNM_RGB_MAGIC[magic]
        else:
            raise ValueError(f"not a supported PNM file (magic {magic!r})")

        width, height, max_value = _read_pnm_tokens(stream, 3)
        if width <= 0 or height <= 0:
            raise ValueError(f"invalid PNM dimensions {width}x{height}")
        if not 1 <= max_value <= 65535:
            raise ValueError(f"invalid PNM max value {max_value}")
        bit_depth = int(max_value).bit_length()
        n_values = width * height * channels

        if encoding == "ascii":
            text = stream.read().split()
            if len(text) < n_values:
                raise ValueError("truncated ASCII PNM payload")
            data = np.array([int(token) for token in text[:n_values]],
                            dtype=np.uint16)
        else:
            dtype = np.dtype(">u2") if max_value > 255 else np.dtype("u1")
            raw = stream.read(n_values * dtype.itemsize)
            if len(raw) < n_values * dtype.itemsize:
                raise ValueError("truncated binary PNM payload")
            data = np.frombuffer(raw, dtype=dtype).astype(np.uint16)

    shape = (height, width) if channels == 1 else (height, width, 3)
    return Image(data.reshape(shape), bit_depth=bit_depth, name=path.stem)


def write_pnm(image: Image, path: str | os.PathLike, binary: bool = True) -> None:
    """Write a PGM (grayscale) or PPM (RGB) file.

    ``binary=True`` writes the raw (``P5``/``P6``) variant; ``False`` writes
    the ASCII (``P2``/``P3``) variant which is convenient for inspection and
    version control.
    """
    path = Path(path)
    max_value = image.max_level
    if image.is_grayscale:
        magic = b"P5" if binary else b"P2"
    else:
        magic = b"P6" if binary else b"P3"

    header = b"%s\n%d %d\n%d\n" % (magic, image.width, image.height, max_value)
    flat = image.pixels.reshape(-1)
    with open(path, "wb") as stream:
        stream.write(header)
        if binary:
            dtype = np.dtype(">u2") if max_value > 255 else np.dtype("u1")
            stream.write(flat.astype(dtype).tobytes())
        else:
            per_line = 12
            lines = []
            for start in range(0, flat.size, per_line):
                chunk = flat[start:start + per_line]
                lines.append(" ".join(str(int(v)) for v in chunk))
            stream.write(("\n".join(lines) + "\n").encode("ascii"))


# --------------------------------------------------------------------- #
# CSV (grayscale level matrix)
# --------------------------------------------------------------------- #
def read_csv(path: str | os.PathLike, bit_depth: int = 8) -> Image:
    """Read a grayscale image stored as a CSV matrix of integer levels."""
    path = Path(path)
    data = np.loadtxt(path, delimiter=",", dtype=np.float64, ndmin=2)
    return Image(data, bit_depth=bit_depth, name=path.stem)


def write_csv(image: Image, path: str | os.PathLike) -> None:
    """Write a grayscale image as a CSV matrix of integer levels."""
    if not image.is_grayscale:
        raise ValueError("CSV output only supports grayscale images")
    np.savetxt(Path(path), image.pixels, fmt="%d", delimiter=",")
