"""Deterministic synthetic stand-ins for the USC-SIPI benchmark images.

The paper evaluates HEBS on 19 images from the USC-SIPI database (Table 1:
Lena, Autumn, Football, Peppers, ...).  Those images cannot be redistributed
here, so this module generates *synthetic equivalents*: for every benchmark
name it produces a deterministic grayscale image whose first-order statistics
(mean luminance, contrast, histogram shape — narrow / wide, unimodal /
bimodal, skewed, near-uniform) are modelled after the original.

Why this substitution is faithful (see DESIGN.md §2): HEBS and both baseline
techniques consume only the image *histogram* plus per-pixel values for the
distortion metric.  The power/distortion trade-off is therefore driven by the
histogram shape and the spatial coherence of the image, both of which the
generators below control explicitly.

All generators are deterministic: the random stream is seeded from the
benchmark name, so every call to :func:`load_benchmark` returns bit-identical
pixels across processes and platforms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "SyntheticImageSpec",
    "generate",
    "benchmark_names",
    "benchmark_suite",
    "load_benchmark",
    "BENCHMARK_SPECS",
]

_DEFAULT_SIZE = (128, 128)


# --------------------------------------------------------------------- #
# low level field generators
# --------------------------------------------------------------------- #
def _seed_for(name: str) -> int:
    """Stable 32-bit seed derived from the benchmark name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def _coordinate_grid(shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Normalized coordinate grid with ``u, v`` in ``[0, 1]``."""
    height, width = shape
    v, u = np.meshgrid(
        np.linspace(0.0, 1.0, height), np.linspace(0.0, 1.0, width), indexing="ij"
    )
    return u, v


def _smooth_noise(rng: np.random.Generator, shape: tuple[int, int],
                  scale: int) -> np.ndarray:
    """Band-limited noise in ``[0, 1]``: white noise blurred by block averaging.

    ``scale`` controls the correlation length (larger = smoother), which is
    how we model the "object coherence" the paper leans on (Sec. 3): pixels
    of a single object have similar intensities.
    """
    height, width = shape
    coarse = rng.random((max(2, height // scale), max(2, width // scale)))
    # bilinear upsampling to the target size
    row_positions = np.linspace(0, coarse.shape[0] - 1, height)
    col_positions = np.linspace(0, coarse.shape[1] - 1, width)
    row_low = np.floor(row_positions).astype(int)
    col_low = np.floor(col_positions).astype(int)
    row_high = np.minimum(row_low + 1, coarse.shape[0] - 1)
    col_high = np.minimum(col_low + 1, coarse.shape[1] - 1)
    row_frac = (row_positions - row_low)[:, None]
    col_frac = (col_positions - col_low)[None, :]
    top = (coarse[row_low][:, col_low] * (1 - col_frac)
           + coarse[row_low][:, col_high] * col_frac)
    bottom = (coarse[row_high][:, col_low] * (1 - col_frac)
              + coarse[row_high][:, col_high] * col_frac)
    field = top * (1 - row_frac) + bottom * row_frac
    span = field.max() - field.min()
    if span <= 0:
        return np.zeros(shape)
    return (field - field.min()) / span


def _gaussian_blob(shape: tuple[int, int], center: tuple[float, float],
                   sigma: tuple[float, float]) -> np.ndarray:
    """A 2-D Gaussian bump with peak 1 at ``center`` (normalized coords)."""
    u, v = _coordinate_grid(shape)
    cu, cv = center
    su, sv = sigma
    return np.exp(-(((u - cu) / su) ** 2 + ((v - cv) / sv) ** 2) / 2.0)


def _texture(rng: np.random.Generator, shape: tuple[int, int],
             frequency: float) -> np.ndarray:
    """High-frequency quasi-periodic texture in ``[0, 1]`` (fur, grass, ...)."""
    u, v = _coordinate_grid(shape)
    phase_u, phase_v = rng.random(2) * 2 * np.pi
    pattern = (
        np.sin(2 * np.pi * frequency * u + phase_u)
        + np.sin(2 * np.pi * frequency * 1.37 * v + phase_v)
        + 0.5 * np.sin(2 * np.pi * frequency * 0.61 * (u + v))
    )
    pattern = (pattern - pattern.min()) / (pattern.max() - pattern.min())
    return pattern


# --------------------------------------------------------------------- #
# scene builders (each returns floats in [0, 1])
# --------------------------------------------------------------------- #
def _scene_portrait(rng: np.random.Generator, shape: tuple[int, int],
                    key: float, contrast: float) -> np.ndarray:
    """Portrait-like scene: a bright face blob on a mid-tone background.

    Models images such as *Lena*, *Girl*, *Elaine*: a dominant smooth region
    with a moderately wide, roughly unimodal histogram.
    """
    background = key * 0.75 + 0.3 * _smooth_noise(rng, shape, scale=8)
    face = _gaussian_blob(shape, center=(0.5 + 0.1 * rng.standard_normal(),
                                         0.45 + 0.1 * rng.standard_normal()),
                          sigma=(0.22, 0.28))
    hair = _gaussian_blob(shape, center=(0.5, 0.12), sigma=(0.45, 0.15))
    scene = background + contrast * (0.55 * face - 0.35 * hair)
    scene += 0.05 * rng.standard_normal(shape)
    return scene


def _scene_landscape(rng: np.random.Generator, shape: tuple[int, int],
                     key: float, contrast: float) -> np.ndarray:
    """Landscape scene: bright sky over darker ground, mild bimodality.

    Models *Autumn*, *Trees*, *Sail*, *West*: two broad intensity clusters.
    """
    _, v = _coordinate_grid(shape)
    horizon = 0.45 + 0.1 * rng.random()
    sky = np.clip((horizon - v) / horizon, 0.0, 1.0)
    ground_texture = _smooth_noise(rng, shape, scale=6)
    scene = key + contrast * (0.5 * sky - 0.25) + 0.3 * contrast * (
        ground_texture - 0.5) * (v > horizon)
    scene += 0.04 * rng.standard_normal(shape)
    return scene


def _scene_still_life(rng: np.random.Generator, shape: tuple[int, int],
                      key: float, contrast: float) -> np.ndarray:
    """Still-life scene: several bright objects on a dark table.

    Models *Peppers*, *Pears*, *Onion*, *Splash*: multi-modal histogram with
    a dark background mode and several object modes.
    """
    scene = key * 0.6 + 0.15 * _smooth_noise(rng, shape, scale=10)
    n_objects = 4 + int(rng.integers(0, 3))
    for _ in range(n_objects):
        center = tuple(0.15 + 0.7 * rng.random(2))
        sigma = tuple(0.06 + 0.12 * rng.random(2))
        brightness = 0.3 + 0.7 * rng.random()
        scene += contrast * brightness * _gaussian_blob(shape, center, sigma)
    scene += 0.04 * rng.standard_normal(shape)
    return scene


def _scene_texture(rng: np.random.Generator, shape: tuple[int, int],
                   key: float, contrast: float) -> np.ndarray:
    """Dense texture: near-uniform, wide histogram.

    Models *Baboon*, *Greens*, *Football*: lots of high-frequency detail so
    nearly every grayscale level is populated — the hardest case for
    dynamic-range compression (Sec. 3: "for an image with a histogram which
    is uniformly populated ... discarding any grayscale level can cause a
    significant image distortion").
    """
    fine = _texture(rng, shape, frequency=9.0 + 6.0 * rng.random())
    coarse = _smooth_noise(rng, shape, scale=5)
    scene = key + contrast * (0.6 * fine + 0.6 * coarse - 0.6)
    scene += 0.06 * rng.standard_normal(shape)
    return scene


def _scene_low_key(rng: np.random.Generator, shape: tuple[int, int],
                   key: float, contrast: float) -> np.ndarray:
    """Dark, low-contrast scene with a narrow histogram near the bottom.

    Models *Pout*, *TreeA*: most pixels in a narrow dark band — the easiest
    case for aggressive backlight dimming.
    """
    base = key * 0.5 + 0.2 * _smooth_noise(rng, shape, scale=7)
    highlight = _gaussian_blob(shape, center=(0.5, 0.5), sigma=(0.3, 0.3))
    scene = base + contrast * 0.25 * highlight
    scene += 0.03 * rng.standard_normal(shape)
    return scene


def _scene_architecture(rng: np.random.Generator, shape: tuple[int, int],
                        key: float, contrast: float) -> np.ndarray:
    """Architectural scene: piecewise-constant patches and strong edges.

    Models *HouseA*, *West*: plateau-heavy histogram with a few tall spikes.
    """
    u, v = _coordinate_grid(shape)
    scene = np.full(shape, key * 0.8)
    n_blocks = 6 + int(rng.integers(0, 4))
    for _ in range(n_blocks):
        u0, v0 = rng.random(2) * 0.8
        du, dv = 0.1 + 0.3 * rng.random(2)
        level = key + contrast * (rng.random() - 0.5)
        mask = (u >= u0) & (u <= u0 + du) & (v >= v0) & (v <= v0 + dv)
        scene = np.where(mask, level, scene)
    scene += 0.02 * rng.standard_normal(shape)
    return scene


def _scene_test_pattern(rng: np.random.Generator, shape: tuple[int, int],
                        key: float, contrast: float) -> np.ndarray:
    """Synthetic test chart: ramps, bars and a checkerboard.

    Models *Testpat*: a deliberately near-uniform histogram covering the full
    dynamic range, the stress case for histogram equalization.
    """
    del rng, key, contrast  # the chart is fully deterministic
    height, width = shape
    u, v = _coordinate_grid(shape)
    ramp = u.copy()
    bars = np.floor(u * 8) / 7.0
    checker = ((np.floor(u * 16) + np.floor(v * 16)) % 2)
    scene = np.where(v < 1 / 3, ramp, np.where(v < 2 / 3, bars, checker))
    return scene


_SceneBuilder = Callable[[np.random.Generator, tuple[int, int], float, float],
                         np.ndarray]

_SCENE_BUILDERS: dict[str, _SceneBuilder] = {
    "portrait": _scene_portrait,
    "landscape": _scene_landscape,
    "still_life": _scene_still_life,
    "texture": _scene_texture,
    "low_key": _scene_low_key,
    "architecture": _scene_architecture,
    "test_pattern": _scene_test_pattern,
}


# --------------------------------------------------------------------- #
# benchmark specification
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SyntheticImageSpec:
    """Recipe for one synthetic benchmark image.

    Parameters
    ----------
    name:
        Benchmark name (matches the rows of Table 1 in the paper).
    scene:
        Which scene builder to use (``portrait``, ``landscape``,
        ``still_life``, ``texture``, ``low_key``, ``architecture`` or
        ``test_pattern``).
    key:
        Target mean luminance in ``[0, 1]`` ("high key" = bright image).
    contrast:
        Target spread of the histogram in ``[0, 1]``.
    size:
        Output image size ``(height, width)``.
    """

    name: str
    scene: str
    key: float
    contrast: float
    size: tuple[int, int] = field(default=_DEFAULT_SIZE)

    def __post_init__(self) -> None:
        if self.scene not in _SCENE_BUILDERS:
            raise ValueError(
                f"unknown scene type {self.scene!r}; expected one of "
                f"{sorted(_SCENE_BUILDERS)}"
            )
        if not 0.0 <= self.key <= 1.0:
            raise ValueError(f"key must be in [0, 1], got {self.key}")
        if not 0.0 < self.contrast <= 2.0:
            raise ValueError(f"contrast must be in (0, 2], got {self.contrast}")
        if len(self.size) != 2 or min(self.size) < 8:
            raise ValueError(f"size must be (H, W) with H, W >= 8, got {self.size}")


#: Synthetic recipes for the 19 Table-1 benchmarks.  Scene type, key and
#: contrast are chosen to mimic the well-known originals (e.g. *Baboon* is a
#: wide-histogram texture, *Pout* is a dark low-contrast portrait).
BENCHMARK_SPECS: dict[str, SyntheticImageSpec] = {
    spec.name: spec
    for spec in [
        SyntheticImageSpec("lena", "portrait", key=0.52, contrast=1.00),
        SyntheticImageSpec("autumn", "landscape", key=0.45, contrast=1.10),
        SyntheticImageSpec("football", "texture", key=0.40, contrast=1.00),
        SyntheticImageSpec("peppers", "still_life", key=0.42, contrast=1.20),
        SyntheticImageSpec("greens", "texture", key=0.48, contrast=0.90),
        SyntheticImageSpec("pears", "still_life", key=0.55, contrast=0.90),
        SyntheticImageSpec("onion", "still_life", key=0.47, contrast=1.10),
        SyntheticImageSpec("trees", "landscape", key=0.40, contrast=1.00),
        SyntheticImageSpec("west", "architecture", key=0.50, contrast=1.10),
        SyntheticImageSpec("pout", "low_key", key=0.35, contrast=0.55),
        SyntheticImageSpec("sail", "landscape", key=0.55, contrast=0.80),
        SyntheticImageSpec("splash", "still_life", key=0.38, contrast=1.30),
        SyntheticImageSpec("girl", "portrait", key=0.50, contrast=0.90),
        SyntheticImageSpec("baboon", "texture", key=0.50, contrast=1.30),
        SyntheticImageSpec("treea", "low_key", key=0.38, contrast=0.70),
        SyntheticImageSpec("housea", "architecture", key=0.48, contrast=1.00),
        SyntheticImageSpec("girlb", "portrait", key=0.45, contrast=1.10),
        SyntheticImageSpec("testpat", "test_pattern", key=0.50, contrast=1.00),
        SyntheticImageSpec("elaine", "portrait", key=0.55, contrast=0.90),
    ]
}

#: Table-1 display names keyed by the canonical lowercase benchmark name.
TABLE1_DISPLAY_NAMES: dict[str, str] = {
    "lena": "Lena", "autumn": "Autumn", "football": "football",
    "peppers": "Peppers", "greens": "Greens", "pears": "Pears",
    "onion": "Onion", "trees": "Trees", "west": "West", "pout": "Pout",
    "sail": "Sail", "splash": "Splash", "girl": "Girl", "baboon": "Baboon",
    "treea": "TreeA", "housea": "HouseA", "girlb": "GirlB",
    "testpat": "Testpat", "elaine": "Elaine",
}


# --------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------- #
def generate(spec: SyntheticImageSpec, bit_depth: int = 8) -> Image:
    """Generate the synthetic image described by ``spec``.

    The output is deterministic for a given ``spec``: the random stream is
    seeded from the benchmark name.
    """
    rng = np.random.default_rng(_seed_for(spec.name))
    builder = _SCENE_BUILDERS[spec.scene]
    scene = builder(rng, spec.size, spec.key, spec.contrast)

    # Re-center and re-scale to hit the requested key and contrast without
    # clipping more than the tails: robust scaling by the 1st/99th percentile.
    low, high = np.percentile(scene, [1.0, 99.0])
    if high <= low:
        normalized = np.full(spec.size, spec.key)
    else:
        normalized = (scene - low) / (high - low)
    centered = (normalized - normalized.mean()) * spec.contrast + spec.key
    return Image.from_float(centered, bit_depth=bit_depth, name=spec.name)


def benchmark_names() -> list[str]:
    """Names of the 19 synthetic benchmarks (Table 1 rows, canonical order)."""
    return list(BENCHMARK_SPECS)


def load_benchmark(name: str, bit_depth: int = 8,
                   size: tuple[int, int] | None = None) -> Image:
    """Load one synthetic benchmark image by (case-insensitive) name."""
    key = name.lower()
    if key not in BENCHMARK_SPECS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        )
    spec = BENCHMARK_SPECS[key]
    if size is not None:
        spec = SyntheticImageSpec(spec.name, spec.scene, spec.key,
                                  spec.contrast, size)
    return generate(spec, bit_depth=bit_depth)


def benchmark_suite(bit_depth: int = 8,
                    size: tuple[int, int] | None = None) -> dict[str, Image]:
    """Load the full 19-image synthetic suite as ``{name: Image}``."""
    return {name: load_benchmark(name, bit_depth=bit_depth, size=size)
            for name in benchmark_names()}
