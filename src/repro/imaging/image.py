"""Image container used throughout the reproduction.

The paper operates on 8-bit grayscale images (pixel values ``X`` in
``[0, 255]``) and, for colour LCDs, on each colour channel independently
(Sec. 2).  :class:`Image` wraps a numpy array, records the bit depth, and
offers the handful of conversions the algorithms need (grayscale/RGB,
normalized float view, per-channel access).

The container is deliberately small: all heavy lifting is done on the
underlying arrays by the functions in :mod:`repro.imaging.ops`,
:mod:`repro.core` and :mod:`repro.quality`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["Image"]

#: ITU-R BT.601 luma weights, also used by the paper's reference text
#: (Pratt, "Digital Image Processing") for grayscale conversion.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


@dataclass(frozen=True)
class Image:
    """A grayscale or RGB raster image with an explicit bit depth.

    Parameters
    ----------
    pixels:
        ``(H, W)`` array for grayscale or ``(H, W, 3)`` array for RGB.  Any
        integer or float dtype is accepted; values are stored as
        ``numpy.uint16`` internally (wide enough for depths up to 16 bits)
        and validated against ``bit_depth``.
    bit_depth:
        Number of bits per channel.  The paper uses 8 (grayscale levels
        ``0..255``).
    name:
        Optional human-readable identifier (benchmark name, file stem, ...).

    Notes
    -----
    Instances are frozen dataclasses; the pixel array is set to read-only so
    that accidental in-place mutation of a shared benchmark image is caught
    early.  Use :meth:`with_pixels` to derive a modified copy.
    """

    pixels: np.ndarray
    bit_depth: int = 8
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels)
        if pixels.ndim not in (2, 3):
            raise ValueError(
                f"expected a (H, W) or (H, W, 3) array, got shape {pixels.shape}"
            )
        if pixels.ndim == 3 and pixels.shape[2] != 3:
            raise ValueError(
                f"colour images must have exactly 3 channels, got {pixels.shape[2]}"
            )
        if pixels.size == 0:
            raise ValueError("image must contain at least one pixel")
        if not 1 <= self.bit_depth <= 16:
            raise ValueError(f"bit_depth must be in [1, 16], got {self.bit_depth}")

        max_level = (1 << self.bit_depth) - 1
        values = np.rint(np.asarray(pixels, dtype=np.float64))
        if values.min() < 0 or values.max() > max_level:
            raise ValueError(
                "pixel values out of range for bit depth "
                f"{self.bit_depth}: [{values.min()}, {values.max()}] not within "
                f"[0, {max_level}]"
            )
        stored = values.astype(np.uint16)
        stored.setflags(write=False)
        object.__setattr__(self, "pixels", stored)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Number of pixel rows."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Number of pixel columns."""
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying pixel array."""
        return tuple(self.pixels.shape)

    @property
    def n_pixels(self) -> int:
        """Number of pixels (``H * W``), independent of channel count."""
        return self.height * self.width

    @property
    def n_channels(self) -> int:
        """1 for grayscale, 3 for RGB."""
        return 1 if self.pixels.ndim == 2 else 3

    @property
    def is_grayscale(self) -> bool:
        """Whether the image has a single channel."""
        return self.n_channels == 1

    @property
    def max_level(self) -> int:
        """Largest representable pixel value, e.g. 255 for 8-bit images."""
        return (1 << self.bit_depth) - 1

    @property
    def levels(self) -> int:
        """Number of representable grayscale levels (``max_level + 1``)."""
        return 1 << self.bit_depth

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_float(
        cls, values: np.ndarray, bit_depth: int = 8, name: str = ""
    ) -> "Image":
        """Build an image from normalized float values in ``[0, 1]``.

        Values are clipped to ``[0, 1]`` and quantized to the requested bit
        depth (the paper's normalized pixel value ``x = X / 255``).
        """
        values = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        max_level = (1 << bit_depth) - 1
        return cls(np.rint(values * max_level), bit_depth=bit_depth, name=name)

    @classmethod
    def constant(
        cls, level: int, shape: tuple[int, int] = (64, 64), bit_depth: int = 8,
        name: str = "",
    ) -> "Image":
        """A flat image where every pixel holds ``level``."""
        return cls(np.full(shape, level, dtype=np.uint16), bit_depth=bit_depth,
                   name=name)

    # ------------------------------------------------------------------ #
    # views and conversions
    # ------------------------------------------------------------------ #
    def as_float(self) -> np.ndarray:
        """Pixel values normalized to ``[0, 1]`` as ``float64``."""
        return self.pixels.astype(np.float64) / float(self.max_level)

    def as_array(self) -> np.ndarray:
        """A writable copy of the raw pixel values."""
        return np.array(self.pixels, dtype=np.uint16, copy=True)

    def to_grayscale(self) -> "Image":
        """Collapse RGB to a single luma channel (BT.601 weights).

        Grayscale images are returned unchanged.  This mirrors how the paper
        treats colour LCDs: the transformation is derived from (and applied
        to) the luminance statistics of the image.
        """
        if self.is_grayscale:
            return self
        luma = self.pixels.astype(np.float64) @ _LUMA_WEIGHTS
        return Image(np.rint(luma), bit_depth=self.bit_depth,
                     name=self.name or "")

    def channel(self, index: int) -> "Image":
        """Return a single channel of an RGB image as a grayscale image."""
        if self.is_grayscale:
            if index != 0:
                raise IndexError("grayscale images only have channel 0")
            return self
        if not 0 <= index < 3:
            raise IndexError(f"channel index {index} out of range")
        return Image(self.pixels[:, :, index], bit_depth=self.bit_depth,
                     name=f"{self.name}[{index}]" if self.name else "")

    def channels(self) -> Iterator["Image"]:
        """Iterate over the channels of the image (one for grayscale)."""
        for index in range(self.n_channels):
            yield self.channel(index)

    def with_pixels(self, pixels: np.ndarray, name: str | None = None) -> "Image":
        """Derive a new image with the same bit depth but new pixel data."""
        return Image(pixels, bit_depth=self.bit_depth,
                     name=self.name if name is None else name)

    def with_name(self, name: str) -> "Image":
        """Derive a copy with a different name."""
        return Image(self.pixels, bit_depth=self.bit_depth, name=name)

    # ------------------------------------------------------------------ #
    # statistics used by the algorithms
    # ------------------------------------------------------------------ #
    def min(self) -> int:
        """Smallest pixel value present in the image."""
        return int(self.pixels.min())

    def max(self) -> int:
        """Largest pixel value present in the image."""
        return int(self.pixels.max())

    def mean(self) -> float:
        """Mean pixel value."""
        return float(self.pixels.mean())

    def std(self) -> float:
        """Population standard deviation of the pixel values."""
        return float(self.pixels.std())

    def dynamic_range(self) -> int:
        """``max - min`` of the pixel values (the paper's range ``R``)."""
        return self.max() - self.min()

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (
            self.bit_depth == other.bit_depth
            and self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self) -> int:  # frozen dataclass with array field
        return hash((self.bit_depth, self.pixels.shape, self.pixels.tobytes()))

    def __repr__(self) -> str:
        kind = "grayscale" if self.is_grayscale else "rgb"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Image({kind}{label}, {self.width}x{self.height}, "
            f"{self.bit_depth}-bit)"
        )
