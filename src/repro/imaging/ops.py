"""Pixel-level operations shared by the HEBS core and the baselines.

These functions are the "array layer": they work on raw integer pixel
arrays or on :class:`~repro.imaging.image.Image` containers and implement the
handful of primitives the paper relies on — look-up-table (LUT) application
(how the LCD reference driver realizes a pixel transformation), clipping /
saturation, dynamic-range measurement, and simple brightness / contrast
adjustments used by the baseline techniques of Fig. 2.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "to_float",
    "to_uint",
    "apply_lut",
    "clip_pixels",
    "dynamic_range",
    "occupied_range",
    "adjust_brightness",
    "adjust_contrast",
    "normalize",
    "saturation_fraction",
    "quantize_levels",
]


def to_float(image: Image | np.ndarray, bit_depth: int = 8) -> np.ndarray:
    """Return pixel values normalized to ``[0, 1]`` as ``float64``.

    Accepts either an :class:`Image` (its own bit depth is used) or a raw
    integer array together with ``bit_depth``.
    """
    if isinstance(image, Image):
        return image.as_float()
    max_level = (1 << bit_depth) - 1
    return np.asarray(image, dtype=np.float64) / float(max_level)


def to_uint(values: np.ndarray, bit_depth: int = 8) -> np.ndarray:
    """Quantize normalized float values in ``[0, 1]`` to integer levels.

    Values outside ``[0, 1]`` are clipped (saturated), which is exactly what
    the display hardware does when a compensated pixel value exceeds the
    representable range (the source of distortion in ref. [4]).
    """
    max_level = (1 << bit_depth) - 1
    clipped = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    return np.rint(clipped * max_level).astype(np.uint16)


def apply_lut(image: Image, lut: np.ndarray) -> Image:
    """Apply a look-up table mapping every grayscale level to a new level.

    ``lut`` must have ``image.levels`` entries; entry ``i`` gives the output
    level for input level ``i``.  This is the software equivalent of
    programming the grayscale-voltage transfer function of the source driver
    (Sec. 2): every pixel of value ``X`` is displayed at level ``lut[X]``.

    Output values are clipped to the representable range, mirroring the
    saturation behaviour of the reference-voltage driver.
    """
    lut = np.asarray(lut, dtype=np.float64)
    if lut.ndim != 1 or lut.shape[0] != image.levels:
        raise ValueError(
            f"LUT must have {image.levels} entries, got shape {lut.shape}"
        )
    clipped = np.clip(np.rint(lut), 0, image.max_level).astype(np.uint16)
    return image.with_pixels(clipped[image.pixels])


def clip_pixels(image: Image, low: int, high: int) -> Image:
    """Saturate pixel values to the band ``[low, high]``.

    This models the single-band clamping of ref. [5] (Fig. 2d): values below
    ``low`` are raised to ``low`` and values above ``high`` are lowered to
    ``high``.
    """
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    if low < 0 or high > image.max_level:
        raise ValueError(
            f"band [{low}, {high}] outside representable range "
            f"[0, {image.max_level}]"
        )
    return image.with_pixels(np.clip(image.pixels, low, high))


def dynamic_range(image: Image | np.ndarray) -> int:
    """Difference between the largest and smallest pixel value present.

    This is the paper's dynamic range ``R``: the quantity HEBS minimizes
    subject to the distortion budget, because the admissible backlight
    scaling factor is (approximately) proportional to it.
    """
    pixels = image.pixels if isinstance(image, Image) else np.asarray(image)
    return int(pixels.max()) - int(pixels.min())


def occupied_range(image: Image | np.ndarray) -> tuple[int, int]:
    """Return ``(min, max)`` pixel values present in the image."""
    pixels = image.pixels if isinstance(image, Image) else np.asarray(image)
    return int(pixels.min()), int(pixels.max())


def adjust_brightness(image: Image, offset: float) -> Image:
    """Add a constant offset (in normalized units) to every pixel.

    ``offset`` is expressed as a fraction of the full range, e.g. 0.1 adds
    25.5 levels to an 8-bit image.  Results saturate at the range ends.
    This is the elementary operation behind the "brightness compensation"
    baseline (Eq. 2a with offset ``1 - beta``).
    """
    shifted = image.as_float() + float(offset)
    return image.with_pixels(to_uint(shifted, image.bit_depth))


def adjust_contrast(image: Image, gain: float, pivot: float = 0.0) -> Image:
    """Scale pixel values by ``gain`` around ``pivot`` (normalized units).

    ``pivot = 0`` reproduces the "contrast enhancement" baseline
    (Eq. 2b with gain ``1 / beta``); a mid-gray pivot of 0.5 gives the usual
    contrast control of a display.  Results saturate at the range ends.
    """
    if gain < 0:
        raise ValueError("contrast gain must be non-negative")
    values = image.as_float()
    scaled = (values - pivot) * float(gain) + pivot
    return image.with_pixels(to_uint(scaled, image.bit_depth))


def normalize(image: Image) -> Image:
    """Stretch the image so its pixel values span the full ``[0, max]`` range.

    A flat image (zero dynamic range) is returned unchanged.
    """
    low, high = occupied_range(image)
    if high == low:
        return image
    values = (image.pixels.astype(np.float64) - low) / (high - low)
    return image.with_pixels(to_uint(values, image.bit_depth))


def saturation_fraction(original: Image, transformed: Image) -> float:
    """Fraction of pixels saturated by a transformation.

    Ref. [4] evaluates image distortion as "the percentage of saturated
    pixels that exceed the range of pixel values".  A pixel counts as
    saturated when it sits at the extreme of the representable range in the
    transformed image but did not in the original (i.e. information was
    lost to clipping).
    """
    if original.shape != transformed.shape:
        raise ValueError("images must have the same shape")
    max_level = transformed.max_level
    at_extreme = (transformed.pixels == 0) | (transformed.pixels == max_level)
    was_extreme = (original.pixels == 0) | (original.pixels == original.max_level)
    newly_saturated = at_extreme & ~was_extreme
    return float(newly_saturated.mean())


def quantize_levels(image: Image, n_levels: int) -> Image:
    """Requantize the image to ``n_levels`` evenly spaced grayscale levels.

    Used by the driver model to emulate a source driver that can only
    produce a limited number of distinct grayscale voltages.
    """
    if n_levels < 2:
        raise ValueError("need at least two quantization levels")
    values = image.as_float()
    quantized = np.rint(values * (n_levels - 1)) / (n_levels - 1)
    return image.with_pixels(to_uint(quantized, image.bit_depth))
