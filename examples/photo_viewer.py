#!/usr/bin/env python3
"""Photo-viewer power budget: HEBS versus the prior techniques on a slideshow.

The scenario the paper's introduction motivates: a battery-powered device
showing stills (photo viewer / image gallery).  Every displayed photo gets a
per-image backlight policy; the question is how much display energy a whole
viewing session costs under each technique at the same visual-quality budget.

Usage::

    python examples/photo_viewer.py [MAX_DISTORTION] [SECONDS_PER_PHOTO]

Defaults: 10% distortion budget, 5 seconds per photo, the full 19-image
synthetic benchmark suite as the photo album.
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import Table
from repro.bench.suite import benchmark_images, default_engine


def main(argv: list[str]) -> None:
    budget = float(argv[1]) if len(argv) > 1 else 10.0
    seconds_per_photo = float(argv[2]) if len(argv) > 2 else 5.0
    album = benchmark_images()

    print(f"photo album          : {len(album)} images")
    print(f"distortion budget    : {budget:.1f}%")
    print(f"viewing time per photo: {seconds_per_photo:.0f} s")
    print()

    # Every technique runs through the one engine; the solution cache
    # means re-viewing a photo (or re-running the session) costs a LUT apply.
    engine = default_engine()
    methods = {
        "hebs": "hebs-adaptive",
        "cbcs [5]": "cbcs",
        "dls-contrast [4]": "dls-contrast",
        "dls-brightness [4]": "dls-brightness",
    }

    # One batch per technique; every outcome also carries the reference
    # (full backlight, no transformation) power for the energy baseline.
    outcomes = {
        name: engine.process_batch(list(album.values()), budget,
                                   algorithm=algorithm)
        for name, algorithm in methods.items()
    }
    reference_energy = sum(
        outcome.reference_power.total * seconds_per_photo
        for outcome in next(iter(outcomes.values())))

    table = Table(
        title=f"Display energy for the viewing session (distortion <= {budget:g}%)",
        columns=("method", "energy (norm. J)", "saving %", "mean backlight",
                 "mean distortion %"),
    )
    rows = []
    for name in methods:
        energy = 0.0
        backlights = []
        distortions = []
        for outcome in outcomes[name]:
            energy += outcome.power.total * seconds_per_photo
            backlights.append(outcome.backlight_factor)
            distortions.append(outcome.distortion)
        rows.append({
            "method": name,
            "energy (norm. J)": energy,
            "saving %": 100.0 * (1.0 - energy / reference_energy),
            "mean backlight": sum(backlights) / len(backlights),
            "mean distortion %": sum(distortions) / len(distortions),
        })
    rows.append({
        "method": "full backlight",
        "energy (norm. J)": reference_energy,
        "saving %": 0.0,
        "mean backlight": 1.0,
        "mean distortion %": 0.0,
    })

    print(table.with_rows(rows).render())
    print()
    best_baseline = max(row["saving %"] for row in rows[1:-1])
    hebs_saving = rows[0]["saving %"]
    print(f"HEBS advantage over the best prior technique: "
          f"{hebs_saving - best_baseline:.1f} percentage points")
    stats = engine.cache_stats
    print(f"engine solution cache: {stats.hits} hits / {stats.misses} "
          f"misses — re-view the album (or re-run a method) and the solves "
          f"are free")


if __name__ == "__main__":
    main(sys.argv)
