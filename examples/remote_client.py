#!/usr/bin/env python3
"""Remote serving end to end: a TCP server, a client SDK, O(histogram) RPCs.

The paper's real-time flow (Fig. 4) solves once per *histogram* and replays
a cheap per-pixel LUT — which means a backlight-scaling service never needs
to see pixels.  This demo runs both ends of that conversation in one
process (over a real loopback socket):

1. starts a :class:`repro.serve.NetworkServer` — the asyncio front end over
   the micro-batching worker pool — on a free port,
2. connects a :class:`repro.client.Client` and compares the two request
   shapes: ``compensate`` (histogram up, solution down, LUT applied
   locally — O(histogram) bandwidth) versus ``process`` (whole image both
   ways), confirming the outputs are **bit-identical**,
3. streams a short clip through a :class:`repro.client.RemoteSession`
   (the push-based video surface, temporal state server-side), and
4. prints the server's statistics snapshot fetched over the ``stats`` RPC.

Against a real deployment, replace the in-process server with::

    repro serve --host 0.0.0.0 --port 7095          # on the server box
    Client(host="server-box", port=7095)            # in your code

Usage::

    python examples/remote_client.py [MAX_DISTORTION]

Default: 10% distortion budget.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.bench.suite import benchmark_images, default_engine
from repro.client import Client
from repro.serve import NetworkServer, Server


def main(argv: list[str]) -> None:
    budget = float(argv[1]) if len(argv) > 1 else 10.0
    suite = benchmark_images(names=("lena", "peppers", "baboon", "pout"))
    images = list(suite.values())

    # -- 1. the server side -------------------------------------------- #
    server = Server(engine=default_engine(), workers=4)
    network = NetworkServer(server)
    host, port = network.start()
    print(f"server            : listening on {host}:{port} (protocol v1+v2)")
    primed = server.warmup(suite, budgets=(budget,))
    print(f"warm-up           : {primed} solutions pre-solved")
    print()

    try:
        with Client(host=host, port=port) as client:
            # -- 2. histogram-only solve vs full-image process ---------- #
            image = suite["lena"]
            applied = client.compensate(image, budget)
            result = client.process(image, budget)
            histogram_bytes = len(json.dumps(
                [int(n) for n in np.bincount(
                    image.pixels.reshape(-1), minlength=256)]))
            pixel_bytes = image.pixels.nbytes
            print(f"compensate (solve RPC): backlight "
                  f"{applied.backlight_factor:.3f}, shipped "
                  f"~{histogram_bytes} histogram bytes")
            print(f"process (image RPC)   : backlight "
                  f"{result.backlight_factor:.3f}, shipped "
                  f"~{pixel_bytes} pixel bytes each way")
            identical = np.array_equal(applied.output.pixels,
                                       result.output.pixels)
            print(f"outputs bit-identical : {identical}")
            assert identical
            print()

            # -- 3. a video stream over the wire ------------------------ #
            clip = images * 3      # 12 frames cycling 4 scenes
            with client.open_session(budget) as session:
                outcomes = [session.submit(frame) for frame in clip]
            trace = [outcome.applied_backlight for outcome in outcomes]
            steps = [abs(b - a) for a, b in zip(trace, trace[1:])]
            print(f"remote session    : {len(outcomes)} frames, applied "
                  f"backlight {trace[0]:.3f} -> {trace[-1]:.3f}")
            print(f"flicker bound     : worst step "
                  f"{max(steps):.3f} (smoother max_step 0.05)")
            print()

            # -- 4. the server's own view ------------------------------- #
            stats = client.stats()
            print("server statistics (via the stats RPC):")
            print(f"  completed           : {stats.completed}")
            print(f"  mean batch size     : {stats.mean_batch_size:.2f}")
            print(f"  cache hit rate      : {100 * stats.cache.hit_rate:.1f}%")
            print(f"  sessions opened     : {stats.sessions_opened}")
            for session_id, entry in stats.sessions.items():
                print(f"  session {session_id}      : {entry.frames} frames, "
                      f"p95 {1e3 * entry.latency_p95:.1f} ms")
    finally:
        network.close()
    print()
    print("server closed; pixels never left the client for the solve path.")


if __name__ == "__main__":
    main(sys.argv)
