#!/usr/bin/env python3
"""Quickstart: run HEBS on one image and inspect the result.

Usage::

    python examples/quickstart.py [IMAGE] [MAX_DISTORTION]

``IMAGE`` is either the name of a built-in synthetic benchmark (``lena``,
``peppers``, ``baboon``, ...) or the path to a ``.pgm`` / ``.ppm`` / ``.csv``
file; it defaults to ``lena``.  ``MAX_DISTORTION`` is the distortion budget
in percent (default 10).

The script walks through the four HEBS steps (Fig. 4 of the paper):

1. distortion budget -> minimum admissible dynamic range (characteristic curve)
2. dynamic range -> optimum backlight scaling factor
3. global histogram equalization -> exact pixel transformation
4. piecewise linear coarsening -> driver programming + transformed image

and prints the resulting power saving and achieved distortion.

The run goes through the unified :class:`repro.api.Engine`, the canonical
entry point since the API redesign; the per-step printout reaches into
``result.details`` (the native HEBS record) to show the internals.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.suite import benchmark_images, default_engine
from repro.imaging.io import read_image
from repro.imaging.synthetic import benchmark_names


def load(source: str):
    """Load a built-in benchmark by name or an image file by path."""
    if source.lower() in benchmark_names():
        return benchmark_images(names=(source,))[source.lower()]
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"unknown image {source!r}: pass a benchmark name "
            f"({', '.join(benchmark_names())}) or a .pgm/.ppm/.csv path"
        )
    return read_image(path)


def main(argv: list[str]) -> None:
    source = argv[1] if len(argv) > 1 else "lena"
    budget = float(argv[2]) if len(argv) > 2 else 10.0

    image = load(source).to_grayscale()
    print(f"image: {image!r}")
    print(f"  occupied dynamic range : {image.dynamic_range()} levels")
    print(f"  mean / std             : {image.mean():.1f} / {image.std():.1f}")
    print(f"distortion budget        : {budget:.1f}%")
    print()

    print("characterizing the display (builds the distortion characteristic "
          "curve on the 19-image synthetic suite, cached per process) ...")
    engine = default_engine()

    # One call runs all four steps; the normalized result carries the
    # native HEBS record in .details for the step-by-step narration.
    result = engine.process(image, budget)
    adaptive = engine.process(image, budget, algorithm="hebs-adaptive")
    hebs = result.details

    print(f"step 1: minimum admissible dynamic range R = {hebs.target_range}")
    print(f"step 2: backlight scaling factor beta      = "
          f"{result.backlight_factor:.3f}")
    print(f"step 3: GHE objective (distance from uniform) = "
          f"{hebs.ghe.objective:.4f}")
    print(f"step 4: PLC segments = {hebs.coarse_curve.n_segments}, "
          f"mean squared error = {hebs.coarse_curve.mean_squared_error:.2f}")
    print(f"        reference voltages (V): "
          f"{[round(float(v), 3) for v in result.driver_program.reference_voltages]}")
    print()

    def report(tag, res):
        print(f"{tag}:")
        print(f"  algorithm         : {res.algorithm}")
        print(f"  dynamic range     : {res.details.target_range}")
        print(f"  backlight factor  : {res.backlight_factor:.3f}")
        print(f"  achieved distortion: {res.distortion:.2f}%")
        print(f"  display power     : {res.power.total:.3f} "
              f"(reference {res.reference_power.total:.3f})")
        print(f"  power saving      : {res.power_saving_percent:.2f}%")

    report("curve-based selection (the paper's real-time flow)", result)
    print()
    report("per-image adaptive selection (the Table-1 variant)", adaptive)
    print()
    stats = engine.cache_stats
    print(f"(engine solution cache: {stats.hits} hits / {stats.misses} "
          f"misses — rerun the same image and the solve is free)")


if __name__ == "__main__":
    main(sys.argv)
