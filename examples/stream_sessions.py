#!/usr/bin/env python3
"""Multi-stream serving: N video clients on one compensation server.

``examples/video_playback.py`` compensates *one* clip through the pull-style
``Engine.process_stream``.  This example shows the push-based session API
that serves *many* concurrent streams — the shape of a fleet of devices (or
one device with picture-in-picture) sharing a compensation service:

1. every client opens a long-lived stream session on a shared
   :class:`repro.serve.Server` (``server.open_session``) with its own
   smoother, and pushes frames one at a time the way a decoder paces a
   display;
2. the server interleaves frames from all sessions (plus any one-shot
   traffic) into shared micro-batches, so similar content across streams
   pays one solve through the engine's histogram-keyed cache;
3. each session's temporal state stays private: the per-stream backlight
   traces are verified against the flicker bound at the end, and the
   per-session latency stats come out of ``server.stats()``.

It also demonstrates the engine-level fast path (``scene_gated_solve``):
a session that skips the per-frame solve entirely while the scene is
steady, re-deriving only on cuts and rolling-histogram drift.

Usage::

    python examples/stream_sessions.py [N_SESSIONS] [N_FRAMES]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.bench.suite import benchmark_images, default_engine
from repro.core.temporal import BacklightSmoother
from repro.serve import Server, run_stream_load

MAX_STEP = 0.05
BUDGET = 10.0


def synthesize_clips(n_sessions: int, n_frames: int, hold: int = 3) -> list:
    """One clip per session: each walks the benchmark suite with its own
    phase offset, holding every scene for ``hold`` frames (video is mostly
    static — the regime the rolling cache exploits)."""
    suite = list(benchmark_images().values())
    return [[suite[(offset + index // hold) % len(suite)]
             for index in range(n_frames)]
            for offset in range(n_sessions)]


def main(argv: list[str]) -> None:
    n_sessions = int(argv[1]) if len(argv) > 1 else 6
    n_frames = int(argv[2]) if len(argv) > 2 else 18
    clips = synthesize_clips(n_sessions, n_frames)

    print(f"{n_sessions} concurrent video sessions x {n_frames} frames, "
          f"budget {BUDGET:.0f}%, flicker limit {MAX_STEP}")
    print()

    # --- the server: shared engine, shared cache, shared micro-batches ----
    engine = default_engine(algorithm="hebs-adaptive", signature_bins=8)
    with Server(engine=engine, workers=4, max_delay=0.005) as server:
        started = time.perf_counter()
        report = run_stream_load(
            server, clips, BUDGET,
            session_options=lambda index: {
                "smoother": BacklightSmoother(max_step=MAX_STEP)})
        elapsed = time.perf_counter() - started

        print(f"served {report.frames} frames in {elapsed:.2f}s "
              f"({report.throughput:.1f} frames/s across all streams)")
        print(f"frame latency p50/p95: {1e3 * report.latency_p50:.1f} / "
              f"{1e3 * report.latency_p95:.1f} ms")

        stats = report.stats
        print(f"engine batches: {stats.batches} "
              f"(mean {stats.mean_batch_size:.2f} frames/batch — "
              f"different sessions share ticks)")
        print(f"cache: {100 * stats.cache.hit_rate:.0f}% hit rate, "
              f"{100 * stats.cache.reuse_rate:.0f}% of frames reused a "
              f"solution")
        print()

        print("per-session p95 frame latency (server-side):")
        for sid, entry in sorted(stats.sessions.items()):
            print(f"  {sid}: {1e3 * entry.latency_p95:6.1f} ms "
                  f"over {entry.frames} frames")
        print()

        worst = report.worst_step()
        print(f"worst frame-to-frame backlight step of any session: "
              f"{worst:.3f}")
        if worst <= MAX_STEP + 1e-9:
            print("flicker constraint met on every stream")
        print()

    # --- the engine-level fast path: steady scenes skip the solve ---------
    print("steady-scene fast path (scene_gated_solve=True):")
    fast_engine = default_engine(algorithm="hebs-adaptive")
    scenes = list(benchmark_images(names=("lena", "pout")).values())
    clip = [frame for frame in scenes for _ in range(6)]     # 2 steady scenes
    with fast_engine.open_session(BUDGET, scene_gated_solve=True,
                                  smoother=BacklightSmoother(
                                      max_step=MAX_STEP)) as session:
        trace = [session.submit(frame).applied_backlight for frame in clip]
        counters = session.stats()
    print(f"  {counters.frames} frames -> {counters.solved} solves, "
          f"{counters.reused} replayed the held solution "
          f"({counters.scene_changes} scene changes)")
    steps = np.abs(np.diff(np.array([1.0] + trace)))
    print(f"  worst backlight step: {steps.max():.3f} "
          f"(limit {MAX_STEP}) — the fast path keeps the flicker bound")


if __name__ == "__main__":
    main(sys.argv)
