#!/usr/bin/env python3
"""Video playback with temporally smoothed backlight scaling.

Backlight scaling of a *video* adds a constraint the still-image pipeline
does not have: the backlight factor must not jump between consecutive frames
or the user perceives flicker.  This example:

1. synthesizes a short clip (a cross-fade between two benchmark scenes with a
   slow brightness ramp — a stand-in for a real video decoder),
2. feeds it to :meth:`repro.api.Engine.process_stream`, which runs the
   cache-accelerated per-frame policy under a distortion budget, smooths /
   slew-limits the backlight factor (the temporal machinery of
   :mod:`repro.core.temporal`) and flags scene changes, and
3. replays the controller's driver programs through the LCD-controller model
   to account the energy, then reports the saving, the worst frame-to-frame
   backlight step and the distortion statistics.

Usage::

    python examples/video_playback.py [N_FRAMES] [MAX_DISTORTION]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench.suite import benchmark_images, default_engine
from repro.core.temporal import BacklightSmoother
from repro.display.controller import LCDController
from repro.imaging.image import Image


def synthesize_clip(n_frames: int, hold: int = 3) -> list[Image]:
    """A deterministic clip: cross-fade lena -> peppers with a brightness ramp.

    Like real footage, the clip is mostly *static*: each rendered image is
    held for ``hold`` consecutive frames (a 30 fps clip only changes content
    every few frames), which is what makes the engine's histogram-keyed
    solution cache effective.
    """
    scenes = benchmark_images(names=("lena", "peppers"))
    start = scenes["lena"].as_float()
    end = scenes["peppers"].as_float()
    n_shots = max((n_frames + hold - 1) // hold, 1)
    frames = []
    for shot in range(n_shots):
        progress = shot / max(n_shots - 1, 1)
        blend = (1.0 - progress) * start + progress * end
        brightness = 0.9 + 0.1 * np.sin(2 * np.pi * progress)
        image = Image.from_float(np.clip(blend * brightness, 0, 1),
                                 name=f"shot{shot:03d}")
        frames.extend([image] * hold)
    return frames[:n_frames]


def main(argv: list[str]) -> None:
    n_frames = int(argv[1]) if len(argv) > 1 else 24
    budget = float(argv[2]) if len(argv) > 2 else 10.0
    max_step = 0.05          # largest allowed per-frame backlight change
    smoothing = 0.5          # exponential smoothing weight for new targets

    print(f"frames: {n_frames}, distortion budget: {budget:.1f}%, "
          f"max backlight step: {max_step}, smoothing: {smoothing}")
    clip = synthesize_clip(n_frames)
    # coarse histogram signatures (8 buckets) let near-identical consecutive
    # frames share one cached solution, like the paper's real-time flow
    engine = default_engine(algorithm="hebs-adaptive", signature_bins=8)
    lcd = LCDController()

    history = []
    energy_scaled = 0.0
    energy_reference = 0.0
    stream = engine.process_stream(
        clip, budget,
        smoother=BacklightSmoother(smoothing=smoothing, max_step=max_step))
    for frame, outcome in zip(clip, stream):
        lcd.load_program(outcome.result.driver_program)
        displayed = lcd.display(frame)
        energy_scaled += displayed.total_power
        energy_reference += outcome.result.reference_power.total
        history.append(outcome)

    raw_steps = np.abs(np.diff([f.requested_backlight for f in history]))
    smooth_steps = np.abs(np.diff([f.applied_backlight for f in history]))
    distortions = [f.result.distortion for f in history]
    scene_changes = sum(1 for f in history if f.scene_change)

    print()
    print(f"energy (backlight scaled) : {energy_scaled:.2f} normalized units")
    print(f"energy (full backlight)   : {energy_reference:.2f}")
    print(f"energy saving             : "
          f"{100 * (1 - energy_scaled / energy_reference):.1f}%")
    print(f"mean / max distortion     : {np.mean(distortions):.2f}% / "
          f"{np.max(distortions):.2f}%")
    print(f"scene changes detected    : {scene_changes}")
    print(f"worst per-frame backlight step before smoothing: "
          f"{(raw_steps.max() if raw_steps.size else 0):.3f}")
    print(f"worst per-frame backlight step after smoothing : "
          f"{(smooth_steps.max() if smooth_steps.size else 0):.3f}")
    worst_step = float(smooth_steps.max()) if smooth_steps.size else 0.0
    if worst_step <= max_step + 1.5 / 255:
        print("flicker constraint met: no frame-to-frame step exceeds the limit")
    stats = engine.cache_stats
    print(f"engine solution cache: {stats.hits} hits / {stats.misses} misses "
          f"across {len(history)} frames (similar frames reuse the solve)")


if __name__ == "__main__":
    main(sys.argv)
