#!/usr/bin/env python3
"""Colour-LCD gallery: HEBS on RGB images with a shared per-channel transform.

Sec. 2 of the paper notes that colour panels build each pixel from R/G/B
sub-pixels driven through the *same* source-driver transfer function.  This
example derives the HEBS transformation from the luminance histogram of a
colour image and applies it per channel (exactly what the programmed
reference voltages would do), then reports the per-channel dynamic ranges,
the luminance distortion and the power saving.  It also contrasts the
hardware-faithful per-channel mode with the hue-preserving luminance-scaled
mode.

Usage::

    python examples/color_gallery.py [MAX_DISTORTION]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.reporting import Table
from repro.bench.suite import benchmark_images, default_pipeline
from repro.core.color import ColorHEBS
from repro.imaging.image import Image


def synthesize_color_gallery() -> dict[str, Image]:
    """Deterministic RGB scenes built from the grayscale benchmark suite."""
    gray = benchmark_images(names=("lena", "peppers", "autumn", "pout"))
    gallery: dict[str, Image] = {}
    tints = {
        "lena": (1.05, 1.00, 0.90),       # warm portrait
        "peppers": (1.10, 0.95, 0.75),    # red/green vegetables
        "autumn": (1.15, 0.90, 0.70),     # orange foliage
        "pout": (0.95, 1.00, 1.10),       # cool, dim indoor shot
    }
    rng = np.random.default_rng(2005)
    for name, image in gray.items():
        base = image.as_float()
        red, green, blue = tints[name]
        chroma = 0.05 * rng.standard_normal(base.shape)
        rgb = np.stack([
            np.clip(base * red + chroma, 0, 1),
            np.clip(base * green, 0, 1),
            np.clip(base * blue - chroma, 0, 1),
        ], axis=2)
        gallery[name] = Image.from_float(rgb, name=f"{name}-rgb")
    return gallery


def main(argv: list[str]) -> None:
    budget = float(argv[1]) if len(argv) > 1 else 10.0
    gallery = synthesize_color_gallery()
    pipeline = default_pipeline()

    print(f"distortion budget: {budget:.1f}%")
    table = Table(
        title="Colour gallery under HEBS (per-channel application)",
        columns=("image", "backlight", "saving %", "luma distortion %",
                 "R range", "G range", "B range"),
    )
    rows = []
    for name, image in gallery.items():
        result = ColorHEBS(pipeline).process_adaptive(image, budget)
        r_range, g_range, b_range = result.channel_ranges()
        rows.append({
            "image": name,
            "backlight": result.backlight_factor,
            "saving %": result.power_saving_percent,
            "luma distortion %": result.distortion,
            "R range": r_range,
            "G range": g_range,
            "B range": b_range,
        })
    print(table.with_rows(rows).render())
    print()

    # compare the two application modes on one image
    sample = gallery["peppers"]
    per_channel = ColorHEBS(pipeline).process_with_range(sample, 150)
    luminance_scaled = ColorHEBS(pipeline, mode="luminance_scaled") \
        .process_with_range(sample, 150)

    def mean_channel_ratio(image: Image) -> float:
        values = image.as_float() + 1e-6
        return float(np.median(values[:, :, 0] / values[:, :, 1]))

    print("application-mode comparison on 'peppers' at dynamic range 150:")
    print(f"  original red/green ratio        : {mean_channel_ratio(sample):.3f}")
    print(f"  per-channel (hardware)          : "
          f"{mean_channel_ratio(per_channel.transformed):.3f}")
    print(f"  luminance-scaled (hue-preserving): "
          f"{mean_channel_ratio(luminance_scaled.transformed):.3f}")
    print("the per-channel mode slightly compresses colour ratios (the shared "
          "transfer function treats every channel like luminance); the "
          "luminance-scaled mode keeps hue at the cost of not being directly "
          "realizable by the reference-voltage driver")


if __name__ == "__main__":
    main(sys.argv)
