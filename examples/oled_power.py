#!/usr/bin/env python3
"""Per-pixel-power displays end to end: the OLED workload in five acts.

The paper's optimization dims a backlight and brightens content; an
emissive panel has no backlight, so ``repro`` runs the machinery the
other way — darken the content under the same distortion budget and bill
the power at the pixels.  This example walks the whole surface:

1. the ``OLEDModel`` power physics (sRGB luminance, per-primary gains),
2. content darkening through the unified ``Engine`` API,
3. the dynamic-budget policy (ambient light + battery → budget),
4. a mixed CCFL/OLED workload through one in-process server, and
5. the emissive panel on the ``LCDController`` datapath, unchanged.

Usage::

    python examples/oled_power.py [IMAGE ...]

``IMAGE`` names are built-in benchmarks (default: lena baboon pout).
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import Table
from repro.api import BudgetPolicy, Engine, OperatingConditions
from repro.bench.suite import benchmark_images
from repro.display.controller import LCDController
from repro.display.oled import (
    OLEDPanelAdapter,
    OLEDSupplyModel,
    QVGA_AMOLED,
)
from repro.serve import Server, run_load

BUDGET = 10.0


def act_1_power_model(images) -> None:
    print("=== 1. The emissive power model ===")
    print(f"per-primary gains: k_r={QVGA_AMOLED.red_gain}, "
          f"k_g={QVGA_AMOLED.green_gain}, k_b={QVGA_AMOLED.blue_gain} "
          f"(blue emitters are the least efficient)")
    print(f"driver overhead P_0 = {QVGA_AMOLED.static_power} "
          f"(full white = {QVGA_AMOLED.full_power():.2f})")
    table = Table("frame power (normalized units)",
                  ("image", "emissive", "overhead", "total"), precision=3)
    for name, image in images.items():
        breakdown = QVGA_AMOLED.breakdown(image)
        table = table.with_row(image=name, emissive=breakdown.emissive,
                               overhead=breakdown.overhead,
                               total=breakdown.total)
    print(table.render())
    print()


def act_2_darkening(engine: Engine, images) -> None:
    print(f"=== 2. Content darkening at a {BUDGET:.0f}% budget ===")
    table = Table("oled-darken on the suite",
                  ("image", "range R", "distortion %", "saving %"))
    for name, image in images.items():
        result = engine.process(image, BUDGET, algorithm="oled-darken")
        assert result.backlight_factor == 1.0      # no lamp to dim
        assert result.power.ccfl == 0.0
        table = table.with_row(**{"image": name,
                                  "range R": result.details.target_range,
                                  "distortion %": result.distortion,
                                  "saving %": result.power_saving_percent})
    print(table.render())
    print()


def act_3_budget_policy(engine: Engine, images) -> None:
    print("=== 3. Operating conditions -> distortion budget ===")
    policy = BudgetPolicy()
    image = next(iter(images.values()))
    scenarios = [
        ("office, full battery", OperatingConditions()),
        ("outdoor shade", OperatingConditions(ambient_lux=10_000)),
        ("low battery", OperatingConditions(battery_level=0.15)),
        ("low battery, charging",
         OperatingConditions(battery_level=0.15, charging=True)),
        ("sunlight + low battery",
         OperatingConditions(ambient_lux=100_000, battery_level=0.10)),
    ]
    table = Table("the policy in five scenarios",
                  ("conditions", "budget %", "saving %"))
    for label, conditions in scenarios:
        budget = policy.budget_for(conditions)
        result = engine.process(image, budget, algorithm="oled-darken")
        table = table.with_row(**{"conditions": label, "budget %": budget,
                                  "saving %": result.power_saving_percent})
    print(table.render())
    print()


def act_4_mixed_serving(images) -> None:
    print("=== 4. Mixed CCFL/OLED traffic through one server ===")
    workload = list(images.values()) * 4
    with Server(engine=Engine(), workers=2) as server:
        report = run_load(server, workload, BUDGET, clients=4,
                          algorithm=["hebs", "oled-darken"])
    classes = {}
    for index, result in report.results.items():
        classes.setdefault(result.algorithm, 0)
        classes[result.algorithm] += 1
    print(f"{report.requests} requests, {report.errors} errors, "
          f"{report.throughput:.1f} req/s")
    for name, count in sorted(classes.items()):
        print(f"  {name}: {count} requests")
    print()


def act_5_controller(images) -> None:
    print("=== 5. The emissive panel on the LCDController datapath ===")
    controller = LCDController(ccfl=OLEDSupplyModel(),
                               panel=OLEDPanelAdapter())
    engine = Engine("oled-darken")
    name, image = next(iter(images.items()))
    original = controller.display(image)
    darkened = controller.display(
        engine.process(image, BUDGET).output)
    print(f"{name}: panel power {original.panel_power:.3f} -> "
          f"{darkened.panel_power:.3f} "
          f"(driver overhead constant at {original.ccfl_power:.3f})")
    print()


def main(argv: list[str]) -> int:
    names = tuple(argv) or ("lena", "baboon", "pout")
    images = benchmark_images(names=names)
    engine = Engine("oled-darken")
    act_1_power_model(images)
    act_2_darkening(engine, images)
    act_3_budget_policy(engine, images)
    act_4_mixed_serving(images)
    act_5_controller(images)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
