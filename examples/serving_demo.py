#!/usr/bin/env python3
"""Serving under concurrent load: warm-up, micro-batching, live statistics.

The deployment scenario the ROADMAP targets: one compensation service, many
concurrent clients, content with heavily repeated histograms (the same
photos viewed again and again, mostly-still video scenes).  The demo:

1. starts a :class:`repro.serve.Server` (worker pool over one thread-safe
   engine),
2. warms the solution cache by pre-solving the benchmark corpus,
3. times the serial baseline — every request an independent solve —
   against the same workload submitted by N concurrent clients, and
4. prints the load report and the server's statistics snapshot.

Usage::

    python examples/serving_demo.py [CLIENTS] [REPEATS] [MAX_DISTORTION]

Defaults: 8 clients, 8 repeats of the 4-image workload (32 requests), 10%
distortion budget.
"""

from __future__ import annotations

import sys

from repro.bench.suite import default_engine
from repro.bench.throughput import repeated_workload
from repro.serve import Server, report_table, run_load, time_serial_baseline


def main(argv: list[str]) -> None:
    clients = int(argv[1]) if len(argv) > 1 else 8
    repeats = int(argv[2]) if len(argv) > 2 else 8
    budget = float(argv[3]) if len(argv) > 3 else 10.0

    workload = repeated_workload(repeats=repeats)
    print(f"workload          : {len(workload)} requests "
          f"({len(workload) // repeats} distinct histograms x {repeats})")
    print(f"clients           : {clients}")
    print(f"distortion budget : {budget:g}%")
    print()

    # the serial baseline: the pre-serving calling convention — every
    # request pays its own full derivation, nothing is shared
    serial_seconds, _ = time_serial_baseline(
        default_engine(cache_size=0), workload, budget)
    print(f"serial baseline   : {serial_seconds:.3f}s "
          f"({len(workload) / serial_seconds:.1f} req/s)")

    # the served path: shared engine, warm cache, micro-batched workers
    with Server(engine=default_engine(), workers=4) as server:
        primed = server.warmup(budgets=(budget,))
        print(f"warm-up           : {primed} solutions pre-solved")
        report = run_load(server, workload, budget, clients=clients)
        print()
        print(report_table(report, serial_seconds=serial_seconds).render())
        print()
        print("server snapshot   :")
        for key, value in server.stats().as_dict().items():
            print(f"  {key:<18} {value}")


if __name__ == "__main__":
    main(sys.argv)
