#!/usr/bin/env python3
"""Derive the Programmable LCD Reference Driver configuration for one image.

The hardware story of the paper (Sec. 4.1, Fig. 5): the pixel transformation
is not applied in the frame buffer but *in the source driver*, by
re-programming the reference voltages that generate the grayscale voltages.
This example shows exactly what would be written to the hardware:

* the exact GHE transformation and its piecewise-linear coarsening,
* the Eq. (10) reference-voltage programming of the paper's hierarchical
  driver (``V_i = V_dd * Y_qi / beta``),
* why the conventional single-band driver of ref. [5] cannot realize the same
  transfer function, and the best single-band approximation it could apply.

Usage::

    python examples/driver_programming.py [BENCHMARK] [TARGET_RANGE] [SEGMENTS]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.reporting import Table
from repro.bench.suite import benchmark_images, default_pipeline
from repro.display.driver import ConventionalDriver


def main(argv: list[str]) -> None:
    name = argv[1] if len(argv) > 1 else "lena"
    target_range = int(argv[2]) if len(argv) > 2 else 150
    segments = int(argv[3]) if len(argv) > 3 else 6

    image = benchmark_images(names=(name,))[name.lower()]
    pipeline = default_pipeline().with_config(n_segments=segments,
                                              driver_sources=max(segments, 2))
    result = pipeline.process_with_range(image, target_range)
    program = result.driver_program

    print(f"image                  : {image!r}")
    print(f"target dynamic range   : {target_range}")
    print(f"backlight factor beta  : {result.backlight_factor:.3f}")
    print(f"PLC segments           : {result.coarse_curve.n_segments} "
          f"(mse {result.coarse_curve.mean_squared_error:.2f})")
    print()

    table = Table(
        title="Hierarchical driver programming (Eq. 10)",
        columns=("breakpoint level", "Lambda output level", "reference voltage V"),
        precision=3,
    ).with_rows(
        {
            "breakpoint level": float(x),
            "Lambda output level": float(y),
            "reference voltage V": float(v),
        }
        for x, y, v in zip(result.coarse_curve.x, result.coarse_curve.y,
                           program.reference_voltages)
    )
    print(table.render())
    print()

    # What the hardware actually displays for a few input levels.
    sample_levels = np.linspace(0, 255, 9)
    lut = program.lut()
    print("grayscale-voltage transfer function (input level -> displayed level):")
    print("  " + "  ".join(f"{int(level):3d}->{lut[int(level)]:5.1f}"
                           for level in sample_levels))
    print()

    # The single-band driver of ref. [5] can only clamp the two ends.
    conventional = ConventionalDriver()
    realizable = conventional.can_realize(np.asarray(result.coarse_curve.x),
                                          np.asarray(result.coarse_curve.y))
    print(f"conventional single-band driver can realize this transform: "
          f"{'yes' if realizable else 'no'}")
    if not realizable:
        x = np.array([0.0, 0.0 + 1e-9 + 0, float(255 - target_range), 255.0])
        # best it can do: clamp the top, single slope over the occupied band
        x = np.array([0.0, float(target_range), 255.0])
        y = np.array([0.0, float(target_range), float(target_range)])
        fallback = conventional.program(x, y, result.backlight_factor)
        print("  nearest realizable single-band program (clamp the top end):")
        print(f"    breakpoints {fallback.breakpoint_levels.tolist()}")
        print(f"    voltages    "
              f"{[round(float(v), 3) for v in fallback.reference_voltages]}")
        print("  the hierarchical driver's extra sources are what allow the "
              "multi-slope, mid-range flat-band transfer function HEBS needs")


if __name__ == "__main__":
    main(sys.argv)
