#!/usr/bin/env python3
"""Build a distortion characteristic curve for a custom image set.

The characteristic curve (paper Sec. 3 / Fig. 7) is what makes HEBS cheap at
run time: the expensive distortion evaluation is done once, offline, over a
benchmark set, and the pipeline then only needs a curve lookup per frame.
This example shows the offline half of that story:

1. characterize a chosen set of images (built-in benchmarks by default, or
   every ``.pgm``/``.ppm``/``.csv`` file in a directory you pass),
2. print the distortion-vs-dynamic-range table with the dataset and
   worst-case fits, and
3. show which dynamic range / backlight factor a few distortion budgets map
   to under each fit.

Usage::

    python examples/distortion_budgeting.py [IMAGE_DIR] [MEASURE]

``MEASURE`` is one of the registered distortion measures (``effective``,
``uqi``, ``ssim``, ``rmse``, ``saturation``, ``contrast``, ``histogram``).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.reporting import Table
from repro.bench.suite import benchmark_images
from repro.core.distortion_curve import build_distortion_curve
from repro.core.pipeline import HEBS
from repro.imaging.io import read_image
from repro.quality.distortion import available_measures


def load_images(directory: str | None):
    """Images from a directory of files, or the built-in suite."""
    if directory is None:
        return benchmark_images()
    root = Path(directory)
    paths = sorted(p for p in root.iterdir()
                   if p.suffix.lower() in (".pgm", ".ppm", ".pnm", ".csv"))
    if not paths:
        raise SystemExit(f"no .pgm/.ppm/.csv images found in {root}")
    return {path.stem: read_image(path) for path in paths}


def main(argv: list[str]) -> None:
    directory = argv[1] if len(argv) > 1 else None
    measure = argv[2] if len(argv) > 2 else "effective"
    if measure not in available_measures():
        raise SystemExit(f"unknown measure {measure!r}; "
                         f"choose from {available_measures()}")

    images = load_images(directory)
    print(f"characterizing {len(images)} images with the {measure!r} measure ...")
    curve = build_distortion_curve(images, measure=measure)

    ranges = sorted({sample.target_range for sample in curve.samples})
    table = Table(
        title="Distortion characteristic curve (percent distortion)",
        columns=("dynamic range", "dataset fit", "worst-case fit",
                 "sample min", "sample max"),
    )
    rows = []
    for target_range in ranges:
        samples = [s.distortion for s in curve.samples
                   if s.target_range == target_range]
        rows.append({
            "dynamic range": target_range,
            "dataset fit": float(curve.predict(target_range)),
            "worst-case fit": float(curve.predict(target_range, worst_case=True)),
            "sample min": min(samples),
            "sample max": max(samples),
        })
    print(table.with_rows(rows).render())
    print()

    pipeline = HEBS(curve)
    budgets = (2.0, 5.0, 10.0, 20.0, 30.0)
    budget_table = Table(
        title="Budget -> minimum admissible dynamic range -> backlight factor",
        columns=("budget %", "range (dataset fit)", "beta (dataset fit)",
                 "range (worst case)", "beta (worst case)"),
        precision=3,
    )
    budget_rows = []
    for budget in budgets:
        dataset_range = curve.min_range_for_distortion(budget, worst_case=False)
        worst_range = curve.min_range_for_distortion(budget, worst_case=True)
        budget_rows.append({
            "budget %": budget,
            "range (dataset fit)": dataset_range,
            "beta (dataset fit)": pipeline.backlight_factor_for_range(dataset_range),
            "range (worst case)": worst_range,
            "beta (worst case)": pipeline.backlight_factor_for_range(worst_range),
        })
    print(budget_table.with_rows(budget_rows).render())
    print()
    print("note: the worst-case fit guarantees the budget for every "
          "characterized image, at the cost of much less dimming; the "
          "dataset fit budgets for the average image (the paper plots both).")


if __name__ == "__main__":
    main(sys.argv)
