"""Unit tests for the benchmark registry and cached characterization."""

import pytest

from repro.bench.suite import (
    DEFAULT_IMAGE_SIZE,
    benchmark_images,
    default_curve,
    default_pipeline,
)
from repro.core.pipeline import HEBS, HEBSConfig


class TestBenchmarkImages:
    def test_returns_all_nineteen_by_default(self):
        assert len(benchmark_images()) == 19

    def test_subset_selection_preserves_order(self):
        subset = benchmark_images(names=("peppers", "lena"))
        assert list(subset) == ["peppers", "lena"]

    def test_subset_is_case_insensitive(self):
        assert "lena" in benchmark_images(names=("Lena",))

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark names"):
            benchmark_images(names=("not-an-image",))

    def test_default_size(self):
        image = benchmark_images(names=("lena",))["lena"]
        assert image.shape == DEFAULT_IMAGE_SIZE

    def test_cached_instances_are_reused(self):
        first = benchmark_images(names=("lena",))["lena"]
        second = benchmark_images(names=("lena",))["lena"]
        assert first is second

    def test_returned_mapping_is_a_copy(self):
        images = benchmark_images()
        images.pop("lena")
        assert "lena" in benchmark_images()


class TestDefaultCurveAndPipeline:
    def test_curve_is_cached(self):
        assert default_curve() is default_curve()

    def test_curve_covers_all_benchmarks(self):
        names = {sample.image_name for sample in default_curve().samples}
        assert names == set(benchmark_images())

    def test_pipeline_uses_cached_curve(self):
        assert default_pipeline().curve is default_curve()

    def test_pipeline_with_custom_config(self):
        pipeline = default_pipeline(config=HEBSConfig(n_segments=4,
                                                      driver_sources=4))
        assert isinstance(pipeline, HEBS)
        assert pipeline.config.n_segments == 4

    def test_alternative_measure_builds_its_own_curve(self):
        rmse_curve = default_curve(measure="rmse")
        assert rmse_curve is not default_curve()
        assert rmse_curve.measure_name == "rmse"
