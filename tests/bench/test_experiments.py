"""Integration tests for the paper-experiment harnesses.

These run on reduced image subsets so the whole suite stays fast; the full
sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.bench.experiments import (
    ablation_distortion_measures,
    ablation_equalization_methods,
    ablation_plc_segments,
    comparison_vs_baselines,
    interface_encoding_study,
    figure2_transform_functions,
    figure3_kband_function,
    figure6a_ccfl_characterization,
    figure6b_panel_characterization,
    figure7_distortion_curve,
    figure8_sample_transforms,
    table1_power_saving,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self, small_suite, pipeline):
        return table1_power_saving(images=small_suite, pipeline=pipeline)

    def test_structure(self, table, small_suite):
        assert isinstance(table, Table)
        assert len(table.rows) == len(small_suite) + 1   # + Average row
        assert table.rows[-1]["image"] == "Average"
        assert table.columns[0] == "image"

    def test_savings_increase_with_budget(self, table):
        average = table.rows[-1]
        assert average["saving@5%"] < average["saving@10%"] < average["saving@20%"]

    def test_magnitude_regime(self, table):
        """Paper: ~46% / 56% / 64% average saving; the synthetic suite must
        land in the same regime (within roughly +-15 pp)."""
        average = table.rows[-1]
        assert 25.0 < average["saving@5%"] < 60.0
        assert 40.0 < average["saving@10%"] < 70.0
        assert 50.0 < average["saving@20%"] < 80.0

    def test_every_row_positive_saving(self, table):
        for row in table.rows:
            assert row["saving@20%"] > 0.0

    def test_non_adaptive_mode_uses_global_range(self, small_suite, pipeline):
        table = table1_power_saving(distortion_levels=(10.0,),
                                    images=small_suite, pipeline=pipeline,
                                    adaptive=False)
        savings = [row["saving@10%"] for row in table.rows[:-1]]
        # same global dynamic range -> same CCFL power -> savings differ only
        # through the (tiny) panel term
        assert max(savings) - min(savings) < 3.0


class TestFigure2:
    def test_series_shapes_and_shapes_of_curves(self):
        series = figure2_transform_functions(beta=0.6, n_points=101)
        assert series["x"].shape == (101,)
        assert np.allclose(series["identity"], series["x"])
        # shift: dark pixels raised by 1-beta
        assert series["grayscale_shift"][0] == pytest.approx(0.4)
        # spreading: saturates at x = beta
        assert series["grayscale_spreading"][-1] == 1.0
        # single band: flat then linear then flat
        assert series["single_band_spreading"][0] == 0.0
        assert series["single_band_spreading"][-1] == 1.0

    def test_beta_validation(self):
        with pytest.raises(ValueError, match="beta"):
            figure2_transform_functions(beta=0.0)


class TestFigure3:
    def test_kband_structure(self):
        series = figure3_kband_function(image_name="lena", target_range=128,
                                        n_segments=4)
        assert series["breakpoints_x"].shape[0] == 5      # m + 1 points
        assert series["slopes"].shape[0] <= 4
        assert series["exact"].shape == (256,)
        assert series["coarse"].shape == (256,)
        # the coarse curve tracks the exact one
        assert np.abs(series["exact"] - series["coarse"]).mean() < 10.0
        assert series["plc_mse"][0] >= 0.0


class TestFigure6:
    def test_ccfl_fit_recovers_paper_coefficients(self):
        result = figure6a_ccfl_characterization()
        fitted, paper = result["fitted"], result["paper"]
        assert fitted["Cs"] == pytest.approx(paper["Cs"], abs=0.05)
        assert fitted["Alin"] == pytest.approx(paper["Alin"], rel=0.15)
        assert fitted["Asat"] == pytest.approx(paper["Asat"], rel=0.15)
        assert result["power"].shape == result["illuminance"].shape

    def test_panel_fit_recovers_paper_coefficients(self):
        result = figure6b_panel_characterization()
        fitted, paper = result["fitted"], result["paper"]
        assert fitted["c"] == pytest.approx(paper["c"], abs=0.01)
        assert fitted["a"] == pytest.approx(paper["a"], abs=0.02)
        assert fitted["b"] == pytest.approx(paper["b"], abs=0.02)

    def test_fig6b_shape_nearly_flat(self):
        result = figure6b_panel_characterization()
        power = result["power"]
        assert power.max() - power.min() < 0.06


class TestFigure7:
    @pytest.fixture(scope="class")
    def series(self):
        return figure7_distortion_curve()

    def test_sample_count_matches_19_images_times_10_ranges(self, series):
        assert series["sample_ranges"].shape[0] == 19 * 10

    def test_worstcase_dominates_dataset_fit(self, series):
        assert np.all(series["worstcase_fit"] >= series["dataset_fit"] - 1e-9)

    def test_distortion_decreases_with_range(self, series):
        fit = series["dataset_fit"]
        assert fit[0] > fit[-1]
        assert np.all(np.diff(fit) <= 1e-6)

    def test_custom_subset(self, small_suite):
        series = figure7_distortion_curve(images=small_suite,
                                          target_ranges=(80, 160, 240))
        assert series["sample_ranges"].shape[0] == len(small_suite) * 3


class TestFigure8:
    @pytest.fixture(scope="class")
    def table(self, pipeline):
        return figure8_sample_transforms(image_names=("lena", "pout", "baboon"),
                                         pipeline=pipeline)

    def test_rows_per_image_and_range(self, table):
        assert len(table.rows) == 3 * 2

    def test_fig8_regime(self, table):
        for row in table.rows:
            if row["dynamic_range"] == 220:
                assert row["power_saving%"] < 35.0
                assert row["distortion%"] < 15.0
            else:
                assert row["power_saving%"] > 45.0

    def test_backlight_factor_tracks_range(self, table):
        for row in table.rows:
            assert row["backlight_factor"] == pytest.approx(
                row["dynamic_range"] / 255.0, abs=0.01)


class TestComparison:
    @pytest.fixture(scope="class")
    def table(self, small_suite, pipeline):
        return comparison_vs_baselines(max_distortion=10.0, images=small_suite,
                                       pipeline=pipeline)

    def test_all_methods_present(self, table):
        methods = {row["method"] for row in table.rows}
        assert methods == {"hebs", "dls-brightness", "dls-contrast", "cbcs"}

    def test_hebs_wins(self, table):
        """The paper's headline comparison: HEBS saves more power than both
        prior techniques at a matched distortion budget."""
        savings = {row["method"]: row["mean_saving%"] for row in table.rows}
        assert savings["hebs"] >= savings["dls-brightness"]
        assert savings["hebs"] >= savings["dls-contrast"]
        assert savings["hebs"] >= savings["cbcs"]

    def test_advantage_column_only_for_hebs(self, table):
        for row in table.rows:
            if row["method"] == "hebs":
                assert row["advantage_pp"] >= 0.0
            else:
                assert row["advantage_pp"] == 0.0

    def test_all_methods_respect_budget(self, table):
        for row in table.rows:
            assert row["mean_distortion%"] <= 10.5


class TestAblations:
    def test_plc_segments_error_monotone(self):
        table = ablation_plc_segments(image_name="lena", target_range=128,
                                      segment_counts=(2, 4, 8, 16))
        errors = [row["plc_mse"] for row in table.rows]
        assert errors == sorted(errors, reverse=True)

    def test_plc_segments_power_saving_stable(self):
        table = ablation_plc_segments(segment_counts=(2, 8))
        savings = [row["power_saving%"] for row in table.rows]
        # the backlight factor only depends on the target range, so the
        # saving must barely move with the segment count
        assert abs(savings[0] - savings[1]) < 3.0

    def test_distortion_measure_ablation_structure(self, small_suite):
        table = ablation_distortion_measures(
            measures=("effective", "rmse"), max_distortion=10.0,
            image_names=("lena", "pout"))
        assert len(table.rows) == 2
        for row in table.rows:
            assert 1 <= row["selected_range"] <= 255
            assert 0.0 <= row["mean_backlight"] <= 1.0

    def test_equalization_method_ablation(self):
        table = ablation_equalization_methods(
            target_range=150, image_names=("lena", "pout"))
        rows = {row["method"]: row for row in table.rows}
        assert set(rows) == {"ghe", "clipped", "bbhe"}
        # GHE is the flattest (smallest Eq.-4 objective) by construction
        assert rows["ghe"]["mean_objective"] <= \
            min(rows["clipped"]["mean_objective"],
                rows["bbhe"]["mean_objective"]) + 1e-9

    def test_interface_encoding_study(self, pipeline):
        table = interface_encoding_study(image_names=("lena", "pout"),
                                         pipeline=pipeline)
        assert len(table.rows) == 4       # 2 images x (original, hebs)
        for row in table.rows:
            assert row["bus-invert"] <= row["binary"] + 1e-12
            assert row["display_power"] > 0.0
