"""Unit tests for the LCD controller / frame buffer simulation."""

import numpy as np
import pytest

from repro.display.controller import DisplayedFrame, FrameBuffer, LCDController
from repro.display.driver import HierarchicalDriver
from repro.imaging.image import Image


class TestFrameBuffer:
    def test_fifo_order(self, flat_image, gradient_image):
        buffer = FrameBuffer(capacity=2)
        buffer.push(flat_image)
        buffer.push(gradient_image)
        assert buffer.pop() == flat_image
        assert buffer.pop() == gradient_image

    def test_capacity_drops_oldest(self, flat_image, gradient_image, noisy_image):
        buffer = FrameBuffer(capacity=2)
        buffer.push(flat_image)
        buffer.push(gradient_image)
        buffer.push(noisy_image)
        assert buffer.dropped_frames == 1
        assert len(buffer) == 2
        assert buffer.pop() == gradient_image

    def test_peek_does_not_consume(self, flat_image):
        buffer = FrameBuffer()
        buffer.push(flat_image)
        assert buffer.peek() == flat_image
        assert len(buffer) == 1

    def test_empty_errors(self):
        buffer = FrameBuffer()
        assert buffer.is_empty
        with pytest.raises(IndexError):
            buffer.pop()
        with pytest.raises(IndexError):
            buffer.peek()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FrameBuffer(capacity=0)


class TestLCDController:
    def test_identity_display_at_full_backlight(self, gradient_image):
        controller = LCDController()
        frame = controller.display(gradient_image)
        assert frame.displayed == gradient_image
        assert frame.backlight_factor == 1.0
        assert np.allclose(frame.luminance, gradient_image.as_float())

    def test_dimming_scales_luminance(self, flat_image):
        controller = LCDController()
        controller.set_backlight(0.5)
        frame = controller.display(flat_image)
        assert frame.mean_luminance() == pytest.approx(0.5 * 128 / 255, abs=1e-6)

    def test_backlight_clamped_to_ccfl_minimum(self):
        controller = LCDController()
        clamped = controller.set_backlight(0.0)
        assert clamped == controller.ccfl.min_factor

    def test_power_accounting(self, gradient_image):
        controller = LCDController()
        full = controller.display(gradient_image)
        controller.set_backlight(0.4)
        dimmed = controller.display(gradient_image)
        assert dimmed.ccfl_power < full.ccfl_power
        assert dimmed.total_power < full.total_power
        assert full.total_power == pytest.approx(full.ccfl_power + full.panel_power)

    def test_programmed_transfer_function_applied(self, gradient_image):
        driver = HierarchicalDriver()
        # compress into [0, 128] and compensate for beta = 128/255
        program = driver.program(np.array([0.0, 255.0]), np.array([0.0, 128.0]),
                                 backlight_factor=128.0 / 255.0)
        controller = LCDController()
        controller.load_program(program)
        frame = controller.display(gradient_image)
        # displayed pixels are boosted back up by 1/beta (Eq. 10), so the
        # perceived luminance matches the compressed image
        assert frame.backlight_factor == pytest.approx(128.0 / 255.0)
        expected = gradient_image.as_float() * (128.0 / 255.0)
        assert np.allclose(frame.luminance, expected, atol=0.01)

    def test_reset_restores_identity(self, gradient_image):
        controller = LCDController()
        controller.set_backlight(0.3)
        controller.reset()
        frame = controller.display(gradient_image)
        assert frame.backlight_factor == 1.0
        assert frame.displayed == gradient_image

    def test_rgb_frames_are_converted_to_grayscale(self, rgb_image):
        frame = LCDController().display(rgb_image)
        assert frame.displayed.is_grayscale

    def test_drain_displays_everything(self, flat_image, gradient_image):
        controller = LCDController()
        buffer = FrameBuffer(capacity=4)
        buffer.push(flat_image)
        buffer.push(gradient_image)
        frames = controller.drain(buffer)
        assert len(frames) == 2
        assert buffer.is_empty
        assert all(isinstance(frame, DisplayedFrame) for frame in frames)
