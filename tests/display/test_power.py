"""Unit tests for the display-power accounting used by Table 1 / Fig. 8."""

import pytest

from repro.display.ccfl import LP064V1_CCFL
from repro.display.panel import LP064V1_PANEL
from repro.display.power import DisplayPowerModel, PowerBreakdown, power_saving
from repro.imaging.image import Image


class TestPowerBreakdown:
    def test_total(self):
        breakdown = PowerBreakdown(ccfl=2.0, panel=1.0)
        assert breakdown.total == 3.0

    def test_saving_versus(self):
        reference = PowerBreakdown(ccfl=2.6, panel=1.0)
        dimmed = PowerBreakdown(ccfl=0.8, panel=1.0)
        assert dimmed.saving_versus(reference) == pytest.approx(1.8 / 3.6)

    def test_saving_versus_zero_reference(self):
        assert PowerBreakdown(1.0, 1.0).saving_versus(PowerBreakdown(0.0, 0.0)) == 0.0


class TestDisplayPowerModel:
    def test_reference_uses_full_backlight(self, gradient_image):
        model = DisplayPowerModel()
        reference = model.reference(gradient_image)
        assert reference.ccfl == pytest.approx(LP064V1_CCFL.full_power())
        assert reference.panel == pytest.approx(
            LP064V1_PANEL.frame_power(gradient_image))

    def test_ccfl_dominates_panel(self, gradient_image):
        """Sec. 1: the CCFL dominates the LCD-subsystem power."""
        reference = DisplayPowerModel().reference(gradient_image)
        assert reference.ccfl > 2 * reference.panel

    def test_dimming_reduces_total(self, gradient_image):
        model = DisplayPowerModel()
        assert model.total(gradient_image, 0.4) < model.total(gradient_image, 1.0)

    def test_saving_percent_range(self, gradient_image, flat_image):
        model = DisplayPowerModel()
        saving = model.saving_percent(gradient_image, flat_image, 0.5)
        assert 0.0 < saving < 100.0

    def test_saving_zero_when_nothing_changes(self, gradient_image):
        model = DisplayPowerModel()
        value = model.saving_percent(gradient_image, gradient_image, 1.0)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_fig8_magnitudes(self):
        """Dimming to beta=220/255 saves ~25-30%, to beta=100/255 ~50-60%
        of the total display power (the Fig. 8 annotations)."""
        model = DisplayPowerModel()
        image = Image.constant(128, shape=(16, 16))
        mild = model.saving_percent(image, image, 220.0 / 255.0)
        aggressive = model.saving_percent(image, image, 100.0 / 255.0)
        assert 20.0 < mild < 35.0
        assert 45.0 < aggressive < 65.0

    def test_wrapper_matches_model(self, gradient_image, flat_image):
        model = DisplayPowerModel()
        assert power_saving(gradient_image, flat_image, 0.5) == pytest.approx(
            model.saving_percent(gradient_image, flat_image, 0.5))

    def test_backlight_clamped(self, gradient_image):
        model = DisplayPowerModel()
        assert model.total(gradient_image, -1.0) == pytest.approx(
            model.total(gradient_image, model.ccfl.min_factor))
