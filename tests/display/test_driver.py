"""Unit tests for the reference-voltage driver models (Fig. 5, Eq. 10)."""

import numpy as np
import pytest

from repro.display.driver import (
    ConventionalDriver,
    DriverProgram,
    HierarchicalDriver,
)


def identity_breakpoints(levels: int = 256):
    return np.array([0.0, levels - 1.0]), np.array([0.0, levels - 1.0])


class TestDriverProgram:
    def test_basic_properties(self):
        program = DriverProgram(np.array([0.0, 255.0]),
                                np.array([0.0, 3.3]), 1.0, vdd=3.3)
        assert program.n_segments == 1
        assert program.grayscale_voltage(0) == pytest.approx(0.0)
        assert program.grayscale_voltage(255) == pytest.approx(3.3)
        assert program.grayscale_voltage(127.5) == pytest.approx(1.65)

    def test_validation_monotone_voltages(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            DriverProgram(np.array([0.0, 255.0]), np.array([3.3, 0.0]), 1.0, 3.3)

    def test_validation_increasing_levels(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DriverProgram(np.array([0.0, 0.0]), np.array([0.0, 3.3]), 1.0, 3.3)

    def test_validation_voltage_rail(self):
        with pytest.raises(ValueError, match="Vdd"):
            DriverProgram(np.array([0.0, 255.0]), np.array([0.0, 5.0]), 1.0, 3.3)

    def test_validation_needs_two_points(self):
        with pytest.raises(ValueError, match="two breakpoints"):
            DriverProgram(np.array([0.0]), np.array([0.0]), 1.0, 3.3)

    def test_lut_identity_program(self):
        program = DriverProgram(np.array([0.0, 255.0]),
                                np.array([0.0, 3.3]), 1.0, vdd=3.3)
        lut = program.lut()
        assert lut.shape == (256,)
        assert np.allclose(lut, np.arange(256), atol=0.5)

    def test_displayed_value_saturates_at_rail(self):
        # compensation for beta=0.5 doubles the voltages; the top clamps
        program = DriverProgram(np.array([0.0, 255.0]),
                                np.array([0.0, 3.3]), 0.5, vdd=3.3)
        assert program.displayed_value(255)[()] == pytest.approx(255.0)


class TestHierarchicalDriver:
    def test_default_voltages_realize_identity(self):
        driver = HierarchicalDriver(n_sources=8, vdd=3.3)
        defaults = driver.default_voltages()
        assert defaults.shape == (8,)
        assert np.allclose(np.diff(defaults), 3.3 / 8)
        assert defaults[-1] == pytest.approx(3.3)

    def test_program_identity_full_backlight(self):
        driver = HierarchicalDriver()
        x, y = identity_breakpoints()
        program = driver.program(x, y, backlight_factor=1.0)
        assert np.allclose(program.lut(), np.arange(256), atol=0.5)

    def test_eq10_compensation(self):
        """V_i = Vdd * Y_qi / beta, clamped at the rail."""
        driver = HierarchicalDriver(vdd=3.3)
        x = np.array([0.0, 100.0, 255.0])
        y = np.array([0.0, 50.0, 100.0])
        beta = 100.0 / 255.0
        program = driver.program(x, y, beta)
        expected_mid = 3.3 * (50.0 / 255.0) / beta
        assert program.reference_voltages[1] == pytest.approx(expected_mid)
        assert program.reference_voltages[2] == pytest.approx(3.3)

    def test_compensated_display_preserves_luminance(self):
        """beta * t(Lambda(x)/beta) equals t(Lambda(x)): the perceived image
        of the compensated, dimmed display matches the range-compressed
        image at full backlight."""
        driver = HierarchicalDriver(vdd=3.3)
        x = np.array([0.0, 128.0, 255.0])
        y = np.array([0.0, 64.0, 128.0])       # compress into [0, 128]
        beta = 128.0 / 255.0
        program = driver.program(x, y, beta)
        displayed = program.displayed_value(np.array([0.0, 128.0, 255.0]))
        perceived = beta * displayed / 255.0
        assert np.allclose(perceived, y / 255.0, atol=1e-6)

    def test_segment_limit_enforced(self):
        driver = HierarchicalDriver(n_sources=3)
        x = np.linspace(0, 255, 6)
        y = np.linspace(0, 255, 6)
        assert not driver.can_realize(x, y)
        with pytest.raises(ValueError, match="controllable sources"):
            driver.program(x, y, 1.0)

    def test_monotone_transfer_required(self):
        driver = HierarchicalDriver()
        x = np.array([0.0, 128.0, 255.0])
        y = np.array([0.0, 200.0, 100.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            driver.program(x, y, 1.0)

    def test_backlight_factor_validation(self):
        driver = HierarchicalDriver()
        x, y = identity_breakpoints()
        with pytest.raises(ValueError, match="backlight factor"):
            driver.program(x, y, 0.0)
        with pytest.raises(ValueError, match="backlight factor"):
            driver.program(x, y, 1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="two sources"):
            HierarchicalDriver(n_sources=1)
        with pytest.raises(ValueError, match="Vdd"):
            HierarchicalDriver(vdd=0.0)
        with pytest.raises(ValueError, match="grayscale levels"):
            HierarchicalDriver(levels=1)

    def test_can_realize_midrange_flat_band(self):
        """The whole point of the hierarchical driver (Sec. 4.1): flat bands
        in the middle of the grayscale range are realizable."""
        driver = HierarchicalDriver(n_sources=4)
        x = np.array([0.0, 100.0, 150.0, 255.0])
        y = np.array([0.0, 120.0, 120.0, 255.0])   # flat band in the middle
        assert driver.can_realize(x, y)
        program = driver.program(x, y, 1.0)
        assert program.n_segments == 3


class TestConventionalDriver:
    def test_realizes_single_band_spreading(self):
        driver = ConventionalDriver()
        x = np.array([0.0, 50.0, 200.0, 255.0])
        y = np.array([0.0, 0.0, 255.0, 255.0])
        assert driver.can_realize(x, y)
        program = driver.program(x, y, backlight_factor=0.6)
        assert program.n_segments == 3

    def test_rejects_multi_slope_transfer(self):
        driver = ConventionalDriver()
        x = np.array([0.0, 100.0, 255.0])
        y = np.array([0.0, 30.0, 255.0])    # two different non-zero slopes
        assert not driver.can_realize(x, y)
        with pytest.raises(ValueError, match="single-band"):
            driver.program(x, y, 1.0)

    def test_rejects_interior_flat_band(self):
        driver = ConventionalDriver()
        x = np.array([0.0, 100.0, 150.0, 255.0])
        y = np.array([0.0, 100.0, 100.0, 205.0])
        assert not driver.can_realize(x, y)

    def test_accepts_identity(self):
        driver = ConventionalDriver()
        x, y = identity_breakpoints()
        assert driver.can_realize(x, y)

    def test_accepts_fully_flat(self):
        driver = ConventionalDriver()
        x = np.array([0.0, 255.0])
        y = np.array([128.0, 128.0])
        assert driver.can_realize(x, y)

    def test_max_segments(self):
        assert ConventionalDriver().max_segments() == 3
        assert HierarchicalDriver(n_sources=6).max_segments() == 6

    def test_tap_validation(self):
        with pytest.raises(ValueError, match="taps"):
            ConventionalDriver(n_taps=1)
