"""Unit tests for the CCFL backlight model (Eq. 11, Fig. 6a)."""

import numpy as np
import pytest

from repro.display.ccfl import CCFLModel, LP064V1_CCFL, simulate_ccfl_measurements


class TestModelValidation:
    def test_default_is_lp064v1(self):
        assert LP064V1_CCFL.saturation_knee == pytest.approx(0.8234)
        assert LP064V1_CCFL.linear_slope == pytest.approx(1.9600)
        assert LP064V1_CCFL.linear_intercept == pytest.approx(-0.2372)
        assert LP064V1_CCFL.saturated_slope == pytest.approx(6.9440)

    def test_derived_saturated_intercept_is_negative(self):
        """The paper prints |Csat| = 4.3240; continuity forces it negative."""
        assert LP064V1_CCFL.saturated_intercept < 0
        assert LP064V1_CCFL.saturated_intercept == pytest.approx(-4.34, abs=0.02)

    def test_paper_magnitude_close_to_derived(self):
        assert abs(LP064V1_CCFL.saturated_intercept) == pytest.approx(4.324, abs=0.05)

    def test_explicit_saturated_intercept_respected(self):
        model = CCFLModel(saturated_intercept=-4.324)
        assert model.saturated_intercept == -4.324

    def test_knee_validation(self):
        with pytest.raises(ValueError, match="saturation_knee"):
            CCFLModel(saturation_knee=1.5)

    def test_slope_validation(self):
        with pytest.raises(ValueError, match="increase"):
            CCFLModel(linear_slope=-1.0)

    def test_min_factor_validation(self):
        with pytest.raises(ValueError, match="min_factor"):
            CCFLModel(min_factor=0.9)


class TestPower:
    def test_continuous_at_knee(self):
        model = LP064V1_CCFL
        below = model.power(model.saturation_knee - 1e-9)
        above = model.power(model.saturation_knee + 1e-9)
        assert below == pytest.approx(above, abs=1e-6)

    def test_monotone_increasing(self):
        betas = np.linspace(LP064V1_CCFL.min_factor, 1.0, 100)
        powers = LP064V1_CCFL.power(betas)
        assert np.all(np.diff(powers) >= 0)

    def test_full_power_value(self):
        """P(1) = Asat + Csat ~ 2.6 normalized units for the LP064V1."""
        assert LP064V1_CCFL.full_power() == pytest.approx(2.60, abs=0.05)

    def test_saturation_makes_last_20_percent_expensive(self):
        model = LP064V1_CCFL
        linear_region_slope = model.power(0.8) - model.power(0.7)
        saturated_region_slope = model.power(1.0) - model.power(0.9)
        assert saturated_region_slope > 2 * linear_region_slope

    def test_scalar_and_array_forms_agree(self):
        betas = np.array([0.3, 0.6, 0.9])
        array_power = LP064V1_CCFL.power(betas)
        for beta, expected in zip(betas, array_power):
            assert LP064V1_CCFL.power(float(beta)) == pytest.approx(expected)

    def test_clamping_below_min_factor(self):
        assert LP064V1_CCFL.power(0.0) == LP064V1_CCFL.power(LP064V1_CCFL.min_factor)

    def test_power_never_negative(self):
        model = CCFLModel(min_factor=0.01)
        assert model.power(0.01) >= 0.0


class TestIlluminance:
    def test_inverse_of_power_in_linear_region(self):
        beta = 0.5
        power = LP064V1_CCFL.power(beta)
        assert LP064V1_CCFL.illuminance(power) == pytest.approx(beta, abs=1e-9)

    def test_inverse_of_power_in_saturated_region(self):
        beta = 0.95
        power = LP064V1_CCFL.power(beta)
        assert LP064V1_CCFL.illuminance(power) == pytest.approx(beta, abs=1e-9)

    def test_clipped_to_unit_interval(self):
        assert LP064V1_CCFL.illuminance(100.0) == 1.0
        assert LP064V1_CCFL.illuminance(-5.0) == 0.0


class TestPowerSaving:
    def test_no_saving_at_full_backlight(self):
        assert LP064V1_CCFL.power_saving(1.0) == pytest.approx(0.0)

    def test_saving_grows_with_dimming(self):
        savings = [LP064V1_CCFL.power_saving(beta) for beta in (0.9, 0.6, 0.3)]
        assert savings == sorted(savings)

    def test_saving_bounded_by_one(self):
        assert LP064V1_CCFL.power_saving(LP064V1_CCFL.min_factor) < 1.0

    def test_dimming_to_half_saves_most_of_the_backlight(self):
        """The knee makes the last 20% of illuminance very expensive, so
        dimming to 50% saves well over half of the CCFL power."""
        assert LP064V1_CCFL.power_saving(0.5) > 0.6


class TestMeasurementSimulator:
    def test_shapes_and_determinism(self):
        power_a, lum_a = simulate_ccfl_measurements(n_points=20, seed=7)
        power_b, lum_b = simulate_ccfl_measurements(n_points=20, seed=7)
        assert power_a.shape == lum_a.shape == (20,)
        assert np.array_equal(power_a, power_b)
        assert np.array_equal(lum_a, lum_b)

    def test_noise_zero_reproduces_model(self):
        power, illuminance = simulate_ccfl_measurements(noise=0.0, n_points=10)
        assert np.allclose(LP064V1_CCFL.power(illuminance), power)

    def test_monotone_trend(self):
        power, illuminance = simulate_ccfl_measurements(noise=0.0)
        assert np.all(np.diff(power) > 0)
        assert np.all(np.diff(illuminance) > 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 4"):
            simulate_ccfl_measurements(n_points=2)
        with pytest.raises(ValueError, match="noise"):
            simulate_ccfl_measurements(noise=-0.1)
