"""Unit tests for the video-interface (bus) power model."""

import numpy as np
import pytest

from repro.display.interface import (
    VideoBusModel,
    available_encodings,
    binary_encode,
    bus_invert_encode,
    count_transitions,
    gray_encode,
)
from repro.imaging.image import Image


class TestEncoders:
    def test_binary_is_identity(self):
        words = np.array([0, 1, 128, 255])
        assert np.array_equal(binary_encode(words), words)

    def test_gray_code_adjacent_values_differ_in_one_bit(self):
        words = np.arange(256)
        encoded = gray_encode(words)
        toggles = encoded[1:] ^ encoded[:-1]
        assert all(bin(int(t)).count("1") == 1 for t in toggles)

    def test_gray_code_is_a_bijection(self):
        words = np.arange(256)
        assert len(set(gray_encode(words).tolist())) == 256

    def test_bus_invert_never_toggles_more_than_half_plus_one(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 256, size=500)
        encoded = bus_invert_encode(words, width=8)
        toggles = encoded[1:] ^ encoded[:-1]
        worst = max(bin(int(t)).count("1") for t in toggles)
        assert worst <= 4 + 1   # half the wires + the (modelled) invert line

    def test_bus_invert_reduces_transitions_on_random_data(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 256, size=2000)
        plain = count_transitions(binary_encode(words))
        inverted = count_transitions(bus_invert_encode(words))
        assert inverted <= plain


class TestCountTransitions:
    def test_no_transitions_for_constant_stream(self):
        assert count_transitions(np.full(100, 170)) == 0

    def test_known_value(self):
        # 0x00 -> 0xFF toggles all 8 wires, 0xFF -> 0x0F toggles 4
        assert count_transitions(np.array([0x00, 0xFF, 0x0F])) == 12

    def test_single_word_stream(self):
        assert count_transitions(np.array([42])) == 0

    def test_width_mask_applied(self):
        # only the low 4 bits count at width 4
        assert count_transitions(np.array([0x00, 0xF1]), width=4) == 1


class TestVideoBusModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="encoding"):
            VideoBusModel(encoding="manchester")
        with pytest.raises(ValueError, match="width"):
            VideoBusModel(width=0)
        with pytest.raises(ValueError, match="energy_per_transition"):
            VideoBusModel(energy_per_transition=0.0)
        with pytest.raises(ValueError, match="refresh"):
            VideoBusModel(refresh_hz=0.0)

    def test_available_encodings(self):
        assert set(available_encodings()) == {"binary", "gray", "bus-invert"}

    def test_flat_frame_costs_nothing(self, flat_image):
        assert VideoBusModel().frame_energy(flat_image) == 0.0

    def test_noisy_frame_costs_more_than_smooth(self, noisy_image, gradient_image):
        model = VideoBusModel()
        assert model.frame_transitions(noisy_image) > \
            model.frame_transitions(gradient_image)

    def test_power_scales_with_refresh(self, noisy_image):
        slow = VideoBusModel(refresh_hz=30.0)
        fast = VideoBusModel(refresh_hz=60.0)
        assert fast.power(noisy_image) == pytest.approx(
            2.0 * slow.power(noisy_image))

    def test_gray_encoding_saves_on_smooth_content(self):
        """Ref. [2]'s observation: video data has spatial locality, so an
        encoding that maps +-1 level steps to single-bit toggles saves
        transitions on smooth images."""
        smooth = Image(np.tile(np.arange(256), (4, 1)))
        binary = VideoBusModel(encoding="binary")
        gray = VideoBusModel(encoding="gray")
        assert gray.saving_versus(smooth, binary) > 0.3

    def test_bus_energy_is_small_versus_display_power(self, lena):
        """Sanity of the calibration: the interface is a few percent of the
        display-subsystem power, not a first-order term."""
        from repro.display.power import DisplayPowerModel
        bus_power = VideoBusModel().power(lena)
        display_power = DisplayPowerModel().reference(lena).total
        assert bus_power < 0.15 * display_power
        assert bus_power > 0.0

    def test_hebs_barely_changes_bus_energy(self, pipeline, lena):
        """Backlight scaling and bus encoding are orthogonal: the transformed
        frame costs about the same to transmit as the original."""
        model = VideoBusModel()
        result = pipeline.process_with_range(lena, 150)
        original_energy = model.frame_energy(lena)
        transformed_energy = model.frame_energy(result.transformed)
        assert transformed_energy == pytest.approx(original_energy, rel=0.35)
