"""Unit tests for the TFT panel transmissivity and power models (Eq. 1, 12)."""

import numpy as np
import pytest

from repro.display.panel import (
    LP064V1_PANEL,
    PanelModel,
    TransmissivityModel,
    simulate_panel_measurements,
)
from repro.imaging.image import Image


class TestTransmissivityModel:
    def test_ideal_model_is_identity(self):
        model = TransmissivityModel()
        x = np.linspace(0, 1, 11)
        assert np.allclose(model.transmittance(x), x)

    def test_leaky_model_offsets_black(self):
        model = TransmissivityModel(t_off=0.05, t_on=0.95)
        assert model.transmittance(0.0) == pytest.approx(0.05)
        assert model.transmittance(1.0) == pytest.approx(0.95)

    def test_inverse(self):
        model = TransmissivityModel(t_off=0.02, t_on=0.9)
        for x in (0.0, 0.3, 0.7, 1.0):
            assert model.pixel_value(model.transmittance(x)) == pytest.approx(x)

    def test_validation(self):
        with pytest.raises(ValueError, match="t_off"):
            TransmissivityModel(t_off=0.5, t_on=0.4)
        with pytest.raises(ValueError, match="t_off"):
            TransmissivityModel(t_off=-0.1)

    def test_luminance_eq_1a(self):
        model = TransmissivityModel()
        assert model.luminance(0.8, backlight=0.5) == pytest.approx(0.4)

    def test_luminance_backlight_validation(self):
        with pytest.raises(ValueError, match="backlight factor"):
            TransmissivityModel().luminance(0.5, backlight=1.5)

    def test_backlight_for_range_ideal(self):
        model = TransmissivityModel()
        assert model.backlight_for_range(255) == pytest.approx(1.0)
        assert model.backlight_for_range(128) == pytest.approx(128 / 255)
        assert model.backlight_for_range(0) == pytest.approx(1 / 255)

    def test_backlight_for_range_with_leakage_is_higher(self):
        leaky = TransmissivityModel(t_off=0.1)
        ideal = TransmissivityModel()
        assert leaky.backlight_for_range(128) > ideal.backlight_for_range(128)

    def test_backlight_for_range_validation(self):
        with pytest.raises(ValueError, match="dynamic range"):
            TransmissivityModel().backlight_for_range(300)


class TestPanelPower:
    def test_lp064v1_coefficients(self):
        assert LP064V1_PANEL.quadratic == pytest.approx(0.02449)
        assert LP064V1_PANEL.linear == pytest.approx(0.04984)
        assert LP064V1_PANEL.constant == pytest.approx(0.993)

    def test_normally_white_power_decreases_with_pixel_value(self):
        powers = LP064V1_PANEL.pixel_power(np.linspace(0, 1, 20))
        assert np.all(np.diff(powers) <= 1e-12)

    def test_normally_black_power_increases_with_pixel_value(self):
        model = PanelModel(normally_white=False)
        powers = model.pixel_power(np.linspace(0, 1, 20))
        assert np.all(np.diff(powers) >= -1e-12)

    def test_fig6b_magnitudes(self):
        """Fig. 6b spans roughly 0.965..1.0 normalized power."""
        low = LP064V1_PANEL.pixel_power(1.0)
        high = LP064V1_PANEL.pixel_power(0.0)
        assert high == pytest.approx(0.993, abs=1e-6)
        assert 0.955 < low < 0.985

    def test_variation_is_small_versus_ccfl(self):
        """Sec. 5.1b: the panel-power change is negligible next to the CCFL."""
        swing = LP064V1_PANEL.pixel_power(0.0) - LP064V1_PANEL.pixel_power(1.0)
        assert swing < 0.05

    def test_frame_power_averages_pixels(self, gradient_image):
        frame = LP064V1_PANEL.frame_power(gradient_image)
        direct = float(np.mean(LP064V1_PANEL.pixel_power(
            gradient_image.as_float())))
        assert frame == pytest.approx(direct)

    def test_frame_power_dark_vs_bright(self):
        dark = Image.constant(10, shape=(8, 8))
        bright = Image.constant(245, shape=(8, 8))
        assert LP064V1_PANEL.frame_power(dark) > LP064V1_PANEL.frame_power(bright)

    def test_power_vs_transmittance_uses_inverse_map(self):
        value = LP064V1_PANEL.power_vs_transmittance(0.5)
        assert value == pytest.approx(LP064V1_PANEL.pixel_power(0.5))

    def test_constant_validation(self):
        with pytest.raises(ValueError, match="constant"):
            PanelModel(constant=-1.0)


class TestPanelMeasurementSimulator:
    def test_deterministic(self):
        first = simulate_panel_measurements(seed=3)
        second = simulate_panel_measurements(seed=3)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_zero_noise_matches_model(self):
        transmittance, power = simulate_panel_measurements(noise=0.0)
        assert np.allclose(power, LP064V1_PANEL.power_vs_transmittance(transmittance))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 4"):
            simulate_panel_measurements(n_points=3)
        with pytest.raises(ValueError, match="noise"):
            simulate_panel_measurements(noise=-1.0)
