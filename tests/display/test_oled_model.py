"""Unit tests for the emissive (OLED) display power model."""

import numpy as np
import pytest

from repro.display.controller import LCDController
from repro.display.oled import (
    EmissionModel,
    OLEDDisplayPowerModel,
    OLEDModel,
    OLEDPanelAdapter,
    OLEDPowerBreakdown,
    OLEDSupplyModel,
    QVGA_AMOLED,
    linear_to_srgb,
    oled_power_saving,
    srgb_to_linear,
)
from repro.display.power import DisplayPowerModel, PowerBreakdown
from repro.imaging.image import Image


class TestSRGBTransfer:
    def test_round_trip_scalar(self):
        for x in (0.0, 0.01, 0.04045, 0.2, 0.5, 0.99, 1.0):
            assert linear_to_srgb(srgb_to_linear(x)) == pytest.approx(x, abs=1e-12)

    def test_round_trip_array(self):
        x = np.linspace(0.0, 1.0, 257)
        back = linear_to_srgb(srgb_to_linear(x))
        np.testing.assert_allclose(back, x, atol=1e-12)

    def test_endpoints(self):
        assert srgb_to_linear(0.0) == 0.0
        assert srgb_to_linear(1.0) == pytest.approx(1.0)

    def test_scalar_in_scalar_out(self):
        assert isinstance(srgb_to_linear(0.5), float)
        assert isinstance(linear_to_srgb(0.5), float)

    def test_monotone(self):
        x = np.linspace(0.0, 1.0, 513)
        assert np.all(np.diff(srgb_to_linear(x)) >= 0)

    def test_gamma_compresses_midtones(self):
        """Mid-gray emits far less than half the luminance of white."""
        assert srgb_to_linear(0.5) < 0.25


class TestEmissionModel:
    def test_black_is_t_off(self):
        assert EmissionModel().transmittance(0.0) == pytest.approx(
            EmissionModel().t_off)

    def test_inverse(self):
        model = EmissionModel()
        x = np.linspace(0.0, 1.0, 129)
        np.testing.assert_allclose(
            model.pixel_value(model.transmittance(x)), x, atol=1e-10)


class TestOLEDPowerBreakdown:
    def test_total(self):
        assert OLEDPowerBreakdown(emissive=0.3, overhead=0.1).total == pytest.approx(0.4)

    def test_saving_versus(self):
        reference = OLEDPowerBreakdown(emissive=0.8, overhead=0.2)
        darker = OLEDPowerBreakdown(emissive=0.3, overhead=0.2)
        assert darker.saving_versus(reference) == pytest.approx(0.5)

    def test_saving_versus_zero_reference(self):
        zero = OLEDPowerBreakdown(emissive=0.0, overhead=0.0)
        assert OLEDPowerBreakdown(1.0, 0.0).saving_versus(zero) == 0.0

    def test_as_power_breakdown_is_plain_class(self):
        """Wire equality is class-exact, so no subclassing games."""
        generic = OLEDPowerBreakdown(0.3, 0.1).as_power_breakdown()
        assert type(generic) is PowerBreakdown
        assert generic.ccfl == 0.0
        assert generic.panel == pytest.approx(0.4)
        assert generic == PowerBreakdown(ccfl=0.0, panel=0.4)


class TestOLEDModel:
    def test_white_frame_costs_unit_power(self):
        white = Image.constant(255, shape=(16, 16))
        model = OLEDModel()
        assert model.frame_power(white) == pytest.approx(model.white_gain)
        assert model.white_gain == pytest.approx(1.0)

    def test_black_frame_costs_only_overhead(self):
        black = Image.constant(0, shape=(16, 16))
        breakdown = OLEDModel().breakdown(black)
        assert breakdown.emissive == pytest.approx(0.0, abs=1e-12)
        assert breakdown.total == pytest.approx(OLEDModel().static_power)

    def test_blue_is_hungriest_primary(self):
        model = QVGA_AMOLED
        assert model.blue_gain > model.red_gain > model.green_gain

    def test_rgb_channel_costs_ordered(self):
        model = QVGA_AMOLED
        red = model.rgb_pixel_power(1.0, 0.0, 0.0)
        green = model.rgb_pixel_power(0.0, 1.0, 0.0)
        blue = model.rgb_pixel_power(0.0, 0.0, 1.0)
        assert blue > red > green
        assert red + green + blue == pytest.approx(model.pixel_power(1.0))

    def test_power_monotone_in_pixel_value(self):
        x = np.linspace(0.0, 1.0, 257)
        power = QVGA_AMOLED.pixel_power(x)
        assert np.all(np.diff(power) >= 0)

    def test_dimming_scales_emissive_linearly(self, gradient_image):
        model = QVGA_AMOLED
        full = model.frame_power(gradient_image, 1.0)
        half = model.frame_power(gradient_image, 0.5)
        assert half == pytest.approx(0.5 * full)

    def test_dimming_does_not_touch_overhead(self, gradient_image):
        model = QVGA_AMOLED
        assert model.breakdown(gradient_image, 0.3).overhead == pytest.approx(
            model.static_power)

    def test_clamp_factor(self):
        model = OLEDModel(min_factor=0.1)
        assert model.clamp_factor(0.0) == pytest.approx(0.1)
        assert model.clamp_factor(2.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OLEDModel(red_gain=0.0)
        with pytest.raises(ValueError):
            OLEDModel(static_power=-0.1)
        with pytest.raises(ValueError):
            OLEDModel(min_factor=1.5)

    def test_darker_content_costs_less(self, gradient_image):
        darker = gradient_image.with_pixels(gradient_image.pixels // 2)
        model = QVGA_AMOLED
        assert model.frame_power(darker) < model.frame_power(gradient_image)


class TestOLEDDisplayPowerModel:
    def test_surface_matches_backlit_model(self):
        """Same method names + signatures as DisplayPowerModel."""
        for name in ("breakdown", "total", "reference", "saving",
                     "saving_percent"):
            assert callable(getattr(OLEDDisplayPowerModel(), name))
            assert callable(getattr(DisplayPowerModel(), name))

    def test_reference_has_no_ccfl(self, gradient_image):
        reference = OLEDDisplayPowerModel().reference(gradient_image)
        assert type(reference) is PowerBreakdown
        assert reference.ccfl == 0.0
        assert reference.panel > 0.0

    def test_darkening_saves_power(self, gradient_image):
        model = OLEDDisplayPowerModel()
        darker = gradient_image.with_pixels(gradient_image.pixels // 2)
        saving = model.saving_percent(gradient_image, darker, 1.0)
        assert 0.0 < saving < 100.0

    def test_saving_zero_when_nothing_changes(self, gradient_image):
        model = OLEDDisplayPowerModel()
        value = model.saving_percent(gradient_image, gradient_image, 1.0)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_convenience_function(self, gradient_image, flat_image):
        expected = OLEDDisplayPowerModel().saving_percent(
            gradient_image, flat_image, 1.0)
        assert oled_power_saving(gradient_image, flat_image) == pytest.approx(
            expected)


class TestControllerDropIns:
    """LCDController drives an emissive panel with no controller changes."""

    def _oled_controller(self) -> LCDController:
        return LCDController(ccfl=OLEDSupplyModel(),
                             panel=OLEDPanelAdapter())

    def test_display_frame(self, gradient_image):
        frame = self._oled_controller().display(gradient_image)
        assert frame.ccfl_power == pytest.approx(QVGA_AMOLED.static_power)
        assert frame.panel_power == pytest.approx(
            QVGA_AMOLED.frame_power(gradient_image))
        assert frame.backlight_factor == 1.0

    def test_supply_power_constant_in_dimming(self):
        supply = OLEDSupplyModel()
        assert supply.power(1.0) == supply.power(0.2) == supply.full_power()
        assert supply.power_saving(0.5) == 0.0

    def test_supply_power_array(self):
        supply = OLEDSupplyModel()
        values = supply.power(np.array([0.2, 0.8]))
        np.testing.assert_allclose(values, supply.overhead)

    def test_darker_frame_draws_less_panel_power(self, gradient_image):
        controller = self._oled_controller()
        darker = gradient_image.with_pixels(gradient_image.pixels // 2)
        assert (controller.display(darker).panel_power
                < controller.display(gradient_image).panel_power)

    def test_set_backlight_respects_min_factor_zero(self):
        controller = self._oled_controller()
        assert controller.set_backlight(0.0) == 0.0

    def test_panel_adapter_transmissivity_is_emission(self):
        adapter = OLEDPanelAdapter()
        assert adapter.transmissivity is QVGA_AMOLED.emission

    def test_supply_validation(self):
        with pytest.raises(ValueError):
            OLEDSupplyModel(overhead=-1.0)
        with pytest.raises(ValueError):
            OLEDSupplyModel(min_factor=1.0)
