"""Shared fixtures for the HEBS reproduction test suite.

Expensive objects (the synthetic benchmark images and the fitted distortion
characteristic curve) are session-scoped so the several hundred tests share a
single characterization run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.suite import benchmark_images, default_curve, default_pipeline
from repro.core.pipeline import HEBS, HEBSConfig
from repro.imaging.image import Image


@pytest.fixture(scope="session")
def lena() -> Image:
    """The synthetic Lena stand-in (128x128, 8-bit)."""
    return benchmark_images(names=("lena",))["lena"]


@pytest.fixture(scope="session")
def pout() -> Image:
    """The synthetic Pout stand-in: dark, low-contrast."""
    return benchmark_images(names=("pout",))["pout"]


@pytest.fixture(scope="session")
def baboon() -> Image:
    """The synthetic Baboon stand-in: dense texture, wide histogram."""
    return benchmark_images(names=("baboon",))["baboon"]


@pytest.fixture(scope="session")
def small_suite() -> dict[str, Image]:
    """A four-image subset of the benchmark suite for faster sweeps."""
    return benchmark_images(names=("lena", "peppers", "baboon", "pout"))


@pytest.fixture(scope="session")
def full_suite() -> dict[str, Image]:
    """All 19 synthetic benchmark images."""
    return benchmark_images()


@pytest.fixture(scope="session")
def characteristic_curve():
    """The default (session-cached) distortion characteristic curve."""
    return default_curve()


@pytest.fixture(scope="session")
def pipeline(characteristic_curve) -> HEBS:
    """A default HEBS pipeline sharing the session-cached curve."""
    return default_pipeline()


@pytest.fixture
def gradient_image() -> Image:
    """A 64x64 horizontal ramp covering all 256 levels (deterministic)."""
    row = np.linspace(0, 255, 64)
    return Image(np.tile(row, (64, 1)), name="ramp")


@pytest.fixture
def flat_image() -> Image:
    """A constant mid-gray 32x32 image."""
    return Image.constant(128, shape=(32, 32), name="flat")


@pytest.fixture
def checker_image() -> Image:
    """A 32x32 black/white checkerboard (extreme bimodal histogram)."""
    pattern = np.indices((32, 32)).sum(axis=0) % 2
    return Image(pattern * 255, name="checker")


@pytest.fixture
def noisy_image() -> Image:
    """A reproducible 48x48 uniform-noise image (near-uniform histogram)."""
    rng = np.random.default_rng(1234)
    return Image(rng.integers(0, 256, size=(48, 48)), name="noise")


@pytest.fixture
def rgb_image() -> Image:
    """A small reproducible RGB image."""
    rng = np.random.default_rng(42)
    return Image(rng.integers(0, 256, size=(24, 24, 3)), name="rgb")


@pytest.fixture
def fast_config() -> HEBSConfig:
    """A pipeline configuration with few PLC segments (cheap in tests)."""
    return HEBSConfig(n_segments=4, driver_sources=4)
