"""Tests for the jittered exponential back-off (repro.client.backoff).

Deterministic via an injected RNG — the jitter exists so a herd of
clients dropped by the same server restart spreads out instead of
reconnecting in lockstep, and the tests pin exactly how much of each
delay the jitter may take away.
"""

from __future__ import annotations

import random

import pytest

from repro.client import Backoff, Client


class _FixedRng:
    """An rng whose ``random()`` returns a scripted sequence."""

    def __init__(self, *values: float) -> None:
        self._values = list(values)
        self._index = 0

    def random(self) -> float:
        value = self._values[self._index % len(self._values)]
        self._index += 1
        return value


class TestSchedule:
    def test_exponential_doubling_without_jitter(self):
        backoff = Backoff(0.1, 2.0, jitter=0.0)
        assert [backoff.delay(attempt) for attempt in range(5)] == \
            pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6])

    def test_capped_at_maximum(self):
        backoff = Backoff(0.1, 0.5, jitter=0.0)
        assert backoff.delay(10) == pytest.approx(0.5)

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            Backoff(-0.1, 1.0)
        with pytest.raises(ValueError):
            Backoff(0.1, -1.0)
        with pytest.raises(ValueError):
            Backoff(0.1, 1.0, jitter=1.5)
        with pytest.raises(ValueError):
            Backoff(0.1, 1.0, jitter=-0.1)


class TestJitter:
    def test_jitter_is_deterministic_with_an_injected_rng(self):
        # rng.random() == 0.5 and jitter 0.5 shave exactly 25% off
        backoff = Backoff(0.1, 2.0, jitter=0.5, rng=_FixedRng(0.5))
        assert backoff.delay(0) == pytest.approx(0.1 * 0.75)
        assert backoff.delay(1) == pytest.approx(0.2 * 0.75)

    def test_jitter_only_shortens_never_lengthens(self):
        # full jitter at rng=1.0 halves the delay; rng=0.0 leaves it be
        backoff = Backoff(0.1, 2.0, jitter=0.5, rng=_FixedRng(1.0, 0.0))
        assert backoff.delay(2) == pytest.approx(0.4 * 0.5)
        assert backoff.delay(2) == pytest.approx(0.4)

    def test_bounds_hold_for_any_rng_value(self):
        backoff = Backoff(0.1, 2.0, jitter=0.5, rng=random.Random(1234))
        for attempt in range(8):
            delay = backoff.delay(attempt)
            ceiling = min(0.1 * 2 ** attempt, 2.0)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_two_rngs_decorrelate_two_clients(self):
        # the point of the jitter: same schedule, different draws
        first = Backoff(0.1, 2.0, jitter=0.5, rng=random.Random(1))
        second = Backoff(0.1, 2.0, jitter=0.5, rng=random.Random(2))
        delays = [(first.delay(attempt), second.delay(attempt))
                  for attempt in range(4)]
        assert any(a != b for a, b in delays)


class TestClientIntegration:
    def test_client_exposes_jitter_knobs(self):
        client = Client(port=1, jitter=0.25, rng=_FixedRng(1.0))
        try:
            assert client._backoff.delay(0) == \
                pytest.approx(client.backoff * 0.75)
        finally:
            client.close()

    def test_client_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            Client(port=1, jitter=2.0)
