"""Tests for the client SDK's connection care and the loadgen adapter.

The reconnect-with-backoff and retry-after logic is exercised against a
scripted fake server (deterministic failure injection); the
:class:`~repro.client.RemoteServerAdapter` is exercised against a real
:class:`~repro.serve.net.NetworkServer` through the unchanged
:mod:`repro.serve.loadgen` generators — the ``repro loadtest --connect``
path end to end.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.client import Client, RemoteServerAdapter, parse_address
from repro.serve import (
    NetworkServer,
    Server,
    ServerOverloadedError,
    protocol,
    run_load,
    run_stream_load,
)


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.5:7000") == ("10.0.0.5", 7000)

    def test_bare_host_gets_the_default_port(self):
        from repro.serve.net import DEFAULT_PORT
        assert parse_address("example.org") == ("example.org", DEFAULT_PORT)

    def test_bare_port_gets_loopback(self):
        assert parse_address(":7000") == ("127.0.0.1", 7000)

    def test_garbage_port_raises(self):
        with pytest.raises(ValueError, match="invalid port"):
            parse_address("host:notaport")

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            parse_address("  ")

    def test_bare_ipv6_literal_is_a_host(self):
        from repro.serve.net import DEFAULT_PORT
        assert parse_address("::1") == ("::1", DEFAULT_PORT)
        assert parse_address("fe80::2:1") == ("fe80::2:1", DEFAULT_PORT)

    def test_bracketed_ipv6_with_port(self):
        assert parse_address("[::1]:7000") == ("::1", 7000)

    def test_bracketed_ipv6_without_port(self):
        from repro.serve.net import DEFAULT_PORT
        assert parse_address("[fe80::1]") == ("fe80::1", DEFAULT_PORT)

    def test_unclosed_bracket_raises(self):
        with pytest.raises(ValueError, match="bracket"):
            parse_address("[::1:7000")

    def test_out_of_range_port_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_address("host:70000")


class _ScriptedServer:
    """A minimal protocol speaker whose per-connection behaviour is scripted.

    Each accepted connection pops the next script entry:

    * ``"drop"`` — complete the handshake, then close on the first request
      (simulating a server crash mid-conversation);
    * ``"overload"`` — answer every request with an ``overloaded`` error
      frame carrying ``retry_after``;
    * ``"serve"`` — answer every request with a canned ``stats`` response.
    """

    def __init__(self, script: list[str], retry_after: float = 0.01) -> None:
        self.script = list(script)
        self.retry_after = retry_after
        self.requests_seen = 0
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(10.0)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            while self.script:
                behaviour = self.script.pop(0)
                conn, _ = self._sock.accept()
                self.connections += 1
                with conn:
                    self._speak(conn, behaviour)
        except OSError:
            pass

    def _recv_frame(self, conn: socket.socket) -> dict | None:
        data = b""
        while len(data) < protocol.HEADER_BYTES:
            chunk = conn.recv(protocol.HEADER_BYTES - len(data))
            if not chunk:
                return None
            data += chunk
        length = protocol.frame_length(data)
        payload = b""
        while len(payload) < length:
            chunk = conn.recv(length - len(payload))
            if not chunk:
                return None
            payload += chunk
        return protocol.decode_frame(payload)

    def _speak(self, conn: socket.socket, behaviour: str) -> None:
        hello = self._recv_frame(conn)
        assert hello is not None and hello["type"] == "hello"
        conn.sendall(protocol.encode_frame(protocol.hello_frame()))
        while True:
            request = self._recv_frame(conn)
            if request is None:
                return
            self.requests_seen += 1
            if behaviour == "drop":
                return     # hang up mid-conversation
            if behaviour == "overload":
                conn.sendall(protocol.encode_frame(protocol.error_response(
                    request["id"], ServerOverloadedError(
                        "scripted overload", queue_depth=9,
                        retry_after_seconds=self.retry_after))))
                continue
            conn.sendall(protocol.encode_frame(
                {"type": "stats", "id": request["id"],
                 "stats": {"canned": True}}))

    def close(self) -> None:
        self._sock.close()
        self._thread.join(timeout=5.0)


class TestReconnectWithBackoff:
    def test_client_reconnects_after_a_dropped_connection(self):
        fake = _ScriptedServer(["drop", "serve"])
        try:
            client = Client(*fake.address, retries=3, backoff=0.01)
            payload = client.stats_dict()
            assert payload == {"canned": True}
            assert fake.connections == 2      # the drop forced a reconnect
            client.close()
        finally:
            fake.close()

    def test_retries_exhausted_raises_connection_error(self):
        fake = _ScriptedServer(["drop", "drop", "drop"])
        try:
            client = Client(*fake.address, retries=2, backoff=0.01)
            with pytest.raises(ConnectionError, match="lost connection"):
                client.stats_dict()
        finally:
            fake.close()

    def test_overload_retry_honors_retry_after(self):
        fake = _ScriptedServer(["overload"], retry_after=0.08)
        try:
            client = Client(*fake.address, retries=2, backoff=0.001,
                            retry_overloaded=True)
            started = time.perf_counter()
            with pytest.raises(ServerOverloadedError) as excinfo:
                client.stats_dict()
            elapsed = time.perf_counter() - started
            # two retries, each sleeping the server's 0.08s hint (not the
            # client's 1ms base backoff)
            assert elapsed >= 2 * 0.08
            assert excinfo.value.retry_after_seconds == 0.08
            assert excinfo.value.queue_depth == 9
            assert fake.requests_seen == 3    # initial + 2 retries
            client.close()
        finally:
            fake.close()

    def test_overload_raises_immediately_when_retry_disabled(self):
        fake = _ScriptedServer(["overload"])
        try:
            client = Client(*fake.address, retries=5,
                            retry_overloaded=False)
            with pytest.raises(ServerOverloadedError):
                client.stats_dict()
            assert fake.requests_seen == 1
            client.close()
        finally:
            fake.close()


@pytest.fixture(scope="module")
def remote(pipeline):
    """A real network server plus the loadgen adapter pointed at it."""
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                    max_delay=0.002)
    network = NetworkServer(server)
    host, port = network.start()
    adapter = RemoteServerAdapter(f"{host}:{port}")
    yield network, adapter
    adapter.close()
    network.close()


class TestRemoteServerAdapter:
    def test_run_load_drives_the_remote_server(self, remote, pipeline,
                                               small_suite):
        network, adapter = remote
        images = list(small_suite.values()) * 2
        report = run_load(adapter, images, 10.0, clients=4)
        assert report.errors == 0
        assert len(report.results) == len(images)
        # remote results are bit-identical to the in-process engine
        reference = Engine(HEBSAlgorithm(pipeline))
        for index, image in enumerate(images):
            expected = reference.process(image, 10.0)
            got = report.results[index]
            assert np.array_equal(got.output.pixels, expected.output.pixels)
            assert got.backlight_factor == expected.backlight_factor
        # the report's stats came over the wire via the stats RPC
        assert report.stats.completed >= len(images)

    def test_run_stream_load_drives_remote_sessions(self, remote, pipeline,
                                                    small_suite):
        network, adapter = remote
        frames = list(small_suite.values())
        clips = [frames, list(reversed(frames))]
        report = run_stream_load(adapter, clips, 10.0)
        assert report.errors == 0
        assert report.frames == sum(len(clip) for clip in clips)
        assert len(report.traces) == 2
        # flicker bound holds across the network hop
        assert report.worst_step() <= 0.05 + 1e-9
        # traces key on the server-assigned session ids, so the per-session
        # stats correlate
        assert set(report.session_p95()) == set(report.traces)

    def test_adapter_failures_surface_through_the_future(self, remote):
        network, adapter = remote
        future = adapter.submit(_image(), -1.0)     # invalid budget
        with pytest.raises(ValueError):
            future.result()

    def test_adapter_refuses_new_clients_after_close(self, pipeline):
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1)
        network = NetworkServer(server)
        host, port = network.start()
        try:
            adapter = RemoteServerAdapter(f"{host}:{port}")
            adapter.close()
            with pytest.raises(RuntimeError, match="closed"):
                adapter.submit(_image(), 10.0).result()
        finally:
            network.close()

    def test_close_fences_threads_with_a_cached_client(self, pipeline):
        # a thread that already holds a thread-local client must not be
        # able to silently reconnect on an untracked socket after close()
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1)
        network = NetworkServer(server)
        host, port = network.start()
        try:
            adapter = RemoteServerAdapter(f"{host}:{port}")
            adapter.submit(_image(), 10.0).result()     # caches the client
            adapter.close()
            with pytest.raises(RuntimeError, match="closed"):
                adapter.submit(_image(), 10.0).result()
        finally:
            network.close()


def _image():
    from repro.imaging.image import Image
    rng = np.random.default_rng(0)
    return Image(rng.integers(0, 256, size=(12, 12)))


class TestClientPipeline:
    """Pipelined RPC over one socket: many requests in flight, replies
    correlated by id in server completion order."""

    def test_pipelined_batch_matches_lockstep(self, remote, pipeline,
                                              small_suite):
        network, _ = remote
        host, port = network.address
        engine = Engine(HEBSAlgorithm(pipeline))
        images = list(small_suite.values()) * 2
        with Client(host=host, port=port, timeout=60.0) as client:
            with client.pipeline() as batch:
                replies = [batch.process(image, 10.0) for image in images]
                stats_reply = batch.stats()
            for image, reply in zip(images, replies):
                assert reply.result() == engine.process(image, 10.0)
            assert stats_reply.result().completed >= len(images)

    def test_results_readable_out_of_submission_order(self, remote,
                                                      small_suite):
        network, _ = remote
        host, port = network.address
        images = list(small_suite.values())
        with Client(host=host, port=port, timeout=60.0) as client:
            with client.pipeline() as batch:
                replies = [batch.solve(image, 10.0) for image in images]
                # resolve in reverse: each result() drains frames until
                # its own id answers, parking the others
                for reply in reversed(replies):
                    assert 0.0 < reply.result().backlight_factor <= 1.0
            assert all(reply.done for reply in replies)

    def test_errors_park_on_their_reply_only(self, remote, small_suite):
        network, _ = remote
        host, port = network.address
        good_image = next(iter(small_suite.values()))
        with Client(host=host, port=port, timeout=60.0) as client:
            with client.pipeline() as batch:
                good = batch.process(good_image, 10.0)
                bad = batch.process(good_image, -4.0)     # invalid budget
                also_good = batch.solve(good_image, 10.0)
            with pytest.raises(ValueError):
                bad.result()
            # neighbours are untouched by the failure
            assert good.result().algorithm == "hebs"
            assert 0.0 < also_good.result().backlight_factor <= 1.0

    def test_lockstep_calls_are_refused_while_a_pipeline_is_open(
            self, remote, lena):
        network, _ = remote
        host, port = network.address
        with Client(host=host, port=port, timeout=60.0) as client:
            with client.pipeline() as batch:
                reply = batch.solve(lena, 10.0)
                with pytest.raises(RuntimeError, match="pipeline"):
                    client.process(lena, 10.0)
            assert reply.result() is not None
            # the client is back in lockstep mode after close
            assert client.process(lena, 10.0).algorithm == "hebs"

    def test_second_pipeline_on_the_same_client_is_refused(self, remote):
        network, _ = remote
        host, port = network.address
        with Client(host=host, port=port) as client:
            with client.pipeline():
                with pytest.raises(RuntimeError, match="already open"):
                    client.pipeline()
            # ... but a fresh one after close is fine
            with client.pipeline() as second:
                assert second.stats().result().completed >= 0

    def test_connection_loss_fails_every_outstanding_reply(self, lena):
        fake = _ScriptedServer(["drop"])
        try:
            client = Client(*fake.address, retries=0)
            batch = client.pipeline()
            first = batch.solve(lena, 10.0)
            second = batch.solve(lena, 10.0)
            with pytest.raises(ConnectionError, match="pipeline"):
                first.result()
            # no retry, no reconnect: the whole batch fails together
            with pytest.raises(ConnectionError):
                second.result()
            with pytest.raises(ConnectionError):
                batch.solve(lena, 10.0)
            batch.close()
            client.close()
        finally:
            fake.close()

    def test_close_drains_outstanding_replies(self, remote, small_suite):
        network, _ = remote
        host, port = network.address
        images = list(small_suite.values())
        with Client(host=host, port=port, timeout=60.0) as client:
            batch = client.pipeline()
            replies = [batch.solve(image, 10.0) for image in images]
            batch.close()
            batch.close()                      # idempotent
            assert all(reply.done for reply in replies)
            for reply in replies:
                assert reply.result() is not None   # instant: already read

    def test_submitting_after_close_is_refused(self, remote, lena):
        network, _ = remote
        host, port = network.address
        with Client(host=host, port=port) as client:
            batch = client.pipeline()
            batch.close()
            with pytest.raises(RuntimeError, match="closed"):
                batch.solve(lena, 10.0)

    def test_pipeline_works_over_protocol_v1(self, remote, pipeline, lena):
        network, _ = remote
        host, port = network.address
        engine = Engine(HEBSAlgorithm(pipeline))
        with Client(host=host, port=port, max_version=1,
                    timeout=60.0) as client:
            assert client.protocol_version == 1
            with client.pipeline() as batch:
                replies = [batch.process(lena, 10.0) for _ in range(3)]
            want = engine.process(lena, 10.0)
            for reply in replies:
                assert reply.result() == want
