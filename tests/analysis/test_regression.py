"""Unit tests for the regression/fitting helpers."""

import numpy as np
import pytest

from repro.analysis.regression import (
    LinearFit,
    PolynomialFit,
    fit_linear,
    fit_polynomial,
    fit_two_piece_linear,
    upper_envelope_shift,
)
from repro.display.ccfl import LP064V1_CCFL


class TestLinearFit:
    def test_exact_recovery(self):
        x = np.linspace(0, 10, 20)
        y = 3.0 * x - 2.0
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-2.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 200)
        y = 5.0 * x + 1.0 + 0.01 * rng.standard_normal(200)
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(5.0, abs=0.05)
        assert fit.intercept == pytest.approx(1.0, abs=0.05)

    def test_predict(self):
        fit = LinearFit(slope=2.0, intercept=1.0)
        assert fit.predict(3.0) == 7.0
        assert np.allclose(fit.predict(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="same length"):
            fit_linear(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="at least 2"):
            fit_linear(np.array([1.0]), np.array([1.0]))


class TestPolynomialFit:
    def test_exact_quadratic_recovery(self):
        x = np.linspace(-1, 1, 30)
        y = 0.5 - 1.5 * x + 2.0 * x**2
        fit = fit_polynomial(x, y, degree=2)
        assert np.allclose(fit.coefficients, [0.5, -1.5, 2.0], atol=1e-9)
        assert fit.degree == 2

    def test_predict_scalar_and_array(self):
        fit = PolynomialFit((1.0, 0.0, 1.0))   # 1 + x^2
        assert fit.predict(2.0) == pytest.approx(5.0)
        assert np.allclose(fit.predict(np.array([0.0, 1.0])), [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="degree"):
            fit_polynomial(np.arange(5.0), np.arange(5.0), degree=0)
        with pytest.raises(ValueError, match="at least 4"):
            fit_polynomial(np.arange(3.0), np.arange(3.0), degree=3)


class TestTwoPieceLinearFit:
    def test_recovers_ccfl_model(self):
        """Fitting noiseless samples of Eq. (11) recovers knee and slopes."""
        beta = np.linspace(0.2, 1.0, 60)
        power = np.asarray(LP064V1_CCFL.power(beta))
        fit = fit_two_piece_linear(beta, power)
        assert fit.knee == pytest.approx(LP064V1_CCFL.saturation_knee, abs=0.03)
        assert fit.lower.slope == pytest.approx(LP064V1_CCFL.linear_slope, rel=0.05)
        assert fit.upper.slope == pytest.approx(LP064V1_CCFL.saturated_slope,
                                                rel=0.05)

    def test_predict_uses_correct_piece(self):
        beta = np.linspace(0.2, 1.0, 60)
        power = np.asarray(LP064V1_CCFL.power(beta))
        fit = fit_two_piece_linear(beta, power)
        assert fit.predict(0.5) == pytest.approx(LP064V1_CCFL.power(0.5), rel=0.02)
        assert fit.predict(0.95) == pytest.approx(LP064V1_CCFL.power(0.95), rel=0.02)

    def test_single_line_data_still_fits(self):
        x = np.linspace(0, 1, 20)
        y = 2 * x + 1
        fit = fit_two_piece_linear(x, y)
        assert fit.lower.slope == pytest.approx(2.0, abs=1e-6)
        assert fit.upper.slope == pytest.approx(2.0, abs=1e-6)

    def test_unsorted_input_is_sorted_internally(self):
        rng = np.random.default_rng(1)
        x = rng.permutation(np.linspace(0.2, 1.0, 40))
        y = np.asarray(LP064V1_CCFL.power(x))
        fit = fit_two_piece_linear(x, y)
        assert fit.knee == pytest.approx(LP064V1_CCFL.saturation_knee, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 6"):
            fit_two_piece_linear(np.arange(4.0), np.arange(4.0))


class TestUpperEnvelope:
    def test_shift_dominates_all_samples(self):
        rng = np.random.default_rng(3)
        x = np.linspace(0, 1, 50)
        y = 2 * x + rng.standard_normal(50)
        fit = fit_linear(x, y)
        shift = upper_envelope_shift(x, y, fit)
        shifted_prediction = np.asarray(fit.predict(x)) + shift
        assert np.all(shifted_prediction >= y - 1e-9)

    def test_zero_shift_when_fit_already_dominates(self):
        x = np.linspace(0, 1, 10)
        y = np.zeros(10)
        fit = LinearFit(slope=0.0, intercept=1.0)
        assert upper_envelope_shift(x, y, fit) == 0.0
