"""Unit tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweep import SweepResult, sweep


class TestSweep:
    def test_cartesian_product_order(self):
        result = sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        assert len(result) == 4
        assert result.column("sum") == [11, 21, 12, 22]
        assert result.parameters == ("a", "b")

    def test_records_contain_parameters_and_results(self):
        result = sweep(lambda a: {"double": 2 * a}, a=[3])
        record = result.records[0]
        assert record["a"] == 3
        assert record["double"] == 6

    def test_none_skips_point(self):
        result = sweep(lambda a: None if a == 2 else {"v": a}, a=[1, 2, 3])
        assert len(result) == 2
        assert result.column("v") == [1, 3]

    def test_shadowing_keys_rejected(self):
        with pytest.raises(ValueError, match="shadowing"):
            sweep(lambda a: {"a": 1}, a=[1])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            sweep(lambda a: {"v": a}, a=[])
        with pytest.raises(ValueError, match="at least one parameter"):
            sweep(lambda: {"v": 1})


class TestSweepResult:
    @pytest.fixture
    def result(self):
        return sweep(lambda image, level: {"saving": level * 2.0 + len(image)},
                     image=["lena", "baboon"], level=[1, 2, 3])

    def test_column_missing_key(self, result):
        with pytest.raises(KeyError, match="missing"):
            result.column("nope")

    def test_where_filters(self, result):
        filtered = result.where(image="lena")
        assert len(filtered) == 3
        assert all(record["image"] == "lena" for record in filtered.records)

    def test_where_chains(self, result):
        assert len(result.where(image="lena", level=2)) == 1

    def test_aggregates(self, result):
        lena_only = result.where(image="lena")
        assert lena_only.mean("saving") == pytest.approx(4.0 + 4.0)
        assert lena_only.min("saving") == pytest.approx(6.0)
        assert lena_only.max("saving") == pytest.approx(10.0)

    def test_group_mean(self, result):
        groups = result.group_mean("image", "saving")
        assert set(groups) == {"lena", "baboon"}
        assert groups["lena"] == pytest.approx(8.0)
        assert groups["baboon"] == pytest.approx(10.0)

    def test_len_and_immutables(self, result):
        assert len(result) == 6
        assert isinstance(result, SweepResult)
