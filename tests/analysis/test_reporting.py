"""Unit tests for table / series rendering."""

import pytest

from repro.analysis.reporting import Table, format_series, format_table, table_to_csv


@pytest.fixture
def table():
    return Table(
        title="Demo",
        columns=("image", "saving%"),
    ).with_row(image="Lena", **{"saving%": 47.53}).with_row(
        image="Average", **{"saving%": 45.879})


class TestTable:
    def test_with_row_appends(self, table):
        assert len(table.rows) == 2
        extended = table.with_row(image="Pout", **{"saving%": 42.0})
        assert len(extended.rows) == 3
        assert len(table.rows) == 2   # original unchanged

    def test_with_rows_bulk(self):
        table = Table("t", ("a",)).with_rows([{"a": 1}, {"a": 2}])
        assert table.column_values("a") == [1, 2]

    def test_column_values_skips_missing(self):
        table = Table("t", ("a", "b")).with_row(a=1).with_row(a=2, b=3)
        assert table.column_values("b") == [3]

    def test_render_contains_title_headers_and_values(self, table):
        text = table.render()
        assert "Demo" in text
        assert "image" in text and "saving%" in text
        assert "Lena" in text
        assert "47.53" in text

    def test_precision_applied(self, table):
        assert "45.88" in table.render()
        assert "45.879" not in table.render()

    def test_missing_cells_render_dash(self):
        table = Table("t", ("a", "b")).with_row(a=1)
        assert "-" in format_table(table)

    def test_boolean_cells(self):
        table = Table("t", ("ok",)).with_row(ok=True).with_row(ok=False)
        text = table.render()
        assert "yes" in text and "no" in text

    def test_empty_table_renders_header_only(self):
        text = Table("empty", ("a", "b")).render()
        assert "a" in text and "b" in text


class TestCsv:
    def test_header_and_rows(self, table):
        csv = table_to_csv(table)
        lines = csv.splitlines()
        assert lines[0] == "image,saving%"
        assert lines[1].startswith("Lena,")

    def test_quoting_of_commas_and_quotes(self):
        table = Table("t", ("name",)).with_row(name='Lena, "the" image')
        csv = table_to_csv(table)
        assert '"Lena, ""the"" image"' in csv

    def test_to_csv_method_matches_function(self, table):
        assert table.to_csv() == table_to_csv(table)


class TestSeries:
    def test_format_series(self):
        text = format_series("Fig 6a", [0.1, 0.2], [1.0, 2.0],
                             x_label="power", y_label="illuminance")
        assert "Fig 6a" in text
        assert "power" in text and "illuminance" in text
        assert "0.100" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            format_series("bad", [1.0], [1.0, 2.0])
