"""Unit tests for the Image container."""

import numpy as np
import pytest

from repro.imaging.image import Image


class TestConstruction:
    def test_grayscale_shape_and_depth(self):
        image = Image(np.zeros((4, 6)), bit_depth=8)
        assert image.height == 4
        assert image.width == 6
        assert image.n_channels == 1
        assert image.is_grayscale
        assert image.max_level == 255
        assert image.levels == 256

    def test_rgb_shape(self):
        image = Image(np.zeros((4, 6, 3)))
        assert image.n_channels == 3
        assert not image.is_grayscale

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(ValueError, match="expected"):
            Image(np.zeros((4,)))
        with pytest.raises(ValueError, match="expected"):
            Image(np.zeros((2, 2, 3, 1)))

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ValueError, match="3 channels"):
            Image(np.zeros((4, 4, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one pixel"):
            Image(np.zeros((0, 4)))

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError, match="out of range"):
            Image(np.full((2, 2), 300), bit_depth=8)
        with pytest.raises(ValueError, match="out of range"):
            Image(np.full((2, 2), -1), bit_depth=8)

    def test_rejects_bad_bit_depth(self):
        with pytest.raises(ValueError, match="bit_depth"):
            Image(np.zeros((2, 2)), bit_depth=0)
        with pytest.raises(ValueError, match="bit_depth"):
            Image(np.zeros((2, 2)), bit_depth=17)

    def test_values_are_rounded_to_integers(self):
        image = Image(np.array([[1.4, 1.6]]))
        assert image.pixels.tolist() == [[1, 2]]

    def test_pixels_are_read_only(self):
        image = Image(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            image.pixels[0, 0] = 5

    def test_ten_bit_image(self):
        image = Image(np.full((2, 2), 1000), bit_depth=10)
        assert image.max_level == 1023
        assert image.max() == 1000


class TestConstructors:
    def test_from_float_quantizes(self):
        image = Image.from_float(np.array([[0.0, 0.5, 1.0]]))
        assert image.pixels.tolist() == [[0, 128, 255]]

    def test_from_float_clips(self):
        image = Image.from_float(np.array([[-0.5, 1.5]]))
        assert image.pixels.tolist() == [[0, 255]]

    def test_constant(self):
        image = Image.constant(42, shape=(3, 5))
        assert image.shape == (3, 5)
        assert image.min() == image.max() == 42

    def test_constant_name(self):
        assert Image.constant(1, name="gray").name == "gray"


class TestConversions:
    def test_as_float_range(self, rgb_image):
        values = rgb_image.as_float()
        assert values.min() >= 0.0
        assert values.max() <= 1.0
        assert values.dtype == np.float64

    def test_as_array_is_writable_copy(self):
        image = Image(np.zeros((2, 2)))
        array = image.as_array()
        array[0, 0] = 7  # must not raise
        assert image.pixels[0, 0] == 0

    def test_to_grayscale_from_rgb(self, rgb_image):
        gray = rgb_image.to_grayscale()
        assert gray.is_grayscale
        assert gray.shape == (24, 24)

    def test_to_grayscale_idempotent(self, gradient_image):
        assert gradient_image.to_grayscale() is gradient_image

    def test_to_grayscale_uses_luma_weights(self):
        pure_red = np.zeros((2, 2, 3))
        pure_red[:, :, 0] = 255
        gray = Image(pure_red).to_grayscale()
        assert gray.pixels[0, 0] == round(0.299 * 255)

    def test_channel_access(self, rgb_image):
        for index in range(3):
            channel = rgb_image.channel(index)
            assert channel.is_grayscale
            assert np.array_equal(channel.pixels, rgb_image.pixels[:, :, index])

    def test_channel_out_of_range(self, rgb_image, gradient_image):
        with pytest.raises(IndexError):
            rgb_image.channel(3)
        with pytest.raises(IndexError):
            gradient_image.channel(1)

    def test_channels_iterator(self, rgb_image, gradient_image):
        assert len(list(rgb_image.channels())) == 3
        assert len(list(gradient_image.channels())) == 1

    def test_with_pixels_keeps_depth_and_name(self):
        image = Image(np.zeros((2, 2)), bit_depth=10, name="orig")
        derived = image.with_pixels(np.full((3, 3), 5))
        assert derived.bit_depth == 10
        assert derived.name == "orig"
        assert derived.shape == (3, 3)

    def test_with_name(self, flat_image):
        assert flat_image.with_name("other").name == "other"


class TestStatistics:
    def test_min_max_mean_std(self, gradient_image):
        assert gradient_image.min() == 0
        assert gradient_image.max() == 255
        assert gradient_image.dynamic_range() == 255
        assert 125 < gradient_image.mean() < 130
        assert gradient_image.std() > 0

    def test_flat_image_statistics(self, flat_image):
        assert flat_image.dynamic_range() == 0
        assert flat_image.std() == 0.0
        assert flat_image.mean() == 128.0

    def test_n_pixels(self, rgb_image):
        assert rgb_image.n_pixels == 24 * 24


class TestDunder:
    def test_equality(self):
        a = Image(np.arange(4).reshape(2, 2))
        b = Image(np.arange(4).reshape(2, 2))
        c = Image(np.arange(4).reshape(2, 2) + 1)
        assert a == b
        assert a != c
        assert a != "not an image"

    def test_equality_ignores_name(self):
        a = Image(np.zeros((2, 2)), name="a")
        b = Image(np.zeros((2, 2)), name="b")
        assert a == b

    def test_hash_consistent_with_equality(self):
        a = Image(np.arange(4).reshape(2, 2))
        b = Image(np.arange(4).reshape(2, 2))
        assert hash(a) == hash(b)

    def test_repr_mentions_size_and_kind(self, rgb_image):
        text = repr(rgb_image)
        assert "rgb" in text
        assert "24x24" in text
        assert "8-bit" in text
