"""Unit tests for PGM/PPM/CSV image I/O."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.imaging.io import (
    read_csv,
    read_image,
    read_pnm,
    write_csv,
    write_image,
    write_pnm,
)


class TestPnmRoundTrip:
    def test_binary_pgm(self, tmp_path, gradient_image):
        path = tmp_path / "ramp.pgm"
        write_pnm(gradient_image, path, binary=True)
        loaded = read_pnm(path)
        assert loaded == gradient_image
        assert loaded.name == "ramp"

    def test_ascii_pgm(self, tmp_path, noisy_image):
        path = tmp_path / "noise.pgm"
        write_pnm(noisy_image, path, binary=False)
        assert read_pnm(path) == noisy_image

    def test_binary_ppm(self, tmp_path, rgb_image):
        path = tmp_path / "color.ppm"
        write_pnm(rgb_image, path, binary=True)
        loaded = read_pnm(path)
        assert loaded == rgb_image
        assert not loaded.is_grayscale

    def test_ascii_ppm(self, tmp_path, rgb_image):
        path = tmp_path / "color.ppm"
        write_pnm(rgb_image, path, binary=False)
        assert read_pnm(path) == rgb_image

    def test_sixteen_bit_pgm(self, tmp_path):
        image = Image(np.array([[0, 1000], [2000, 4095]]), bit_depth=12)
        path = tmp_path / "deep.pgm"
        write_pnm(image, path, binary=True)
        loaded = read_pnm(path)
        assert np.array_equal(loaded.pixels, image.pixels)
        assert loaded.bit_depth == 12

    def test_comments_in_header_are_skipped(self, tmp_path):
        path = tmp_path / "commented.pgm"
        path.write_bytes(b"P2\n# a comment line\n2 2\n255\n0 64\n128 255\n")
        loaded = read_pnm(path)
        assert loaded.pixels.tolist() == [[0, 64], [128, 255]]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"XX\n2 2\n255\n0 0 0 0\n")
        with pytest.raises(ValueError, match="magic"):
            read_pnm(path)

    def test_truncated_binary_payload_rejected(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x01")
        with pytest.raises(ValueError, match="truncated"):
            read_pnm(path)

    def test_truncated_ascii_payload_rejected(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_bytes(b"P2\n4 4\n255\n0 1 2\n")
        with pytest.raises(ValueError, match="truncated"):
            read_pnm(path)


class TestCsv:
    def test_round_trip(self, tmp_path, noisy_image):
        path = tmp_path / "noise.csv"
        write_csv(noisy_image, path)
        assert read_csv(path) == noisy_image

    def test_rgb_rejected(self, tmp_path, rgb_image):
        with pytest.raises(ValueError, match="grayscale"):
            write_csv(rgb_image, tmp_path / "rgb.csv")


class TestDispatch:
    @pytest.mark.parametrize("suffix", [".pgm", ".pnm", ".csv"])
    def test_write_read_by_extension(self, tmp_path, gradient_image, suffix):
        path = tmp_path / f"image{suffix}"
        write_image(gradient_image, path)
        assert read_image(path) == gradient_image

    def test_ppm_extension_for_rgb(self, tmp_path, rgb_image):
        path = tmp_path / "image.ppm"
        write_image(rgb_image, path)
        assert read_image(path) == rgb_image

    def test_unknown_extension_rejected(self, tmp_path, gradient_image):
        with pytest.raises(ValueError, match="unsupported image format"):
            write_image(gradient_image, tmp_path / "image.png")
        with pytest.raises(ValueError, match="unsupported image format"):
            read_image(tmp_path / "image.png")
