"""Unit tests for the synthetic USC-SIPI stand-in benchmark suite."""

import numpy as np
import pytest

from repro.imaging.synthetic import (
    BENCHMARK_SPECS,
    TABLE1_DISPLAY_NAMES,
    SyntheticImageSpec,
    benchmark_names,
    benchmark_suite,
    generate,
    load_benchmark,
)


class TestSpecs:
    def test_nineteen_table1_benchmarks(self):
        assert len(benchmark_names()) == 19
        assert set(benchmark_names()) == set(TABLE1_DISPLAY_NAMES)

    def test_expected_names_present(self):
        for name in ("lena", "peppers", "baboon", "pout", "testpat", "elaine"):
            assert name in BENCHMARK_SPECS

    def test_spec_validation_unknown_scene(self):
        with pytest.raises(ValueError, match="unknown scene"):
            SyntheticImageSpec("x", "spaceship", key=0.5, contrast=0.5)

    def test_spec_validation_key_range(self):
        with pytest.raises(ValueError, match="key"):
            SyntheticImageSpec("x", "portrait", key=1.5, contrast=0.5)

    def test_spec_validation_contrast_range(self):
        with pytest.raises(ValueError, match="contrast"):
            SyntheticImageSpec("x", "portrait", key=0.5, contrast=0.0)

    def test_spec_validation_size(self):
        with pytest.raises(ValueError, match="size"):
            SyntheticImageSpec("x", "portrait", key=0.5, contrast=0.5, size=(4, 4))


class TestGeneration:
    def test_deterministic(self):
        first = load_benchmark("lena")
        second = load_benchmark("lena")
        assert first == second

    def test_different_names_differ(self):
        assert load_benchmark("lena") != load_benchmark("peppers")

    def test_case_insensitive_lookup(self):
        assert load_benchmark("Lena") == load_benchmark("lena")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("nonexistent")

    def test_custom_size(self):
        image = load_benchmark("lena", size=(32, 48))
        assert image.shape == (32, 48)

    def test_custom_bit_depth(self):
        image = load_benchmark("lena", bit_depth=10)
        assert image.bit_depth == 10
        assert image.max() <= 1023

    def test_all_images_grayscale_and_named(self):
        for name, image in benchmark_suite(size=(32, 32)).items():
            assert image.is_grayscale
            assert image.name == name

    def test_generate_matches_load(self):
        spec = BENCHMARK_SPECS["baboon"]
        assert generate(spec) == load_benchmark("baboon")


class TestStatisticalCharacter:
    """The suite must span the histogram variety the paper's argument needs."""

    @pytest.fixture(scope="class")
    def suite(self):
        return benchmark_suite()

    def test_means_match_key_roughly(self, suite):
        for name, image in suite.items():
            key = BENCHMARK_SPECS[name].key
            assert abs(image.mean() / 255.0 - key) < 0.15, name

    def test_low_key_image_is_darker_than_average(self, suite):
        assert suite["pout"].mean() < np.mean([im.mean() for im in suite.values()])

    def test_texture_images_have_wide_histograms(self, suite):
        assert suite["baboon"].std() > suite["pout"].std()

    def test_test_pattern_covers_full_range(self, suite):
        assert suite["testpat"].min() == 0
        assert suite["testpat"].max() == 255

    def test_photo_like_contrast(self, suite):
        """Most benchmarks should have photo-like spread (std 30..100 levels)."""
        stds = [image.std() for image in suite.values()]
        assert min(stds) > 20
        assert max(stds) < 110

    def test_suite_spans_narrow_and_wide_ranges(self, suite):
        ranges = sorted(image.dynamic_range() for image in suite.values())
        assert ranges[-1] == 255          # someone touches both ends
        assert ranges[0] < 255            # someone does not
