"""Unit tests for pixel-level operations."""

import numpy as np
import pytest

from repro.imaging import ops
from repro.imaging.image import Image


class TestToFloatToUint:
    def test_round_trip(self, gradient_image):
        values = ops.to_float(gradient_image)
        back = ops.to_uint(values)
        assert np.array_equal(back, gradient_image.pixels)

    def test_to_float_raw_array(self):
        values = ops.to_float(np.array([0, 255]), bit_depth=8)
        assert values.tolist() == [0.0, 1.0]

    def test_to_uint_clips(self):
        assert ops.to_uint(np.array([-1.0, 2.0])).tolist() == [0, 255]

    def test_to_uint_other_depth(self):
        assert ops.to_uint(np.array([1.0]), bit_depth=10).tolist() == [1023]


class TestApplyLut:
    def test_identity_lut(self, gradient_image):
        lut = np.arange(256)
        assert ops.apply_lut(gradient_image, lut) == gradient_image

    def test_inversion_lut(self, gradient_image):
        lut = 255 - np.arange(256)
        inverted = ops.apply_lut(gradient_image, lut)
        assert np.array_equal(inverted.pixels, 255 - gradient_image.pixels)

    def test_lut_clipping(self, flat_image):
        lut = np.full(256, 400.0)
        assert ops.apply_lut(flat_image, lut).max() == 255

    def test_wrong_lut_length_rejected(self, flat_image):
        with pytest.raises(ValueError, match="256 entries"):
            ops.apply_lut(flat_image, np.arange(100))


class TestClipPixels:
    def test_clip_band(self, gradient_image):
        clipped = ops.clip_pixels(gradient_image, 50, 200)
        assert clipped.min() == 50
        assert clipped.max() == 200

    def test_invalid_band_order(self, gradient_image):
        with pytest.raises(ValueError, match="must not exceed"):
            ops.clip_pixels(gradient_image, 200, 100)

    def test_band_outside_range(self, gradient_image):
        with pytest.raises(ValueError, match="outside representable"):
            ops.clip_pixels(gradient_image, 0, 300)


class TestDynamicRange:
    def test_full_ramp(self, gradient_image):
        assert ops.dynamic_range(gradient_image) == 255
        assert ops.occupied_range(gradient_image) == (0, 255)

    def test_flat(self, flat_image):
        assert ops.dynamic_range(flat_image) == 0

    def test_raw_array(self):
        assert ops.dynamic_range(np.array([[10, 20], [30, 40]])) == 30


class TestBrightnessContrast:
    def test_brightness_shift_up(self, flat_image):
        brighter = ops.adjust_brightness(flat_image, 0.1)
        assert brighter.mean() > flat_image.mean()

    def test_brightness_saturates(self, gradient_image):
        white = ops.adjust_brightness(gradient_image, 1.5)
        assert white.min() == 255

    def test_brightness_negative_offset(self, flat_image):
        darker = ops.adjust_brightness(flat_image, -0.2)
        assert darker.mean() < flat_image.mean()

    def test_contrast_gain_stretches(self, gradient_image):
        # gain around mid-gray increases the spread of mid values
        stretched = ops.adjust_contrast(gradient_image, 2.0, pivot=0.5)
        assert stretched.std() >= gradient_image.std() * 0.9

    def test_contrast_zero_gain_collapses(self, gradient_image):
        collapsed = ops.adjust_contrast(gradient_image, 0.0, pivot=0.5)
        assert collapsed.dynamic_range() == 0

    def test_contrast_negative_gain_rejected(self, gradient_image):
        with pytest.raises(ValueError, match="non-negative"):
            ops.adjust_contrast(gradient_image, -1.0)

    def test_contrast_about_origin_matches_eq2b(self):
        image = Image(np.array([[0, 64, 128, 255]]))
        scaled = ops.adjust_contrast(image, 2.0, pivot=0.0)
        assert scaled.pixels.tolist() == [[0, 128, 255, 255]]


class TestNormalize:
    def test_stretches_to_full_range(self):
        image = Image(np.array([[50, 100], [150, 200]]))
        normalized = ops.normalize(image)
        assert normalized.min() == 0
        assert normalized.max() == 255

    def test_flat_image_unchanged(self, flat_image):
        assert ops.normalize(flat_image) == flat_image


class TestSaturationFraction:
    def test_no_saturation_for_identity(self, gradient_image):
        assert ops.saturation_fraction(gradient_image, gradient_image) == 0.0

    def test_full_saturation(self, flat_image):
        white = Image.constant(255, shape=flat_image.shape)
        assert ops.saturation_fraction(flat_image, white) == 1.0

    def test_partial_saturation(self):
        original = Image(np.array([[100, 200], [100, 200]]))
        transformed = Image(np.array([[100, 255], [100, 255]]))
        assert ops.saturation_fraction(original, transformed) == 0.5

    def test_shape_mismatch(self, flat_image, gradient_image):
        with pytest.raises(ValueError, match="same shape"):
            ops.saturation_fraction(flat_image, gradient_image)


class TestQuantizeLevels:
    def test_two_levels_is_threshold(self, gradient_image):
        binary = ops.quantize_levels(gradient_image, 2)
        assert set(np.unique(binary.pixels)) == {0, 255}

    def test_many_levels_is_near_identity(self, gradient_image):
        fine = ops.quantize_levels(gradient_image, 256)
        assert np.abs(fine.pixels.astype(int) - gradient_image.pixels.astype(int)).max() <= 1

    def test_reduces_distinct_levels(self, noisy_image):
        coarse = ops.quantize_levels(noisy_image, 8)
        assert len(np.unique(coarse.pixels)) <= 8

    def test_rejects_single_level(self, flat_image):
        with pytest.raises(ValueError, match="two quantization levels"):
            ops.quantize_levels(flat_image, 1)
