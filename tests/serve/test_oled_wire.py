"""Wire round-trips for the emissive (OLED) workload.

The acceptance surface of PR 9's traffic diversification: darkening LUTs
must cross protocol v1 (base64 arrays) and v2 (zero-copy binary frames)
bit-exactly, results must compare equal to the in-process engine, and a
malformed OLED solve must come back as a typed ``bad_request`` that leaves
the connection open.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.client import Client
from repro.core.darken import DarkenSolution
from repro.core.histogram import Histogram
from repro.serve import NetworkServer, Server, protocol


@pytest.fixture(scope="module")
def net():
    """A network server over a default engine (algorithm per request)."""
    server = Server(engine=Engine(), workers=2, max_delay=0.002)
    network = NetworkServer(server)
    network.start()
    yield network
    network.close()


@pytest.fixture(params=[1, 2], ids=["v1", "v2"])
def client(net, request):
    host, port = net.address
    with Client(host=host, port=port, timeout=60.0,
                max_version=request.param) as instance:
        yield instance


class TestOLEDWireParity:
    def test_solve_lut_is_bit_exact(self, client, baboon):
        """The darkening LUT survives either codec without rounding."""
        reference = Engine("oled-darken").solve(
            Histogram.of_image(baboon.to_grayscale()), 10.0)
        remote = client.solve(Histogram.of_image(baboon), 10.0,
                              algorithm="oled-darken")
        assert remote.algorithm == "oled-darken"
        assert remote.backlight_factor == 1.0
        assert remote.transform == reference.transform
        assert tuple(remote.transform.table) == tuple(
            reference.transform.table)

    def test_local_apply_matches_in_process_output(self, client, baboon):
        reference = Engine("oled-darken").process(baboon, 10.0)
        remote = client.solve(Histogram.of_image(baboon), 10.0,
                              algorithm="oled-darken")
        local = remote.transform.apply(baboon.to_grayscale())
        assert np.array_equal(local.pixels, reference.output.pixels)

    def test_process_round_trip_equals_in_process(self, client, baboon):
        reference = Engine("oled-darken").process(baboon, 10.0)
        remote = client.process(baboon, 10.0, algorithm="oled-darken")
        assert remote == reference
        assert remote.power.ccfl == 0.0
        assert remote.power == reference.power
        assert remote.distortion == reference.distortion

    def test_compensate_matches_remote_process(self, client, pout):
        applied = client.compensate(pout, 10.0, algorithm="oled-darken")
        processed = client.process(pout, 10.0, algorithm="oled-darken")
        assert np.array_equal(applied.output.pixels,
                              processed.output.pixels)

    def test_clipped_variant_crosses_the_wire(self, client, lena):
        reference = Engine("oled-darken-clipped").process(lena, 10.0)
        remote = client.process(lena, 10.0, algorithm="oled-darken-clipped")
        assert remote == reference

    def test_remote_session_serves_oled(self, client, small_suite):
        frames = list(small_suite.values())
        engine = Engine("oled-darken")
        with engine.open_session(10.0) as reference_session:
            expected = [reference_session.submit(f) for f in frames]
        with client.open_session(10.0,
                                 algorithm="oled-darken") as session:
            actual = [session.submit(f) for f in frames]
        for got, want in zip(actual, expected):
            assert np.array_equal(got.result.output.pixels,
                                  want.result.output.pixels)
            assert got.result.power.ccfl == 0.0


class TestMalformedOLEDRequests:
    def _exchange(self, sock: socket.socket, message: dict) -> dict:
        payload = protocol.encode_frame(message)
        sock.sendall(payload)
        header = _recv_exactly(sock, 4)
        return protocol.decode_frame(
            _recv_exactly(sock, protocol.frame_length(header)))

    def _handshake(self, sock: socket.socket, max_version: int) -> dict:
        return self._exchange(
            sock, protocol.hello_frame(max_version=max_version))

    @pytest.mark.parametrize("max_version", [1, 2])
    def test_negative_budget_is_bad_request_and_socket_survives(
            self, net, baboon, max_version):
        host, port = net.address
        bad = protocol.solve_request(11, Histogram.of_image(baboon), -5.0,
                                     algorithm="oled-darken")
        with socket.create_connection((host, port), timeout=10.0) as sock:
            self._handshake(sock, max_version)
            frame = self._exchange(sock, bad)
            assert frame["type"] == "error"
            assert frame["code"] == "bad_request"
            assert frame["id"] == 11
            # the very same socket still serves a well-formed request
            frame = self._exchange(
                sock, protocol.solve_request(
                    12, Histogram.of_image(baboon), 10.0,
                    algorithm="oled-darken"))
            assert frame["type"] == "solution"
            assert frame["id"] == 12

    def test_unknown_emissive_algorithm_is_bad_request(self, net, baboon):
        host, port = net.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            self._handshake(sock, 1)
            frame = self._exchange(sock, protocol.solve_request(
                21, Histogram.of_image(baboon), 10.0,
                algorithm="oled-brighten"))
            assert frame["type"] == "error"
            assert frame["code"] == "bad_request"


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise ConnectionError("peer closed while reading")
        data += chunk
    return data
